//! The service itself: epoll reactors → bounded queue → worker pool →
//! shared model stack.
//!
//! # Architecture
//!
//! `--event-threads N` reactor threads ([`crate::event`]) own every
//! connection through nonblocking sockets and a readiness loop; the
//! `workers` CPU threads only ever see complete, parsed requests and
//! hand finished response bytes back over a wakeup pipe. This module
//! supplies the [`event::Service`] implementation: the dispatch table,
//! admission policy, metrics, and the chaos schedule.
//!
//! Admission is two-layered and per *request*. The adaptive
//! [`AdmissionController`] (CoDel-style queue-delay detection driving
//! an AIMD concurrency limit) sheds requests that would push queued +
//! in-flight work past a limit tuned to *measured* queue sojourn time;
//! the bounded queue ([`crate::queue`]) behind it is the hard
//! backstop. Either
//! way a shed is an immediate, honest `503` with a typed reason, so
//! overload degrades into fast rejections instead of unbounded memory
//! growth or silent kernel-side drops.
//!
//! With `--shard i/M` the process additionally *enforces* its
//! consistent-hash slice of the block-key space ([`crate::route`]):
//! a predict/explain for a block another shard owns is answered `409
//! Conflict` naming the true owner, so a misrouted fleet fails loudly
//! instead of silently splitting cache and store state.
//!
//! Workers share one process-wide model stack,
//! `CachedModel(ResilientModel(base))` behind an `Arc`: the sharded
//! prediction cache deduplicates the highly repetitive query stream
//! explanations produce (its hit rate is re-exported at `/metrics`),
//! and the resilient layer retries transient faults — rate-limited by
//! a global retry token bucket so a correlated outage cannot turn into
//! a retry storm — and trips its circuit breaker on a persistently
//! failing backend. Per-request deadlines compose on top per query
//! path — see [`DeadlineGate`] and the predict handler's watchdog.
//!
//! Explains ride a **degradation ladder** (full search →
//! reduced-budget search → stale cached explanation → minimal baseline
//! probe). The tier is chosen proactively from pressure signals (open
//! circuit, standing queue, a deadline the latency histogram says the
//! full search cannot meet) and descends reactively when a search
//! fails; every response carries its tier on the wire and in
//! `/metrics`, so "degraded but alive" is observable, never silent.
//!
//! Identical in-flight explains — same canonical block text, same ε,
//! same seed — are **coalesced single-flight**: the first request runs
//! the anchors search, later twins park on a condvar and share the
//! result, so a thundering herd on one hot block costs one search.
//!
//! Graceful drain: cancelling the server's [`CancelToken`] (the binary
//! wires it to SIGINT/SIGTERM, and to stdin-EOF under a supervisor)
//! stops the accept loop, shuts the queue down, lets workers finish
//! every accepted connection's in-flight request, and then joins them.
//! `GET /healthz` is a liveness probe; `GET /readyz` additionally
//! checks the model probe, circuit breaker, queue delay, and drain
//! state, so an orchestrator stops routing to a degraded instance
//! before it starts failing requests.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::admission::{AdmissionConfig, AdmissionController, ShedReason};
use crate::event::{FrontEnd, FrontEndConfig, Service, WorkerHandler};
use crate::http::{self, HttpError, Request};
use crate::lifecycle::{self, LifecycleState, ModelEpoch, ShadowGates};
use crate::metrics::{Endpoint, Registry, StatusClass, Tier};
use crate::route::{self, Ring, ShardSpec};
use crate::wire::{
    self, decode_request, AdminModelRequest, ErrorResponse, ExplainRequest, ExplainResponse,
    ExplanationDto, PredictRequest, PredictResponse, WIRE_V,
};
use comet_core::cancel::CancelToken;
use comet_core::{BatchExec, ExplainConfig, ExplainError, Explainer, Explanation, SwapCell};
use comet_isa::{BasicBlock, Microarch};
use comet_models::{
    CachedModel, CostModel, CrudeModel, DeadlineModel, ModelError, ModelRegistry, QueryStats,
    RegistryRecovery, ResilientModel, UicaSurrogate,
};

/// A boxed, shareable cost model — the bottom of the serving stack.
pub type BoxedModel = Box<dyn CostModel + Send + Sync>;

/// The per-epoch shared model stack (see module docs). Each published
/// [`ModelEpoch`] owns its own stack, so swapping models invalidates
/// the prediction cache by construction.
pub(crate) type Stack = CachedModel<ResilientModel<BoxedModel>>;

/// Which base model the binary serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// The paper's interpretable analytical model C on Haswell.
    CrudeHaswell,
    /// The analytical model C on Skylake.
    CrudeSkylake,
    /// The uiCA surrogate (pipeline simulator) on Haswell.
    Uica,
}

impl ModelKind {
    /// Parse a `--model` argument.
    pub fn parse(s: &str) -> Option<ModelKind> {
        match s {
            "crude" | "crude-haswell" => Some(ModelKind::CrudeHaswell),
            "crude-skylake" => Some(ModelKind::CrudeSkylake),
            "uica" => Some(ModelKind::Uica),
            _ => None,
        }
    }

    /// The canonical rebuild-recipe string (round-trips through
    /// [`ModelKind::parse`] and the registry's snapshot `kind` field).
    pub fn label(self) -> &'static str {
        match self {
            ModelKind::CrudeHaswell => "crude-haswell",
            ModelKind::CrudeSkylake => "crude-skylake",
            ModelKind::Uica => "uica",
        }
    }

    /// Instantiate the base model and its paper-default ε.
    pub fn build(self) -> (BoxedModel, f64) {
        match self {
            ModelKind::CrudeHaswell => (Box::new(CrudeModel::new(Microarch::Haswell)), 0.25),
            ModelKind::CrudeSkylake => (Box::new(CrudeModel::new(Microarch::Skylake)), 0.25),
            ModelKind::Uica => (Box::new(UicaSurrogate::new(Microarch::Haswell)), 0.5),
        }
    }
}

/// Seeded fault injection inside the server itself (distinct from
/// model-level [`comet_models::FaultyModel`] faults): with probability
/// `worker_panic_rate`, a worker panics while handling a connection,
/// exercising the catch-unwind containment and the chaos harness's
/// "no silent worker death" invariant. The draw is a pure function of
/// `(seed, connection index)`, so a chaos run is reproducible.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Probability a worker panics on a given connection.
    pub worker_panic_rate: f64,
    /// Seed for the deterministic panic schedule.
    pub seed: u64,
}

/// Server configuration (the binary's flags, as a struct).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:8080` (port 0 picks a free port).
    pub addr: String,
    /// Worker threads (each owns one connection at a time).
    pub workers: usize,
    /// Bounded request-queue depth; overflow is shed with a 503.
    pub queue_depth: usize,
    /// Default ε for explains (requests may override per call).
    pub epsilon: f64,
    /// Default per-request deadline in milliseconds; 0 disables
    /// deadline enforcement entirely.
    pub deadline_ms: u64,
    /// Shared prediction-cache capacity (entries).
    pub cache_capacity: usize,
    /// Model-batch size for the explain search: perturbed candidate
    /// blocks are evaluated through `predict_batch` in chunks of up to
    /// this many.
    pub batch: usize,
    /// Intra-explanation worker-pool size per serve worker. The serve
    /// workers already parallelize across requests, so this defaults to
    /// 1 (batching without extra threads); raise it on machines with
    /// spare cores when single-request latency matters more than
    /// aggregate throughput.
    pub search_pool: usize,
    /// How long an idle keep-alive connection may sit between requests
    /// before its worker reclaims itself — and the per-request read
    /// budget that bounds slow-loris senders. Milliseconds; 0 disables
    /// both (tests only).
    pub idle_timeout_ms: u64,
    /// Adaptive admission-control law parameters.
    pub admission: AdmissionConfig,
    /// Seeded in-server fault injection; `None` (the default) disables
    /// chaos entirely.
    pub chaos: Option<ChaosConfig>,
    /// On-disk model registry directory. `None` serves without
    /// persistence (swaps still work, versions are in-memory only);
    /// `Some(dir)` makes the last-known-good model crash-durable and
    /// recovers it at boot.
    pub registry_dir: Option<String>,
    /// Requests a freshly swapped model must survive before it is
    /// durably promoted as last-known-good; 0 disables probation
    /// (shadow validation alone gates swaps).
    pub probation_requests: u64,
    /// Shadow-validation gates for `POST /admin/model` candidates.
    pub shadow: ShadowGates,
    /// Precomputed explanation store (a `.comets` file built by
    /// `comet-store build`, or a directory containing `store.comets`).
    /// `None` serves every explain live. A configured-but-unreadable
    /// store does not stop the server — it serves live, reports the
    /// failure on `/readyz`, and answers `/analytics/*` with 503.
    pub store_path: Option<String>,
    /// Reactor (event-loop) threads owning the nonblocking sockets.
    pub event_threads: usize,
    /// `--shard i/M`: enforce ownership of this process's
    /// consistent-hash slice of the block-key space. `None` serves the
    /// whole key space.
    pub shard: Option<ShardSpec>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:8080".into(),
            workers: 4,
            queue_depth: 64,
            epsilon: 0.25,
            deadline_ms: 0,
            cache_capacity: 1 << 20,
            batch: 16,
            search_pool: 1,
            idle_timeout_ms: 5_000,
            admission: AdmissionConfig::default(),
            chaos: None,
            registry_dir: None,
            probation_requests: 64,
            shadow: ShadowGates::default(),
            store_path: None,
            event_threads: 1,
            shard: None,
        }
    }
}

/// Most stale explanations retained for the ladder's cached tier.
const STALE_CAP: usize = 1024;

/// What opening the configured explanation store produced.
pub(crate) enum StoreState {
    /// The store opened and validated; lookups are live.
    Open(Box<comet_store::ExplanationStore>),
    /// The store could not be opened (corrupt, missing, or built for a
    /// different model). Kept for `/readyz` reporting; never consulted.
    Error(String),
}

/// A configured explanation store, bound to the model version that was
/// serving when it was opened. A hot-swap changes the live version and
/// thereby structurally disables store hits — a new model's
/// explanations are never served from an old model's store.
pub(crate) struct StoreSlot {
    /// The path the operator configured (as given).
    pub(crate) path: String,
    pub(crate) state: StoreState,
    /// The epoch version the store was validated against at boot.
    pub(crate) bound_version: u64,
}

/// Open and validate the configured store: the file must parse and
/// checksum clean, and its provenance must name the model kind this
/// server is serving (a store built for `uica` must not answer for
/// `crude-haswell`). A directory path means `<dir>/store.comets`.
fn open_store(path: &str, kind: &str) -> StoreState {
    let mut file = std::path::PathBuf::from(path);
    if file.is_dir() {
        file.push("store.comets");
    }
    match comet_store::ExplanationStore::open(&file) {
        Ok(store) => {
            let built_for = &store.provenance().model_kind;
            if built_for != kind {
                StoreState::Error(format!(
                    "store was built for model kind {built_for:?}, serving {kind:?}"
                ))
            } else {
                StoreState::Open(Box::new(store))
            }
        }
        Err(e) => StoreState::Error(format!("cannot open store at {}: {e}", file.display())),
    }
}

/// One in-flight explain search that twins can park on.
struct Flight {
    state: Mutex<Option<FlightResult>>,
    done: Condvar,
}

/// What a finished flight hands every parked twin: the explanation and
/// the degradation-ladder tier that produced it.
type FlightResult = Result<(Explanation, Tier), (StatusClass, String)>;

/// Cooperative per-request deadline for the explain path.
///
/// An anchors search issues thousands of microsecond-scale model
/// queries; running each under the [`DeadlineModel`] watchdog (a
/// thread spawn per query) would cost more than the queries
/// themselves. The gate instead checks the request's wall-clock budget
/// before delegating each query and, once expired, fails every further
/// query with [`ModelError::Timeout`] — the explainer's budget-capped
/// fault-skipping sampler then winds down in microseconds and returns
/// its best candidate so far, flagged `degraded`. The gate also
/// watches the server's [`CancelToken`], so a drain winds active
/// searches down the same way instead of letting them run to
/// completion. The true watchdog (stalled-backend abandonment) still
/// guards the single-query predict path, where its per-call cost is
/// irrelevant.
struct DeadlineGate<'a> {
    inner: &'a Stack,
    start: Instant,
    budget: Option<Duration>,
    cancel: Option<&'a CancelToken>,
}

impl DeadlineGate<'_> {
    fn expired(&self) -> Option<ModelError> {
        if let Some(cancel) = self.cancel {
            if cancel.is_cancelled() {
                return Some(ModelError::Timeout {
                    elapsed: self.start.elapsed(),
                    deadline: self.budget.unwrap_or(Duration::ZERO),
                });
            }
        }
        if let Some(budget) = self.budget {
            let elapsed = self.start.elapsed();
            if elapsed >= budget {
                return Some(ModelError::Timeout { elapsed, deadline: budget });
            }
        }
        None
    }
}

impl CostModel for DeadlineGate<'_> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn predict(&self, block: &BasicBlock) -> f64 {
        self.try_predict(block).unwrap_or(f64::NAN)
    }

    fn try_predict(&self, block: &BasicBlock) -> Result<f64, ModelError> {
        if let Some(err) = self.expired() {
            return Err(err);
        }
        self.inner.try_predict(block)
    }

    fn resilience(&self) -> Option<comet_models::ResilienceReport> {
        self.inner.resilience()
    }

    /// Batch path: check the wall-clock budget once per chunk, then
    /// forward the whole slice to the stack's `predict_batch` (cache
    /// partitioning and all). Expiry granularity is one chunk — a batch
    /// admitted just under the deadline runs to completion, which is
    /// bounded by `batch × per-query cost` (microseconds) and far
    /// cheaper than checking the clock per item.
    fn predict_batch(&self, blocks: &[BasicBlock]) -> Vec<Result<f64, ModelError>> {
        if let Some(err) = self.expired() {
            return blocks.iter().map(|_| Err(err.clone())).collect();
        }
        self.inner.predict_batch(blocks)
    }
}

/// Shared state visible to the accept loop, every worker, and (read
/// only) to embedding code like the bench client and tests.
pub struct ServerCtx {
    /// The published model epoch. Readers load it lock-free (RCU);
    /// every request captures exactly one `(version, model)` pair for
    /// its lifetime, so responses are never torn across a swap.
    pub(crate) epoch: SwapCell<ModelEpoch>,
    metrics: Registry,
    admission: AdmissionController,
    flights: Mutex<HashMap<u64, Arc<Flight>>>,
    /// Stale explanations for the ladder's cached tier, keyed by
    /// `(model version, seed-independent explain_key(block, ε, 0))` —
    /// an old model's explanation is never served as another version's.
    stale: Mutex<HashMap<(u64, u64), Explanation>>,
    explain_base: ExplainConfig,
    default_epsilon: f64,
    default_deadline_ms: u64,
    explain_batch: usize,
    search_pool: usize,
    cancel: CancelToken,
    /// Sticky readiness: set by the first successful model probe.
    ready: AtomicBool,
    /// Monotonic origin for the admission controller's timestamps.
    started: Instant,
    chaos: Option<ChaosConfig>,
    /// `--shard i/M` enforcement state: the fleet ring plus this
    /// process's slot.
    shard: Option<(Ring, ShardSpec)>,
    /// The on-disk registry, when serving with `--registry`.
    pub(crate) registry: Option<ModelRegistry>,
    /// What opening the registry had to repair (quarantines etc.).
    pub(crate) recovery: RegistryRecovery,
    /// Swap/probation/rollback state; its mutex serializes admin swaps.
    pub(crate) lifecycle: Mutex<LifecycleState>,
    /// Probation window length for freshly swapped models.
    pub(crate) probation_requests: u64,
    /// Shadow-validation gates.
    pub(crate) shadow: ShadowGates,
    /// Cache capacity for stacks built around swapped-in candidates.
    pub(crate) cache_capacity: usize,
    /// The precomputed explanation store, when `--store` is configured.
    pub(crate) store: Option<StoreSlot>,
}

impl ServerCtx {
    /// The service metrics registry.
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// The adaptive admission controller (limit, in-flight gauge,
    /// overload flag).
    pub fn admission(&self) -> &AdmissionController {
        &self.admission
    }

    /// A snapshot of the live epoch's prediction-cache counters,
    /// stamped with the model version the entries belong to — after a
    /// hot-swap this is how an operator sees what the swap invalidated.
    pub fn cache_stats(&self) -> QueryStats {
        let epoch = self.epoch.load();
        let mut stats = epoch.stack.stats();
        stats.version = epoch.version;
        stats
    }

    /// Stale-explanation entries grouped by the model version that
    /// produced them, ascending — the `/metrics` per-version gauge.
    pub fn stale_by_version(&self) -> Vec<(u64, u64)> {
        let stale = self.stale.lock().unwrap_or_else(|p| p.into_inner());
        let mut counts = std::collections::BTreeMap::new();
        for (version, _) in stale.keys() {
            *counts.entry(*version).or_insert(0u64) += 1;
        }
        counts.into_iter().collect()
    }

    /// The configured explanation store slot, if any.
    pub(crate) fn store(&self) -> Option<&StoreSlot> {
        self.store.as_ref()
    }

    /// The registry version of the model currently serving traffic.
    pub fn model_version(&self) -> u64 {
        self.epoch.load().version
    }

    /// The cancellation token driving graceful drain.
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }
}

/// A running server: reactor threads + worker pool, shut down via its
/// [`CancelToken`].
pub struct Server {
    ctx: Arc<ServerCtx>,
    addr: SocketAddr,
    front: Option<FrontEnd>,
}

impl Server {
    /// Bind and start serving `kind`'s model with `config`. With a
    /// registry configured, an intact active snapshot on disk wins
    /// over `kind` — restart recovery serves what the manifest says
    /// was last known good.
    pub fn start(kind: ModelKind, mut config: ServeConfig) -> std::io::Result<Server> {
        let (base, default_eps) = kind.build();
        if config.epsilon <= 0.0 {
            config.epsilon = default_eps;
        }
        let name = base.name().to_string();
        Server::start_inner(base, name, kind.label().to_string(), config)
    }

    /// Start with an explicit base model — the injection point for
    /// tests and the bench client (e.g. a model with artificial
    /// latency, or a query counter). The model's rebuild recipe is
    /// recorded as `"custom"`, which restart recovery cannot rebuild —
    /// it falls back to the model the caller provides.
    pub fn start_with_model(
        base: BoxedModel,
        model_name: String,
        config: ServeConfig,
    ) -> std::io::Result<Server> {
        Server::start_inner(base, model_name, "custom".to_string(), config)
    }

    fn start_inner(
        mut base: BoxedModel,
        mut model_name: String,
        mut kind_str: String,
        config: ServeConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;

        // Registry boot: verify snapshots (quarantining damage), then
        // let the durable last-known-good model override the CLI choice
        // when its kind can be rebuilt. An empty registry adopts the
        // boot model as v1.
        let (registry, recovery) = match &config.registry_dir {
            Some(dir) => {
                let (registry, recovery) = ModelRegistry::open(std::path::Path::new(dir))?;
                if !recovery.quarantined.is_empty() || recovery.manifest_recovered {
                    eprintln!(
                        "[comet-serve] registry recovery: quarantined {:?}, manifest recovered: {}",
                        recovery.quarantined, recovery.manifest_recovered
                    );
                }
                (Some(registry), recovery)
            }
            None => (None, RegistryRecovery::default()),
        };
        let mut version = 1u64;
        if let Some(registry) = &registry {
            match registry.load_active() {
                Ok(Some(snapshot)) => {
                    version = snapshot.version;
                    if let Some(kind) = ModelKind::parse(&snapshot.kind) {
                        let payload = serde_json::from_str(&snapshot.payload).unwrap_or_default();
                        base = lifecycle::build_base(kind, &payload);
                        model_name = base.name().to_string();
                        kind_str = snapshot.kind.clone();
                        eprintln!(
                            "[comet-serve] registry: serving last-known-good v{version} ({})",
                            snapshot.kind
                        );
                    }
                    // An unrebuildable kind (e.g. "custom") keeps the
                    // caller's base model under the recorded version.
                }
                Ok(None) | Err(_) => {
                    // Empty registry, or the active snapshot rotted
                    // since open and was just quarantined: adopt the
                    // boot model as the first last-known-good.
                    let snapshot = registry.stage(&kind_str, "boot", "{}")?;
                    registry.promote(snapshot.version)?;
                    version = snapshot.version;
                }
            }
        }

        let store = config.store_path.as_ref().map(|path| {
            let state = open_store(path, &kind_str);
            if let StoreState::Error(e) = &state {
                eprintln!("[comet-serve] explanation store unavailable: {e}");
            }
            StoreSlot { path: path.clone(), state, bound_version: version }
        });

        let stack = lifecycle::build_stack(base, config.cache_capacity);
        let epoch = Arc::new(ModelEpoch { version, name: model_name, kind: kind_str, stack });
        let metrics = Registry::new();
        metrics.set_batch_size(config.batch.max(1));
        metrics.set_model_version(version);
        if let Some(spec) = config.shard {
            metrics.set_shard(spec.index, spec.count);
        }
        let ctx = Arc::new(ServerCtx {
            epoch: SwapCell::new(Arc::clone(&epoch)),
            metrics,
            admission: AdmissionController::new(config.admission),
            flights: Mutex::new(HashMap::new()),
            stale: Mutex::new(HashMap::new()),
            explain_base: ExplainConfig { epsilon: config.epsilon, ..ExplainConfig::default() },
            default_epsilon: config.epsilon,
            default_deadline_ms: config.deadline_ms,
            explain_batch: config.batch.max(1),
            search_pool: config.search_pool.max(1),
            cancel: CancelToken::new(),
            ready: AtomicBool::new(false),
            started: Instant::now(),
            chaos: config.chaos,
            shard: config.shard.map(|spec| (Ring::new(spec.count), spec)),
            registry,
            recovery,
            lifecycle: Mutex::new(LifecycleState {
                good: epoch,
                probation: None,
                last_rollback: None,
                next_version: version,
            }),
            probation_requests: config.probation_requests,
            shadow: config.shadow,
            cache_capacity: config.cache_capacity,
            store,
        });

        let service = Arc::new(CometService { ctx: Arc::clone(&ctx) });
        let front = FrontEnd::start(
            listener,
            service,
            FrontEndConfig {
                event_threads: config.event_threads,
                workers: config.workers,
                queue_depth: config.queue_depth,
                idle_timeout: Duration::from_millis(config.idle_timeout_ms),
            },
        )?;
        Ok(Server { ctx, addr, front: Some(front) })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared server state (metrics, cache stats, cancel token).
    pub fn ctx(&self) -> &Arc<ServerCtx> {
        &self.ctx
    }

    /// Block until the server drains and every thread exits. Returns
    /// immediately unless something cancelled the token (Ctrl-C, a
    /// test, the bench client finishing).
    pub fn join(mut self) {
        if let Some(front) = self.front.take() {
            front.join();
        }
    }

    /// Cancel and drain: stop accepting, finish in-flight requests,
    /// join all threads.
    pub fn shutdown(self) {
        self.ctx.cancel.cancel();
        self.join();
    }
}

/// SplitMix64: a tiny, high-quality bit mixer for the chaos schedule.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Whether chaos panics on connection `n` of a run seeded with `seed`.
/// Pure, so the schedule is reproducible from the seed alone.
pub fn chaos_panics_connection(seed: u64, n: u64, rate: f64) -> bool {
    if rate <= 0.0 {
        return false;
    }
    let unit = (splitmix64(seed ^ n.wrapping_mul(0x2545_f491_4f6c_dd1d)) >> 11) as f64
        / (1u64 << 53) as f64;
    unit < rate
}

/// The COMET dispatch table as an [`event::Service`]: the front end
/// owns sockets and readiness; this glues its hooks to the admission
/// controller, the metrics registry, the chaos schedule, and
/// [`dispatch`].
pub(crate) struct CometService {
    pub(crate) ctx: Arc<ServerCtx>,
}

impl CometService {
    /// A prebuilt 503 naming the shed reason, with metrics recorded —
    /// shared by the adaptive-admission and queue-overflow paths.
    fn shed_bytes(&self, reason: ShedReason) -> Vec<u8> {
        self.ctx.metrics.record_shed(reason);
        self.ctx.metrics.record(Endpoint::Other, StatusClass::Shed);
        let mut out = Vec::new();
        respond_error(&mut out, StatusClass::Shed, reason.message(), true);
        out
    }
}

impl Service for CometService {
    fn make_worker(&self) -> Box<dyn WorkerHandler> {
        // One batch executor per worker, alive for the worker's
        // lifetime: its intra-explanation pool threads are spawned
        // once, not per request, and its occupancy counters are folded
        // into the shared registry after each search.
        let exec = BatchExec::new(self.ctx.explain_batch, self.ctx.search_pool);
        Box::new(CometWorker { ctx: Arc::clone(&self.ctx), exec })
    }

    fn admit(&self, queued: usize) -> Result<(), Vec<u8>> {
        let in_system = queued as u64 + self.ctx.admission.inflight();
        self.ctx.admission.try_admit(in_system).map_err(|reason| self.shed_bytes(reason))
    }

    fn shed_overflow(&self) -> Vec<u8> {
        self.shed_bytes(ShedReason::QueueFull)
    }

    fn enqueued(&self, depth: usize) {
        self.ctx.metrics.set_queue_depth(depth);
    }

    fn dequeued(&self, sojourn_us: u64, depth: usize) {
        self.ctx.metrics.set_queue_depth(depth);
        // Feed the admission controller the sojourn this request spent
        // queued, on a monotonic µs clock anchored at server start.
        let now_us = self.ctx.started.elapsed().as_micros() as u64;
        self.ctx.admission.on_dequeue(sojourn_us, now_us);
        self.ctx.admission.begin();
    }

    fn finished(&self, panicked: bool) {
        self.ctx.admission.end();
        if panicked {
            self.ctx.metrics.record(Endpoint::Other, StatusClass::Internal);
        }
    }

    fn http_error(&self, err: &HttpError) -> Option<Vec<u8>> {
        let (class, reason) = match err {
            // Clean close or transport error: nothing to say.
            HttpError::Closed | HttpError::Io(_) => return None,
            HttpError::Malformed(reason) => (StatusClass::BadRequest, *reason),
            // A started-but-stalled request (slow loris): answer 408
            // and reclaim the connection.
            HttpError::Timeout => (StatusClass::Timeout, "request read timed out"),
            HttpError::TooLarge { status, reason } => {
                let class = if *status == 413 {
                    StatusClass::PayloadTooLarge
                } else {
                    StatusClass::HeadersTooLarge
                };
                (class, *reason)
            }
        };
        self.ctx.metrics.record(Endpoint::Other, class);
        let mut out = Vec::new();
        respond_error(&mut out, class, reason, true);
        Some(out)
    }

    fn chaos_panics(&self, conn_index: u64) -> bool {
        self.ctx
            .chaos
            .is_some_and(|c| chaos_panics_connection(c.seed, conn_index, c.worker_panic_rate))
    }

    fn on_chaos_panic(&self) {
        self.ctx.metrics.record_chaos_panic();
    }

    fn cancel(&self) -> &CancelToken {
        &self.ctx.cancel
    }

    fn set_connections(&self, open: u64) {
        self.ctx.metrics.set_connections(open);
    }
}

/// One worker's handler: the dispatch table plus its worker-local
/// [`BatchExec`].
struct CometWorker {
    ctx: Arc<ServerCtx>,
    exec: BatchExec,
}

impl WorkerHandler for CometWorker {
    fn handle(&mut self, request: &Request, close: bool) -> Vec<u8> {
        dispatch(&self.ctx, request, close, &self.exec)
    }
}

/// Serialize `body` and write it with `status`.
fn respond_json<T: serde::Serialize>(out: &mut Vec<u8>, status: u16, body: &T, close: bool) {
    let text = serde_json::to_string(body).unwrap_or_else(|_| "{}".into());
    let _ = http::write_response(out, status, "application/json", text.as_bytes(), close);
}

/// Write an [`ErrorResponse`] with `status`.
fn respond_error(out: &mut Vec<u8>, status: StatusClass, error: &str, close: bool) {
    respond_json(out, status.code(), &ErrorResponse::new(error), close);
}

/// Route one parsed request, returning the full response bytes.
pub(crate) fn dispatch(
    ctx: &ServerCtx,
    request: &Request,
    close: bool,
    exec: &BatchExec,
) -> Vec<u8> {
    let mut out = Vec::new();
    dispatch_into(ctx, &mut out, request, close, exec);
    out
}

/// The dispatch table proper, writing into `out`.
fn dispatch_into(
    ctx: &ServerCtx,
    out: &mut Vec<u8>,
    request: &Request,
    close: bool,
    exec: &BatchExec,
) {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/predict") => {
            let start = Instant::now();
            let status = handle_predict(ctx, out, request, close);
            ctx.metrics.record(Endpoint::Predict, status);
            if status == StatusClass::Ok {
                ctx.metrics.observe_latency(Endpoint::Predict, start.elapsed().as_micros() as u64);
            }
        }
        ("POST", "/v1/explain") => {
            let start = Instant::now();
            let status = handle_explain(ctx, out, request, close, exec);
            ctx.metrics.record(Endpoint::Explain, status);
            if status == StatusClass::Ok {
                ctx.metrics.observe_latency(Endpoint::Explain, start.elapsed().as_micros() as u64);
            }
        }
        ("POST", "/admin/model") => {
            let status = handle_admin_post(ctx, out, request, close);
            ctx.metrics.record(Endpoint::Admin, status);
        }
        ("GET", "/admin/model") => {
            ctx.metrics.record(Endpoint::Admin, StatusClass::Ok);
            respond_json(out, 200, &lifecycle::admin_status(ctx), close);
        }
        ("GET", "/healthz") => {
            // Liveness only: the process is up and serving its event
            // loop. Routability is /readyz's job.
            ctx.metrics.record(Endpoint::Healthz, StatusClass::Ok);
            let epoch = ctx.epoch.load();
            let body = format!(
                "{{\"v\":{WIRE_V},\"ok\":true,\"model\":{},\"model_version\":{}}}",
                serde_json::to_string(&epoch.name).unwrap_or_else(|_| "\"?\"".into()),
                epoch.version
            );
            let _ = http::write_response(out, 200, "application/json", body.as_bytes(), close);
        }
        ("GET", "/readyz") => handle_readyz(ctx, out, close),
        ("GET", "/analytics/categories") => {
            let status = handle_analytics(ctx, out, close, "categories");
            ctx.metrics.record(Endpoint::Analytics, status);
        }
        ("GET", "/analytics/opcodes") => {
            let status = handle_analytics(ctx, out, close, "opcodes");
            ctx.metrics.record(Endpoint::Analytics, status);
        }
        ("GET", "/metrics") => {
            ctx.metrics.record(Endpoint::Metrics, StatusClass::Ok);
            // Refresh the admission gauges at scrape time.
            ctx.metrics.set_admission(ctx.admission.limit(), ctx.admission.last_delay_us());
            let text = ctx.metrics.render_prometheus(&ctx.cache_stats(), &ctx.stale_by_version());
            let _ =
                http::write_response(out, 200, "text/plain; version=0.0.4", text.as_bytes(), close);
        }
        (
            _,
            "/v1/predict"
            | "/v1/explain"
            | "/healthz"
            | "/readyz"
            | "/metrics"
            | "/admin/model"
            | "/analytics/categories"
            | "/analytics/opcodes",
        ) => {
            ctx.metrics.record(Endpoint::Other, StatusClass::BadRequest);
            respond_error(out, StatusClass::BadRequest, "method not allowed", close);
        }
        _ => {
            ctx.metrics.record(Endpoint::Other, StatusClass::NotFound);
            respond_error(out, StatusClass::NotFound, "no such endpoint", close);
        }
    }
}

/// `GET /analytics/categories` and `/analytics/opcodes`: the store's
/// build-time feature-importance rollups (the paper's Figure 3/4
/// breakdowns), served straight from the open store. Without a
/// readable store there is nothing to aggregate — 503 with the reason.
fn handle_analytics(ctx: &ServerCtx, out: &mut Vec<u8>, close: bool, view: &str) -> StatusClass {
    let Some(slot) = ctx.store() else {
        respond_error(out, StatusClass::Shed, "no explanation store configured", close);
        return StatusClass::Shed;
    };
    let store = match &slot.state {
        StoreState::Open(store) => store,
        StoreState::Error(e) => {
            respond_error(out, StatusClass::Shed, &format!("store unreadable: {e}"), close);
            return StatusClass::Shed;
        }
    };
    let rollups = match view {
        "categories" => serde_json::to_string(&store.analytics().categories),
        _ => serde_json::to_string(&store.analytics().opcodes),
    };
    let Ok(rollups) = rollups else {
        respond_error(out, StatusClass::Internal, "rollup serialization failed", close);
        return StatusClass::Internal;
    };
    let provenance = store.provenance();
    let body = format!(
        "{{\"v\":{WIRE_V},\"source\":\"store\",\"model_kind\":{},\"model_version\":{},\"records\":{},\"{view}\":{rollups}}}",
        serde_json::to_string(&provenance.model_kind).unwrap_or_else(|_| "\"?\"".into()),
        provenance.model_version,
        store.len(),
    );
    let _ = http::write_response(out, 200, "application/json", body.as_bytes(), close);
    StatusClass::Ok
}

/// The `"store"` object in the `/readyz` body, when a store is
/// configured: whether it opened, whether its bound version still
/// matches the live epoch (hits are disabled after a hot-swap), and
/// the record count. Unreadable stores report the error instead.
fn readyz_store_json(slot: &StoreSlot, live_version: u64) -> String {
    match &slot.state {
        StoreState::Open(store) => format!(
            "{{\"open\":true,\"version_match\":{},\"records\":{}}}",
            live_version == slot.bound_version,
            store.len()
        ),
        StoreState::Error(e) => format!(
            "{{\"open\":false,\"error\":{}}}",
            serde_json::to_string(e).unwrap_or_else(|_| "\"unreadable\"".into())
        ),
    }
}

/// `GET /readyz`: readiness = the model answers a probe, the circuit
/// breaker is closed, queue delay is under its target, and the server
/// is not draining. 503 with the failing reasons otherwise, so an
/// orchestrator can both act on and explain a routing decision.
fn handle_readyz(ctx: &ServerCtx, out: &mut Vec<u8>, close: bool) {
    let epoch = ctx.epoch.load();
    // Lazy, sticky model probe: cheap once warm, and a model that
    // cannot answer `nop` was never going to serve anything.
    if !ctx.ready.load(Relaxed) {
        let probed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            comet_isa::parse_block("nop")
                .ok()
                .and_then(|block| epoch.stack.try_predict(&block).ok())
                .is_some_and(|cost| cost.is_finite())
        }))
        .unwrap_or(false);
        if probed {
            ctx.ready.store(true, Relaxed);
        }
    }
    let mut reasons: Vec<String> = Vec::new();
    if !ctx.ready.load(Relaxed) {
        reasons.push("model probe failed".into());
    }
    if epoch.stack.resilience().is_some_and(|r| r.degraded) {
        reasons.push("circuit breaker open".into());
    }
    if ctx.admission.overloaded() {
        reasons.push("queue delay above target".into());
    }
    if ctx.cancel.is_cancelled() {
        reasons.push("draining".into());
    }
    // A configured store is part of the contract the operator asked
    // for: unreadable means not ready (orchestrators route elsewhere
    // until it's rebuilt or the flag is dropped). A version-mismatched
    // store is healthy-but-bypassed, reported but not a failure.
    let store_section = ctx.store().map(|slot| {
        if let StoreState::Error(_) = &slot.state {
            reasons.push(format!("store unreadable ({})", slot.path));
        }
        format!(",\"store\":{}", readyz_store_json(slot, epoch.version))
    });
    let store_section = store_section.unwrap_or_default();
    if reasons.is_empty() {
        ctx.metrics.record(Endpoint::Readyz, StatusClass::Ok);
        let body = format!(
            "{{\"v\":{WIRE_V},\"ready\":true,\"model_version\":{}{store_section}}}",
            epoch.version
        );
        let _ = http::write_response(out, 200, "application/json", body.as_bytes(), close);
    } else {
        ctx.metrics.record(Endpoint::Readyz, StatusClass::Shed);
        let list = serde_json::to_string(&reasons).unwrap_or_else(|_| "[]".into());
        let body = format!(
            "{{\"v\":{WIRE_V},\"ready\":false,\"model_version\":{},\"reasons\":{list}{store_section}}}",
            epoch.version
        );
        let _ = http::write_response(out, 503, "application/json", body.as_bytes(), close);
    }
}

/// The effective deadline for a request: body field beats header beats
/// server default; 0 anywhere means "no deadline".
fn effective_deadline(
    ctx: &ServerCtx,
    body_ms: Option<u64>,
    header_ms: Option<u64>,
) -> Option<Duration> {
    let ms = body_ms.or(header_ms).unwrap_or(ctx.default_deadline_ms);
    (ms > 0).then(|| Duration::from_millis(ms))
}

/// `POST /v1/predict`: one model query, guarded by the [`DeadlineModel`]
/// watchdog when a deadline applies (the header or body budget becomes
/// the watchdog's abandonment deadline, so even a genuinely stalled
/// backend cannot hold the worker past it).
fn handle_predict(
    ctx: &ServerCtx,
    out: &mut Vec<u8>,
    request: &Request,
    close: bool,
) -> StatusClass {
    let req: PredictRequest = match decode_request(&request.body) {
        Ok(req) => req,
        Err(e) => {
            respond_error(out, StatusClass::BadRequest, &e, close);
            return StatusClass::BadRequest;
        }
    };
    let block = match comet_isa::parse_block(&req.block) {
        Ok(block) => block,
        Err(e) => {
            respond_error(out, StatusClass::BadRequest, &format!("unparseable block: {e}"), close);
            return StatusClass::BadRequest;
        }
    };
    if let Some(status) = enforce_shard(ctx, out, &block, close) {
        return status;
    }
    // One epoch for the whole request: the prediction and the
    // version/name reported alongside it always agree, even if a swap
    // lands while this request is in flight.
    let epoch = ctx.epoch.load();
    let result = match effective_deadline(ctx, req.deadline_ms, request.deadline_ms) {
        Some(deadline) => {
            DeadlineModel::from_arc(Arc::clone(&epoch.stack), deadline).try_predict(&block)
        }
        None => epoch.stack.try_predict(&block),
    };
    match result {
        Ok(prediction) => {
            let body = PredictResponse {
                v: WIRE_V,
                model: epoch.name.clone(),
                model_version: epoch.version,
                prediction,
            };
            respond_json(out, 200, &body, close);
            lifecycle::note_outcome(ctx, epoch.version, lifecycle::Outcome::Ok);
            StatusClass::Ok
        }
        Err(ModelError::Timeout { .. }) => {
            respond_error(out, StatusClass::Timeout, "prediction deadline exceeded", close);
            StatusClass::Timeout
        }
        Err(e) => {
            respond_error(out, StatusClass::Internal, &format!("model failure: {e}"), close);
            lifecycle::note_outcome(ctx, epoch.version, lifecycle::Outcome::Failure);
            StatusClass::Internal
        }
    }
}

/// `--shard i/M` ownership check for a parsed block. `None` means this
/// process owns the key (or sharding is off); `Some(Conflict)` means
/// the 409 naming the true owner was already written.
fn enforce_shard(
    ctx: &ServerCtx,
    out: &mut Vec<u8>,
    block: &BasicBlock,
    close: bool,
) -> Option<StatusClass> {
    let (ring, spec) = ctx.shard.as_ref()?;
    let owner = ring.owner(route::fnv1a(block.to_string().as_bytes()));
    if owner == spec.index {
        return None;
    }
    respond_error(
        out,
        StatusClass::Conflict,
        &format!("block owned by shard {owner}/{} (this is shard {spec})", spec.count),
        close,
    );
    Some(StatusClass::Conflict)
}

/// `POST /admin/model`: the model-lifecycle entry point (stage, shadow
/// validate, hot-swap, rollback). See [`lifecycle`].
fn handle_admin_post(
    ctx: &ServerCtx,
    out: &mut Vec<u8>,
    request: &Request,
    close: bool,
) -> StatusClass {
    let req: AdminModelRequest = match decode_request(&request.body) {
        Ok(req) => req,
        Err(e) => {
            respond_error(out, StatusClass::BadRequest, &e, close);
            return StatusClass::BadRequest;
        }
    };
    match lifecycle::admin_model(ctx, &req) {
        Ok((status, body)) => {
            respond_json(out, status.code(), &body, close);
            status
        }
        Err((status, error)) => {
            respond_error(out, status, &error, close);
            status
        }
    }
}

/// `POST /v1/explain` with single-flight coalescing.
fn handle_explain(
    ctx: &ServerCtx,
    out: &mut Vec<u8>,
    request: &Request,
    close: bool,
    exec: &BatchExec,
) -> StatusClass {
    let req: ExplainRequest = match decode_request(&request.body) {
        Ok(req) => req,
        Err(e) => {
            respond_error(out, StatusClass::BadRequest, &e, close);
            return StatusClass::BadRequest;
        }
    };
    let block = match comet_isa::parse_block(&req.block) {
        Ok(block) => block,
        Err(e) => {
            respond_error(out, StatusClass::BadRequest, &format!("unparseable block: {e}"), close);
            return StatusClass::BadRequest;
        }
    };
    if let Some(status) = enforce_shard(ctx, out, &block, close) {
        return status;
    }
    let epsilon = req.epsilon.filter(|e| e.is_finite() && *e > 0.0).unwrap_or(ctx.default_epsilon);
    let deadline = effective_deadline(ctx, req.deadline_ms, request.deadline_ms);

    // One epoch for the whole request (see handle_predict).
    let epoch = ctx.epoch.load();
    let canonical = block.to_string();

    // Top of the ladder: the precomputed store. A hit needs the exact
    // provenance triple — the epoch version the store was bound to at
    // boot (hot-swaps structurally invalidate it), the store's ε bit
    // pattern, and the store's build seed — because stored
    // explanations are bitwise replicas of the live search only under
    // those parameters. Anything else falls through to the live path.
    if let Some(slot) = ctx.store() {
        if let StoreState::Open(store) = &slot.state {
            let provenance = store.provenance();
            if epoch.version == slot.bound_version
                && epsilon.to_bits() == provenance.epsilon_bits
                && req.seed == provenance.seed
            {
                let lookup_start = Instant::now();
                match store.lookup(&canonical) {
                    Some(explanation) => {
                        ctx.metrics.record_store_hit(lookup_start.elapsed().as_micros() as u64);
                        ctx.metrics.record_tier(Tier::Store);
                        let mut dto = ExplanationDto::from(&explanation);
                        dto.tier = Tier::Store.label().into();
                        dto.source = "store".into();
                        let body = ExplainResponse {
                            v: WIRE_V,
                            model: epoch.name.clone(),
                            model_version: epoch.version,
                            epsilon,
                            seed: req.seed,
                            coalesced: false,
                            explanation: dto,
                        };
                        respond_json(out, 200, &body, close);
                        lifecycle::note_outcome(
                            ctx,
                            epoch.version,
                            lifecycle::Outcome::ExplainTier(Tier::Store),
                        );
                        return StatusClass::Ok;
                    }
                    None => ctx.metrics.record_store_miss(),
                }
            }
        }
    }

    // Coalescing key: canonical text (parse → Display normalizes
    // whitespace/case) + ε + seed — folded with the epoch version so a
    // follower can never piggyback on a search run against a different
    // model than the one it will report.
    let key = wire::explain_key(&canonical, epsilon, req.seed) ^ splitmix64(epoch.version);
    let (flight, leader) = {
        let mut flights = ctx.flights.lock().unwrap_or_else(|p| p.into_inner());
        match flights.get(&key) {
            Some(flight) => (Arc::clone(flight), false),
            None => {
                let flight = Arc::new(Flight { state: Mutex::new(None), done: Condvar::new() });
                flights.insert(key, Arc::clone(&flight));
                (flight, true)
            }
        }
    };

    let result: FlightResult = if leader {
        ctx.metrics.record_search();
        // The search must always complete the flight — a panic that
        // left twins parked forever would wedge their workers.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_search(ctx, &epoch, &block, epsilon, req.seed, deadline, exec)
        }))
        .unwrap_or_else(|_| Err((StatusClass::Internal, "explanation search panicked".into())));
        if let Ok((_, tier)) = &outcome {
            ctx.metrics.record_tier(*tier);
        }
        {
            let mut state = flight.state.lock().unwrap_or_else(|p| p.into_inner());
            *state = Some(outcome.clone());
        }
        flight.done.notify_all();
        ctx.flights.lock().unwrap_or_else(|p| p.into_inner()).remove(&key);
        outcome
    } else {
        ctx.metrics.record_coalesced();
        let mut state = flight.state.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(result) = state.as_ref() {
                break result.clone();
            }
            state = flight.done.wait(state).unwrap_or_else(|p| p.into_inner());
        }
    };

    match result {
        Ok((explanation, tier)) => {
            let mut dto = ExplanationDto::from(&explanation);
            dto.tier = tier.label().into();
            let body = ExplainResponse {
                v: WIRE_V,
                model: epoch.name.clone(),
                model_version: epoch.version,
                epsilon,
                seed: req.seed,
                coalesced: !leader,
                explanation: dto,
            };
            respond_json(out, 200, &body, close);
            lifecycle::note_outcome(ctx, epoch.version, lifecycle::Outcome::ExplainTier(tier));
            StatusClass::Ok
        }
        Err((status, error)) => {
            respond_error(out, status, &error, close);
            if status == StatusClass::Internal {
                lifecycle::note_outcome(ctx, epoch.version, lifecycle::Outcome::Failure);
            }
            status
        }
    }
}

/// Pick the degradation-ladder tier to *start* at, from pressure
/// signals available before spending any model queries: an open
/// circuit breaker or a standing queue means reduced budget; a
/// deadline the explain-latency histogram says the full search cannot
/// meet steps down once (can't meet p90) or straight to the cached
/// tier (deadline under p90/8 — not even a reduced search fits).
/// The histogram must have seen at least 8 explains before it is
/// trusted; before that only the breaker/queue signals apply.
fn choose_tier(ctx: &ServerCtx, stack: &Stack, deadline: Option<Duration>) -> Tier {
    let mut tier = Tier::Full;
    let breaker_open = stack.resilience().is_some_and(|r| r.degraded);
    if breaker_open || ctx.admission.overloaded() {
        tier = Tier::ReducedBudget;
    }
    if let Some(deadline) = deadline {
        let hist = ctx.metrics.explain_latency();
        if hist.count() >= 8 {
            let p90_us = hist.quantile_us(0.9);
            let deadline_us = deadline.as_micros() as f64;
            if deadline_us < p90_us / 8.0 {
                tier = Tier::Cached;
            } else if deadline_us < p90_us {
                tier = Tier::ReducedBudget;
            }
        }
    }
    tier
}

/// Remember a good explanation for the ladder's cached tier (bounded,
/// arbitrary eviction — staleness is the point, recency is not).
fn store_stale(ctx: &ServerCtx, key: (u64, u64), explanation: &Explanation) {
    let mut stale = ctx.stale.lock().unwrap_or_else(|p| p.into_inner());
    if stale.len() >= STALE_CAP && !stale.contains_key(&key) {
        if let Some(&evict) = stale.keys().next() {
            stale.remove(&evict);
        }
    }
    stale.insert(key, explanation.clone());
}

/// Run one explain through the degradation ladder. Starts at the tier
/// [`choose_tier`] picks proactively, descends a rung whenever a
/// search tier fails (timeout or model failure), and only reports an
/// error once the baseline rung itself fails. The worker's `BatchExec`
/// counters are cumulative, so each search's delta is folded into the
/// metrics registry here.
fn run_search(
    ctx: &ServerCtx,
    epoch: &ModelEpoch,
    block: &BasicBlock,
    epsilon: f64,
    seed: u64,
    deadline: Option<Duration>,
    exec: &BatchExec,
) -> FlightResult {
    let start = Instant::now();
    // Seed-independent, version-scoped key: any seed's completed search
    // can serve as a stale stand-in for this (model version, block, ε)
    // — never for another model's.
    let stale_key = (epoch.version, wire::explain_key(&block.to_string(), epsilon, 0));
    let base = ExplainConfig { epsilon, ..ctx.explain_base };
    let mut tier = choose_tier(ctx, &epoch.stack, deadline);
    let mut last_error: Option<(StatusClass, String)> = None;
    loop {
        match tier {
            // The store tier is handled before the flight is created
            // (handle_explain); a search that reaches this ladder
            // already missed or bypassed it.
            Tier::Store => tier = Tier::Full,
            Tier::Full | Tier::ReducedBudget => {
                let remaining = deadline.map(|d| d.saturating_sub(start.elapsed()));
                if remaining == Some(Duration::ZERO) {
                    // Budget already gone; don't bother starting.
                    last_error.get_or_insert((
                        StatusClass::Timeout,
                        "explanation deadline exceeded".into(),
                    ));
                    tier = Tier::Cached;
                    continue;
                }
                let config = if tier == Tier::Full { base } else { base.reduced_budget() };
                let gate = DeadlineGate {
                    inner: &epoch.stack,
                    start: Instant::now(),
                    budget: remaining,
                    cancel: Some(&ctx.cancel),
                };
                match attempt_search(ctx, &gate, config, block, seed, exec) {
                    Ok(mut explanation) => {
                        if tier != Tier::Full {
                            explanation.degraded = true;
                        }
                        store_stale(ctx, stale_key, &explanation);
                        return Ok((explanation, tier));
                    }
                    // A malformed/unexplainable block will not get
                    // better further down the ladder.
                    Err((StatusClass::BadRequest, e)) => return Err((StatusClass::BadRequest, e)),
                    Err(e) => {
                        last_error = Some(e);
                        tier = if tier == Tier::Full { Tier::ReducedBudget } else { Tier::Cached };
                    }
                }
            }
            Tier::Cached => {
                let cached = {
                    let stale = ctx.stale.lock().unwrap_or_else(|p| p.into_inner());
                    stale.get(&stale_key).cloned()
                };
                match cached {
                    Some(mut explanation) => {
                        explanation.degraded = true;
                        return Ok((explanation, Tier::Cached));
                    }
                    None => tier = Tier::Baseline,
                }
            }
            Tier::Baseline => {
                // Last rung: a minimal probe, without the request
                // deadline (it costs a few hundred queries at most and
                // an answer beats a clean timeout here). Cancellation
                // still applies so drain is never blocked on it.
                let gate = DeadlineGate {
                    inner: &epoch.stack,
                    start: Instant::now(),
                    budget: None,
                    cancel: Some(&ctx.cancel),
                };
                match attempt_search(ctx, &gate, base.baseline_probe(), block, seed, exec) {
                    Ok(mut explanation) => {
                        explanation.degraded = true;
                        return Ok((explanation, Tier::Baseline));
                    }
                    Err(e) => {
                        // Report the first (most informative) failure.
                        return Err(last_error.unwrap_or(e));
                    }
                }
            }
        }
    }
}

/// One search attempt at one rung, with batching metrics folded in and
/// errors mapped to wire status classes.
fn attempt_search(
    ctx: &ServerCtx,
    gate: &DeadlineGate<'_>,
    config: ExplainConfig,
    block: &BasicBlock,
    seed: u64,
    exec: &BatchExec,
) -> Result<Explanation, (StatusClass, String)> {
    let explainer = Explainer::new(gate, config);
    let (queries_before, chunks_before) = (exec.queries_batched(), exec.chunks());
    let result = explainer.explain_batched(block, seed, exec);
    ctx.metrics.record_batched(
        Endpoint::Explain,
        exec.queries_batched() - queries_before,
        exec.chunks() - chunks_before,
    );
    match result {
        Ok(explanation) => Ok(explanation),
        Err(ExplainError::Model(ModelError::Timeout { .. })) => {
            Err((StatusClass::Timeout, "explanation deadline exceeded".into()))
        }
        Err(ExplainError::Model(e)) => Err((StatusClass::Internal, format!("model failure: {e}"))),
        Err(e) => Err((StatusClass::BadRequest, e.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use comet_models::ResilientConfig;

    #[test]
    fn model_kind_parses_the_documented_names() {
        assert_eq!(ModelKind::parse("crude"), Some(ModelKind::CrudeHaswell));
        assert_eq!(ModelKind::parse("crude-haswell"), Some(ModelKind::CrudeHaswell));
        assert_eq!(ModelKind::parse("crude-skylake"), Some(ModelKind::CrudeSkylake));
        assert_eq!(ModelKind::parse("uica"), Some(ModelKind::Uica));
        assert_eq!(ModelKind::parse("ithemal"), None);
        // Labels round-trip through parse (the registry relies on it).
        for kind in [ModelKind::CrudeHaswell, ModelKind::CrudeSkylake, ModelKind::Uica] {
            assert_eq!(ModelKind::parse(kind.label()), Some(kind));
        }
    }

    #[test]
    fn deadline_gate_fails_queries_after_expiry() {
        let (base, _) = ModelKind::CrudeHaswell.build();
        let stack: Stack =
            CachedModel::bounded(ResilientModel::new(base, ResilientConfig::default()), 1024);
        let block = comet_isa::parse_block("add rcx, rax").unwrap();
        let healthy = DeadlineGate {
            inner: &stack,
            start: Instant::now(),
            budget: Some(Duration::from_secs(60)),
            cancel: None,
        };
        assert!(healthy.try_predict(&block).is_ok());
        let expired = DeadlineGate {
            inner: &stack,
            start: Instant::now() - Duration::from_secs(1),
            budget: Some(Duration::from_millis(1)),
            cancel: None,
        };
        assert!(matches!(expired.try_predict(&block), Err(ModelError::Timeout { .. })));
        let unbounded =
            DeadlineGate { inner: &stack, start: Instant::now(), budget: None, cancel: None };
        assert!(unbounded.try_predict(&block).is_ok());
    }

    #[test]
    fn deadline_gate_fails_queries_once_cancelled() {
        let (base, _) = ModelKind::CrudeHaswell.build();
        let stack: Stack =
            CachedModel::bounded(ResilientModel::new(base, ResilientConfig::default()), 1024);
        let block = comet_isa::parse_block("add rcx, rax").unwrap();
        let token = CancelToken::new();
        let gate = DeadlineGate {
            inner: &stack,
            start: Instant::now(),
            budget: None,
            cancel: Some(&token),
        };
        assert!(gate.try_predict(&block).is_ok());
        token.cancel();
        assert!(matches!(gate.try_predict(&block), Err(ModelError::Timeout { .. })));
        assert!(gate
            .predict_batch(std::slice::from_ref(&block))
            .iter()
            .all(|r| matches!(r, Err(ModelError::Timeout { .. }))));
    }

    #[test]
    fn effective_deadline_prefers_body_then_header_then_default() {
        let (base, _) = ModelKind::CrudeHaswell.build();
        let server = Server::start_with_model(
            base,
            "test".into(),
            ServeConfig { addr: "127.0.0.1:0".into(), deadline_ms: 100, ..Default::default() },
        )
        .unwrap();
        let ctx = server.ctx();
        assert_eq!(effective_deadline(ctx, Some(7), Some(9)), Some(Duration::from_millis(7)));
        assert_eq!(effective_deadline(ctx, None, Some(9)), Some(Duration::from_millis(9)));
        assert_eq!(effective_deadline(ctx, None, None), Some(Duration::from_millis(100)));
        assert_eq!(effective_deadline(ctx, Some(0), None), None, "explicit 0 disables");
        server.shutdown();
    }

    #[test]
    fn chaos_schedule_is_deterministic_and_rate_shaped() {
        // Same (seed, n, rate) → same verdict, always.
        for n in 0..256 {
            assert_eq!(chaos_panics_connection(42, n, 0.1), chaos_panics_connection(42, n, 0.1));
        }
        // rate 0 never fires; rate 1 always fires.
        assert!((0..256).all(|n| !chaos_panics_connection(7, n, 0.0)));
        assert!((0..256).all(|n| chaos_panics_connection(7, n, 1.0)));
        // A 10% rate lands in a loose band over 4096 draws.
        let hits = (0..4096).filter(|&n| chaos_panics_connection(42, n, 0.1)).count();
        assert!((200..=650).contains(&hits), "10% of 4096 ≈ 410, got {hits}");
        // Different seeds give different schedules.
        let a: Vec<bool> = (0..256).map(|n| chaos_panics_connection(1, n, 0.2)).collect();
        let b: Vec<bool> = (0..256).map(|n| chaos_panics_connection(2, n, 0.2)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn choose_tier_reacts_to_pressure_and_deadlines() {
        let (base, _) = ModelKind::CrudeHaswell.build();
        let server = Server::start_with_model(
            base,
            "test".into(),
            ServeConfig { addr: "127.0.0.1:0".into(), ..Default::default() },
        )
        .unwrap();
        let ctx = server.ctx();
        let stack = Arc::clone(&ctx.epoch.load().stack);
        // No pressure, no history: full search regardless of deadline.
        assert_eq!(choose_tier(ctx, &stack, None), Tier::Full);
        assert_eq!(choose_tier(ctx, &stack, Some(Duration::from_millis(1))), Tier::Full);
        // Teach the histogram that explains take ~100ms.
        for _ in 0..10 {
            ctx.metrics().observe_latency(Endpoint::Explain, 100_000);
        }
        assert_eq!(choose_tier(ctx, &stack, None), Tier::Full);
        assert_eq!(choose_tier(ctx, &stack, Some(Duration::from_secs(1))), Tier::Full);
        // A deadline under p90 steps down one rung…
        assert_eq!(choose_tier(ctx, &stack, Some(Duration::from_millis(50))), Tier::ReducedBudget);
        // …and one under p90/8 goes straight to the cached tier.
        assert_eq!(choose_tier(ctx, &stack, Some(Duration::from_millis(2))), Tier::Cached);
        server.shutdown();
    }

    #[test]
    fn stale_store_is_bounded() {
        let (base, _) = ModelKind::CrudeHaswell.build();
        let server = Server::start_with_model(
            base,
            "test".into(),
            ServeConfig { addr: "127.0.0.1:0".into(), ..Default::default() },
        )
        .unwrap();
        let ctx = server.ctx();
        let explanation = Explanation {
            features: comet_core::FeatureSet::new(),
            precision: 1.0,
            coverage: 1.0,
            prediction: 1.0,
            anchored: true,
            queries: 1,
            faults: 0,
            retries: 0,
            degraded: false,
            duration_secs: 0.0,
        };
        for key in 0..(STALE_CAP as u64 + 100) {
            store_stale(ctx, (1, key), &explanation);
        }
        let len = ctx.stale.lock().unwrap().len();
        assert!(len <= STALE_CAP, "stale store grew to {len}");
        server.shutdown();
    }
}
