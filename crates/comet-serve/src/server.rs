//! The service itself: accept loop → bounded queue → worker pool →
//! shared model stack.
//!
//! # Architecture
//!
//! One thread runs the accept loop; `workers` threads run connections.
//! The bounded [`BoundedQueue`] between them is the backpressure
//! point: when it is full the accept loop answers `503` immediately
//! and closes (load shedding), so overload degrades into fast, honest
//! rejections instead of unbounded memory growth or silent kernel-side
//! drops.
//!
//! Workers share one process-wide model stack,
//! `CachedModel(ResilientModel(base))` behind an `Arc`: the sharded
//! prediction cache deduplicates the highly repetitive query stream
//! explanations produce (its hit rate is re-exported at `/metrics`),
//! and the resilient layer retries transient faults and trips its
//! circuit breaker on a persistently failing backend. Per-request
//! deadlines compose on top per query path — see [`DeadlineGate`] and
//! the predict handler's watchdog.
//!
//! Identical in-flight explains — same canonical block text, same ε,
//! same seed — are **coalesced single-flight**: the first request runs
//! the anchors search, later twins park on a condvar and share the
//! result, so a thundering herd on one hot block costs one search.
//!
//! Graceful drain: cancelling the server's [`CancelToken`] (the binary
//! wires it to SIGINT via `comet_core::cancel::install_sigint`) stops
//! the accept loop, shuts the queue down, lets workers finish every
//! accepted connection's in-flight request, and then joins them.

use std::collections::HashMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::http::{self, HttpError, Request};
use crate::metrics::{Endpoint, Registry, StatusClass};
use crate::queue::BoundedQueue;
use crate::wire::{
    self, decode_request, ErrorResponse, ExplainRequest, ExplainResponse, ExplanationDto,
    PredictRequest, PredictResponse, WIRE_V,
};
use comet_core::cancel::CancelToken;
use comet_core::{BatchExec, ExplainConfig, ExplainError, Explainer, Explanation};
use comet_isa::{BasicBlock, Microarch};
use comet_models::{
    CachedModel, CostModel, CrudeModel, DeadlineModel, ModelError, QueryStats, ResilientConfig,
    ResilientModel, UicaSurrogate,
};

/// A boxed, shareable cost model — the bottom of the serving stack.
pub type BoxedModel = Box<dyn CostModel + Send + Sync>;

/// The process-wide shared model stack (see module docs).
type Stack = CachedModel<ResilientModel<BoxedModel>>;

/// Which base model the binary serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// The paper's interpretable analytical model C on Haswell.
    CrudeHaswell,
    /// The analytical model C on Skylake.
    CrudeSkylake,
    /// The uiCA surrogate (pipeline simulator) on Haswell.
    Uica,
}

impl ModelKind {
    /// Parse a `--model` argument.
    pub fn parse(s: &str) -> Option<ModelKind> {
        match s {
            "crude" | "crude-haswell" => Some(ModelKind::CrudeHaswell),
            "crude-skylake" => Some(ModelKind::CrudeSkylake),
            "uica" => Some(ModelKind::Uica),
            _ => None,
        }
    }

    /// Instantiate the base model and its paper-default ε.
    pub fn build(self) -> (BoxedModel, f64) {
        match self {
            ModelKind::CrudeHaswell => (Box::new(CrudeModel::new(Microarch::Haswell)), 0.25),
            ModelKind::CrudeSkylake => (Box::new(CrudeModel::new(Microarch::Skylake)), 0.25),
            ModelKind::Uica => (Box::new(UicaSurrogate::new(Microarch::Haswell)), 0.5),
        }
    }
}

/// Server configuration (the binary's flags, as a struct).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:8080` (port 0 picks a free port).
    pub addr: String,
    /// Worker threads (each owns one connection at a time).
    pub workers: usize,
    /// Bounded request-queue depth; overflow is shed with a 503.
    pub queue_depth: usize,
    /// Default ε for explains (requests may override per call).
    pub epsilon: f64,
    /// Default per-request deadline in milliseconds; 0 disables
    /// deadline enforcement entirely.
    pub deadline_ms: u64,
    /// Shared prediction-cache capacity (entries).
    pub cache_capacity: usize,
    /// Model-batch size for the explain search: perturbed candidate
    /// blocks are evaluated through `predict_batch` in chunks of up to
    /// this many.
    pub batch: usize,
    /// Intra-explanation worker-pool size per serve worker. The serve
    /// workers already parallelize across requests, so this defaults to
    /// 1 (batching without extra threads); raise it on machines with
    /// spare cores when single-request latency matters more than
    /// aggregate throughput.
    pub search_pool: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:8080".into(),
            workers: 4,
            queue_depth: 64,
            epsilon: 0.25,
            deadline_ms: 0,
            cache_capacity: 1 << 20,
            batch: 16,
            search_pool: 1,
        }
    }
}

/// How long an idle keep-alive connection may sit between requests
/// before its worker reclaims itself.
const IDLE_TIMEOUT: Duration = Duration::from_secs(5);
/// Accept-loop poll interval while waiting for connections or
/// cancellation. The nonblocking-accept-plus-sleep pattern is what
/// lets a Ctrl-C-set flag stop the loop without a self-pipe, but the
/// sleep bounds connection-setup latency from below — 500µs keeps
/// that floor under typical request cost while the idle-poll syscall
/// rate (~2k/s) stays negligible.
const ACCEPT_POLL: Duration = Duration::from_micros(500);

/// One in-flight explain search that twins can park on.
struct Flight {
    state: Mutex<Option<FlightResult>>,
    done: Condvar,
}

/// What a finished flight hands every parked twin.
type FlightResult = Result<Explanation, (StatusClass, String)>;

/// Cooperative per-request deadline for the explain path.
///
/// An anchors search issues thousands of microsecond-scale model
/// queries; running each under the [`DeadlineModel`] watchdog (a
/// thread spawn per query) would cost more than the queries
/// themselves. The gate instead checks the request's wall-clock budget
/// before delegating each query and, once expired, fails every further
/// query with [`ModelError::Timeout`] — the explainer's budget-capped
/// fault-skipping sampler then winds down in microseconds and returns
/// its best candidate so far, flagged `degraded`. The true watchdog
/// (stalled-backend abandonment) still guards the single-query predict
/// path, where its per-call cost is irrelevant.
struct DeadlineGate<'a> {
    inner: &'a Stack,
    start: Instant,
    budget: Option<Duration>,
}

impl CostModel for DeadlineGate<'_> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn predict(&self, block: &BasicBlock) -> f64 {
        self.try_predict(block).unwrap_or(f64::NAN)
    }

    fn try_predict(&self, block: &BasicBlock) -> Result<f64, ModelError> {
        if let Some(budget) = self.budget {
            let elapsed = self.start.elapsed();
            if elapsed >= budget {
                return Err(ModelError::Timeout { elapsed, deadline: budget });
            }
        }
        self.inner.try_predict(block)
    }

    fn resilience(&self) -> Option<comet_models::ResilienceReport> {
        self.inner.resilience()
    }

    /// Batch path: check the wall-clock budget once per chunk, then
    /// forward the whole slice to the stack's `predict_batch` (cache
    /// partitioning and all). Expiry granularity is one chunk — a batch
    /// admitted just under the deadline runs to completion, which is
    /// bounded by `batch × per-query cost` (microseconds) and far
    /// cheaper than checking the clock per item.
    fn predict_batch(&self, blocks: &[BasicBlock]) -> Vec<Result<f64, ModelError>> {
        if let Some(budget) = self.budget {
            let elapsed = self.start.elapsed();
            if elapsed >= budget {
                return blocks
                    .iter()
                    .map(|_| Err(ModelError::Timeout { elapsed, deadline: budget }))
                    .collect();
            }
        }
        self.inner.predict_batch(blocks)
    }
}

/// Shared state visible to the accept loop, every worker, and (read
/// only) to embedding code like the bench client and tests.
pub struct ServerCtx {
    stack: Arc<Stack>,
    metrics: Registry,
    flights: Mutex<HashMap<u64, Arc<Flight>>>,
    explain_base: ExplainConfig,
    default_epsilon: f64,
    default_deadline_ms: u64,
    explain_batch: usize,
    search_pool: usize,
    model_name: String,
    cancel: CancelToken,
}

impl ServerCtx {
    /// The service metrics registry.
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// A snapshot of the shared prediction cache's counters.
    pub fn cache_stats(&self) -> QueryStats {
        self.stack.stats()
    }

    /// The cancellation token driving graceful drain.
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }
}

/// A running server: accept thread + worker pool, shut down via its
/// [`CancelToken`].
pub struct Server {
    ctx: Arc<ServerCtx>,
    addr: SocketAddr,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Bind and start serving `kind`'s model with `config`.
    pub fn start(kind: ModelKind, mut config: ServeConfig) -> std::io::Result<Server> {
        let (base, default_eps) = kind.build();
        if config.epsilon <= 0.0 {
            config.epsilon = default_eps;
        }
        let name = base.name().to_string();
        Server::start_with_model(base, name, config)
    }

    /// Start with an explicit base model — the injection point for
    /// tests and the bench client (e.g. a model with artificial
    /// latency, or a query counter).
    pub fn start_with_model(
        base: BoxedModel,
        model_name: String,
        config: ServeConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let resilient = ResilientModel::new(base, ResilientConfig::default());
        let stack = Arc::new(CachedModel::bounded(resilient, config.cache_capacity));
        let metrics = Registry::new();
        metrics.set_batch_size(config.batch.max(1));
        let ctx = Arc::new(ServerCtx {
            stack,
            metrics,
            flights: Mutex::new(HashMap::new()),
            explain_base: ExplainConfig { epsilon: config.epsilon, ..ExplainConfig::default() },
            default_epsilon: config.epsilon,
            default_deadline_ms: config.deadline_ms,
            explain_batch: config.batch.max(1),
            search_pool: config.search_pool.max(1),
            model_name,
            cancel: CancelToken::new(),
        });

        let queue = Arc::new(BoundedQueue::<TcpStream>::new(config.queue_depth));
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let ctx = Arc::clone(&ctx);
                let queue = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("comet-serve-worker-{i}"))
                    .spawn(move || worker_loop(&ctx, &queue))
                    .expect("spawn worker")
            })
            .collect();
        let accept = {
            let ctx = Arc::clone(&ctx);
            let queue = Arc::clone(&queue);
            std::thread::Builder::new()
                .name("comet-serve-accept".into())
                .spawn(move || accept_loop(&ctx, &queue, listener))
                .expect("spawn accept loop")
        };
        Ok(Server { ctx, addr, accept: Some(accept), workers })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared server state (metrics, cache stats, cancel token).
    pub fn ctx(&self) -> &Arc<ServerCtx> {
        &self.ctx
    }

    /// Block until the server drains and every thread exits. Returns
    /// immediately unless something cancelled the token (Ctrl-C, a
    /// test, the bench client finishing).
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }

    /// Cancel and drain: stop accepting, finish in-flight requests,
    /// join all threads.
    pub fn shutdown(self) {
        self.ctx.cancel.cancel();
        self.join();
    }
}

/// Accept connections until cancelled, pushing into the bounded queue
/// and shedding with an immediate 503 when it is full.
fn accept_loop(ctx: &ServerCtx, queue: &BoundedQueue<TcpStream>, listener: TcpListener) {
    while !ctx.cancel.is_cancelled() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Workers use blocking reads with an idle timeout.
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_nodelay(true);
                match queue.try_push(stream) {
                    Ok(()) => ctx.metrics.set_queue_depth(queue.depth()),
                    Err(mut stream) => {
                        ctx.metrics.record_shed();
                        ctx.metrics.record(Endpoint::Other, StatusClass::Shed);
                        let body = serde_json::to_string(&ErrorResponse::new(
                            "overloaded: request queue full",
                        ))
                        .unwrap_or_default();
                        let _ = http::write_response(
                            &mut stream,
                            StatusClass::Shed.code(),
                            "application/json",
                            body.as_bytes(),
                            true,
                        );
                        // Dropping the stream closes the shed connection.
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    // Drain phase: no new connections; queued ones still get served.
    queue.shutdown();
}

/// Pop connections until the queue shuts down and drains.
fn worker_loop(ctx: &ServerCtx, queue: &BoundedQueue<TcpStream>) {
    // One batch executor per worker, alive for the worker's lifetime:
    // its intra-explanation pool threads are spawned once, not per
    // request, and its occupancy counters are folded into the shared
    // registry after each search.
    let exec = BatchExec::new(ctx.explain_batch, ctx.search_pool);
    while let Some(stream) = queue.pop() {
        ctx.metrics.set_queue_depth(queue.depth());
        // A panicking handler must not kill the worker (the pool would
        // silently shrink); catch, count, close, move on.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            handle_connection(ctx, &stream, &exec);
        }));
        if result.is_err() {
            ctx.metrics.record(Endpoint::Other, StatusClass::Internal);
        }
    }
}

/// Serve requests on one connection until it closes, errors, idles
/// out, or the server drains.
fn handle_connection(ctx: &ServerCtx, stream: &TcpStream, exec: &BatchExec) {
    let _ = stream.set_read_timeout(Some(IDLE_TIMEOUT));
    let mut reader = BufReader::new(stream);
    loop {
        match http::read_request(&mut reader) {
            Ok(request) => {
                // During drain, answer the in-flight request and close.
                let close = request.close || ctx.cancel.is_cancelled();
                dispatch(ctx, stream, &request, close, exec);
                if close {
                    return;
                }
            }
            Err(HttpError::Closed) | Err(HttpError::Io(_)) => return,
            Err(HttpError::Malformed(reason)) => {
                ctx.metrics.record(Endpoint::Other, StatusClass::BadRequest);
                respond_error(stream, StatusClass::BadRequest, reason, true);
                return;
            }
        }
    }
}

/// Serialize `body` and write it with `status`.
fn respond_json<T: serde::Serialize>(stream: &TcpStream, status: u16, body: &T, close: bool) {
    let text = serde_json::to_string(body).unwrap_or_else(|_| "{}".into());
    let _ =
        http::write_response(&mut { stream }, status, "application/json", text.as_bytes(), close);
}

/// Write an [`ErrorResponse`] with `status`.
fn respond_error(stream: &TcpStream, status: StatusClass, error: &str, close: bool) {
    respond_json(stream, status.code(), &ErrorResponse::new(error), close);
}

/// Route one parsed request.
fn dispatch(ctx: &ServerCtx, stream: &TcpStream, request: &Request, close: bool, exec: &BatchExec) {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/predict") => {
            let start = Instant::now();
            let status = handle_predict(ctx, stream, request, close);
            ctx.metrics.record(Endpoint::Predict, status);
            if status == StatusClass::Ok {
                ctx.metrics.observe_latency(Endpoint::Predict, start.elapsed().as_micros() as u64);
            }
        }
        ("POST", "/v1/explain") => {
            let start = Instant::now();
            let status = handle_explain(ctx, stream, request, close, exec);
            ctx.metrics.record(Endpoint::Explain, status);
            if status == StatusClass::Ok {
                ctx.metrics.observe_latency(Endpoint::Explain, start.elapsed().as_micros() as u64);
            }
        }
        ("GET", "/healthz") => {
            ctx.metrics.record(Endpoint::Healthz, StatusClass::Ok);
            let body = format!(
                "{{\"v\":{WIRE_V},\"ok\":true,\"model\":{}}}",
                serde_json::to_string(&ctx.model_name).unwrap_or_else(|_| "\"?\"".into())
            );
            let _ = http::write_response(
                &mut { stream },
                200,
                "application/json",
                body.as_bytes(),
                close,
            );
        }
        ("GET", "/metrics") => {
            ctx.metrics.record(Endpoint::Metrics, StatusClass::Ok);
            let text = ctx.metrics.render_prometheus(&ctx.stack.stats());
            let _ = http::write_response(
                &mut { stream },
                200,
                "text/plain; version=0.0.4",
                text.as_bytes(),
                close,
            );
        }
        (_, "/v1/predict" | "/v1/explain" | "/healthz" | "/metrics") => {
            ctx.metrics.record(Endpoint::Other, StatusClass::BadRequest);
            respond_error(stream, StatusClass::BadRequest, "method not allowed", close);
        }
        _ => {
            ctx.metrics.record(Endpoint::Other, StatusClass::NotFound);
            respond_error(stream, StatusClass::NotFound, "no such endpoint", close);
        }
    }
}

/// The effective deadline for a request: body field beats header beats
/// server default; 0 anywhere means "no deadline".
fn effective_deadline(
    ctx: &ServerCtx,
    body_ms: Option<u64>,
    header_ms: Option<u64>,
) -> Option<Duration> {
    let ms = body_ms.or(header_ms).unwrap_or(ctx.default_deadline_ms);
    (ms > 0).then(|| Duration::from_millis(ms))
}

/// `POST /v1/predict`: one model query, guarded by the [`DeadlineModel`]
/// watchdog when a deadline applies (the header or body budget becomes
/// the watchdog's abandonment deadline, so even a genuinely stalled
/// backend cannot hold the worker past it).
fn handle_predict(
    ctx: &ServerCtx,
    stream: &TcpStream,
    request: &Request,
    close: bool,
) -> StatusClass {
    let req: PredictRequest = match decode_request(&request.body) {
        Ok(req) => req,
        Err(e) => {
            respond_error(stream, StatusClass::BadRequest, &e, close);
            return StatusClass::BadRequest;
        }
    };
    let block = match comet_isa::parse_block(&req.block) {
        Ok(block) => block,
        Err(e) => {
            respond_error(
                stream,
                StatusClass::BadRequest,
                &format!("unparseable block: {e}"),
                close,
            );
            return StatusClass::BadRequest;
        }
    };
    let result = match effective_deadline(ctx, req.deadline_ms, request.deadline_ms) {
        Some(deadline) => {
            DeadlineModel::from_arc(Arc::clone(&ctx.stack), deadline).try_predict(&block)
        }
        None => ctx.stack.try_predict(&block),
    };
    match result {
        Ok(prediction) => {
            let body = PredictResponse { v: WIRE_V, model: ctx.model_name.clone(), prediction };
            respond_json(stream, 200, &body, close);
            StatusClass::Ok
        }
        Err(ModelError::Timeout { .. }) => {
            respond_error(stream, StatusClass::Timeout, "prediction deadline exceeded", close);
            StatusClass::Timeout
        }
        Err(e) => {
            respond_error(stream, StatusClass::Internal, &format!("model failure: {e}"), close);
            StatusClass::Internal
        }
    }
}

/// `POST /v1/explain` with single-flight coalescing.
fn handle_explain(
    ctx: &ServerCtx,
    stream: &TcpStream,
    request: &Request,
    close: bool,
    exec: &BatchExec,
) -> StatusClass {
    let req: ExplainRequest = match decode_request(&request.body) {
        Ok(req) => req,
        Err(e) => {
            respond_error(stream, StatusClass::BadRequest, &e, close);
            return StatusClass::BadRequest;
        }
    };
    let block = match comet_isa::parse_block(&req.block) {
        Ok(block) => block,
        Err(e) => {
            respond_error(
                stream,
                StatusClass::BadRequest,
                &format!("unparseable block: {e}"),
                close,
            );
            return StatusClass::BadRequest;
        }
    };
    let epsilon = req.epsilon.filter(|e| e.is_finite() && *e > 0.0).unwrap_or(ctx.default_epsilon);
    let deadline = effective_deadline(ctx, req.deadline_ms, request.deadline_ms);

    // Coalescing key: canonical text (parse → Display normalizes
    // whitespace/case) + ε + seed.
    let key = wire::explain_key(&block.to_string(), epsilon, req.seed);
    let (flight, leader) = {
        let mut flights = ctx.flights.lock().unwrap_or_else(|p| p.into_inner());
        match flights.get(&key) {
            Some(flight) => (Arc::clone(flight), false),
            None => {
                let flight = Arc::new(Flight { state: Mutex::new(None), done: Condvar::new() });
                flights.insert(key, Arc::clone(&flight));
                (flight, true)
            }
        }
    };

    let result: FlightResult = if leader {
        ctx.metrics.record_search();
        // The search must always complete the flight — a panic that
        // left twins parked forever would wedge their workers.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_search(ctx, &block, epsilon, req.seed, deadline, exec)
        }))
        .unwrap_or_else(|_| Err((StatusClass::Internal, "explanation search panicked".into())));
        {
            let mut state = flight.state.lock().unwrap_or_else(|p| p.into_inner());
            *state = Some(outcome.clone());
        }
        flight.done.notify_all();
        ctx.flights.lock().unwrap_or_else(|p| p.into_inner()).remove(&key);
        outcome
    } else {
        ctx.metrics.record_coalesced();
        let mut state = flight.state.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(result) = state.as_ref() {
                break result.clone();
            }
            state = flight.done.wait(state).unwrap_or_else(|p| p.into_inner());
        }
    };

    match result {
        Ok(explanation) => {
            let body = ExplainResponse {
                v: WIRE_V,
                model: ctx.model_name.clone(),
                epsilon,
                seed: req.seed,
                coalesced: !leader,
                explanation: ExplanationDto::from(&explanation),
            };
            respond_json(stream, 200, &body, close);
            StatusClass::Ok
        }
        Err((status, error)) => {
            respond_error(stream, status, &error, close);
            status
        }
    }
}

/// Run one anchors search against the shared stack under a cooperative
/// deadline, through the batched search path. The worker's `BatchExec`
/// counters are cumulative, so the per-search delta is folded into the
/// metrics registry here.
fn run_search(
    ctx: &ServerCtx,
    block: &BasicBlock,
    epsilon: f64,
    seed: u64,
    deadline: Option<Duration>,
    exec: &BatchExec,
) -> FlightResult {
    let gate = DeadlineGate { inner: &ctx.stack, start: Instant::now(), budget: deadline };
    let config = ExplainConfig { epsilon, ..ctx.explain_base };
    let explainer = Explainer::new(gate, config);
    let (queries_before, chunks_before) = (exec.queries_batched(), exec.chunks());
    let result = explainer.explain_batched(block, seed, exec);
    ctx.metrics.record_batched(
        Endpoint::Explain,
        exec.queries_batched() - queries_before,
        exec.chunks() - chunks_before,
    );
    match result {
        Ok(explanation) => Ok(explanation),
        Err(ExplainError::Model(ModelError::Timeout { .. })) => {
            Err((StatusClass::Timeout, "explanation deadline exceeded".into()))
        }
        Err(ExplainError::Model(e)) => Err((StatusClass::Internal, format!("model failure: {e}"))),
        Err(e) => Err((StatusClass::BadRequest, e.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_kind_parses_the_documented_names() {
        assert_eq!(ModelKind::parse("crude"), Some(ModelKind::CrudeHaswell));
        assert_eq!(ModelKind::parse("crude-haswell"), Some(ModelKind::CrudeHaswell));
        assert_eq!(ModelKind::parse("crude-skylake"), Some(ModelKind::CrudeSkylake));
        assert_eq!(ModelKind::parse("uica"), Some(ModelKind::Uica));
        assert_eq!(ModelKind::parse("ithemal"), None);
    }

    #[test]
    fn deadline_gate_fails_queries_after_expiry() {
        let (base, _) = ModelKind::CrudeHaswell.build();
        let stack: Stack =
            CachedModel::bounded(ResilientModel::new(base, ResilientConfig::default()), 1024);
        let block = comet_isa::parse_block("add rcx, rax").unwrap();
        let healthy = DeadlineGate {
            inner: &stack,
            start: Instant::now(),
            budget: Some(Duration::from_secs(60)),
        };
        assert!(healthy.try_predict(&block).is_ok());
        let expired = DeadlineGate {
            inner: &stack,
            start: Instant::now() - Duration::from_secs(1),
            budget: Some(Duration::from_millis(1)),
        };
        assert!(matches!(expired.try_predict(&block), Err(ModelError::Timeout { .. })));
        let unbounded = DeadlineGate { inner: &stack, start: Instant::now(), budget: None };
        assert!(unbounded.try_predict(&block).is_ok());
    }

    #[test]
    fn effective_deadline_prefers_body_then_header_then_default() {
        let (base, _) = ModelKind::CrudeHaswell.build();
        let server = Server::start_with_model(
            base,
            "test".into(),
            ServeConfig { addr: "127.0.0.1:0".into(), deadline_ms: 100, ..Default::default() },
        )
        .unwrap();
        let ctx = server.ctx();
        assert_eq!(effective_deadline(ctx, Some(7), Some(9)), Some(Duration::from_millis(7)));
        assert_eq!(effective_deadline(ctx, None, Some(9)), Some(Duration::from_millis(9)));
        assert_eq!(effective_deadline(ctx, None, None), Some(Duration::from_millis(100)));
        assert_eq!(effective_deadline(ctx, Some(0), None), None, "explicit 0 disables");
        server.shutdown();
    }
}
