//! Adaptive admission control: a CoDel-style queue-delay controller
//! driving an AIMD concurrency limit.
//!
//! The static bounded queue sheds only when it is *full* — a
//! hand-tuned depth that says nothing about latency. This controller
//! sheds on what users actually feel: **queue sojourn time**. Workers
//! report how long each connection sat queued; while sojourn stays
//! under a target, the concurrency limit creeps up additively (one
//! slot per limit-worth of good dequeues). When sojourn stays *above*
//! the target for a full interval — CoDel's "standing queue" signal,
//! which ignores transient bursts — the limit is cut multiplicatively.
//! The accept loop sheds any connection that would push the number of
//! requests in the system (queued + in flight) past the limit, so
//! shedding tracks measured explain latency instead of queue depth.
//!
//! Everything is atomics; the accept loop and every worker touch this
//! on their hot paths. Time is passed in as microseconds rather than
//! read from a clock so the control law is deterministic in unit
//! tests.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Why a connection was shed at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The bounded queue itself was full (the hard backstop).
    QueueFull,
    /// Admitting would exceed the adaptive concurrency limit.
    AdmissionLimit,
}

impl ShedReason {
    /// All reasons, for metrics iteration.
    pub const ALL: [ShedReason; 2] = [ShedReason::QueueFull, ShedReason::AdmissionLimit];

    /// Stable metrics-label index.
    pub fn index(self) -> usize {
        match self {
            ShedReason::QueueFull => 0,
            ShedReason::AdmissionLimit => 1,
        }
    }

    /// The `reason` label value in `/metrics`.
    pub fn label(self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue-full",
            ShedReason::AdmissionLimit => "admission-limit",
        }
    }

    /// The error string sent to the shed client.
    pub fn message(self) -> &'static str {
        match self {
            ShedReason::QueueFull => "overloaded: request queue full",
            ShedReason::AdmissionLimit => "overloaded: concurrency limit reached",
        }
    }
}

/// Control-law parameters.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Acceptable queue sojourn time (CoDel target), µs.
    pub target_delay_us: u64,
    /// How long sojourn must stay above target before the limit is cut
    /// (CoDel interval), µs. Also the minimum spacing between cuts.
    pub interval_us: u64,
    /// Floor for the concurrency limit (never shed below this much
    /// admitted work).
    pub min_limit: u64,
    /// Ceiling for the concurrency limit.
    pub max_limit: u64,
    /// Limit at startup, before any congestion signal.
    pub initial_limit: u64,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            target_delay_us: 25_000,
            interval_us: 100_000,
            min_limit: 2,
            max_limit: 1024,
            initial_limit: 64,
        }
    }
}

/// The controller itself. One per server, shared by the accept loop
/// (admit/shed), every worker (sojourn reports, in-flight gauge), and
/// the metrics/readiness handlers (limit and overload observability).
#[derive(Debug)]
pub struct AdmissionController {
    config: AdmissionConfig,
    /// Current AIMD concurrency limit.
    limit: AtomicU64,
    /// Connections handed to a worker and not yet finished.
    inflight: AtomicU64,
    /// When sojourn first exceeded the target (µs timestamp); 0 while
    /// under target.
    above_since_us: AtomicU64,
    /// Timestamp of the last multiplicative decrease, µs.
    last_cut_us: AtomicU64,
    /// Under-target dequeues since the last additive increase.
    ok_streak: AtomicU64,
    /// Last observed sojourn, µs (gauge for `/metrics`).
    last_delay_us: AtomicU64,
}

impl AdmissionController {
    /// A controller with `config`'s law, starting at its initial limit.
    pub fn new(config: AdmissionConfig) -> AdmissionController {
        let initial = config.initial_limit.clamp(config.min_limit.max(1), config.max_limit.max(1));
        AdmissionController {
            config,
            limit: AtomicU64::new(initial),
            inflight: AtomicU64::new(0),
            above_since_us: AtomicU64::new(0),
            last_cut_us: AtomicU64::new(0),
            ok_streak: AtomicU64::new(0),
            last_delay_us: AtomicU64::new(0),
        }
    }

    /// Accept-loop check: may a connection enter, given `in_system`
    /// requests already queued or in flight?
    pub fn try_admit(&self, in_system: u64) -> Result<(), ShedReason> {
        if in_system >= self.limit.load(Relaxed) {
            Err(ShedReason::AdmissionLimit)
        } else {
            Ok(())
        }
    }

    /// Worker-side report: a connection just left the queue after
    /// sitting `delay_us`; `now_us` is a monotonic timestamp. Drives
    /// both halves of the law.
    pub fn on_dequeue(&self, delay_us: u64, now_us: u64) {
        // `now_us` 0 would be indistinguishable from "not above target";
        // nudge it (the µs of resolution is irrelevant to the law).
        let now_us = now_us.max(1);
        self.last_delay_us.store(delay_us, Relaxed);
        if delay_us < self.config.target_delay_us {
            self.above_since_us.store(0, Relaxed);
            let streak = self.ok_streak.fetch_add(1, Relaxed) + 1;
            if streak >= self.limit.load(Relaxed) {
                self.ok_streak.store(0, Relaxed);
                let limit = self.limit.load(Relaxed);
                if limit < self.config.max_limit {
                    self.limit.store(limit + 1, Relaxed);
                }
            }
            return;
        }
        self.ok_streak.store(0, Relaxed);
        // First over-target observation arms the interval timer…
        if self.above_since_us.compare_exchange(0, now_us, Relaxed, Relaxed).is_err() {
            // …and once sojourn has been continuously above target for
            // a full interval (and we have not cut within one), cut.
            let since = self.above_since_us.load(Relaxed);
            let last_cut = self.last_cut_us.load(Relaxed);
            if now_us.saturating_sub(since) >= self.config.interval_us
                && now_us.saturating_sub(last_cut) >= self.config.interval_us
            {
                self.last_cut_us.store(now_us, Relaxed);
                self.above_since_us.store(now_us, Relaxed);
                let limit = self.limit.load(Relaxed);
                let cut = (limit * 3 / 4).max(self.config.min_limit).max(1);
                self.limit.store(cut, Relaxed);
            }
        }
    }

    /// Whether sojourn is currently running above the target (the
    /// readiness probe's "queue delay under threshold" check, and the
    /// degradation ladder's load-pressure signal).
    pub fn overloaded(&self) -> bool {
        self.above_since_us.load(Relaxed) != 0
    }

    /// The current concurrency limit.
    pub fn limit(&self) -> u64 {
        self.limit.load(Relaxed)
    }

    /// Connections currently being handled by workers.
    pub fn inflight(&self) -> u64 {
        self.inflight.load(Relaxed)
    }

    /// The most recently observed queue sojourn, µs.
    pub fn last_delay_us(&self) -> u64 {
        self.last_delay_us.load(Relaxed)
    }

    /// A worker started handling a connection.
    pub fn begin(&self) {
        self.inflight.fetch_add(1, Relaxed);
    }

    /// A worker finished a connection (success or failure).
    pub fn end(&self) {
        // Saturating: a spurious extra `end` must not wrap the gauge.
        let _ = self.inflight.fetch_update(Relaxed, Relaxed, |v| Some(v.saturating_sub(1)));
    }

    /// The configured target sojourn, µs.
    pub fn target_delay_us(&self) -> u64 {
        self.config.target_delay_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> AdmissionConfig {
        AdmissionConfig {
            target_delay_us: 10_000,
            interval_us: 50_000,
            min_limit: 2,
            max_limit: 64,
            initial_limit: 8,
        }
    }

    #[test]
    fn admits_under_limit_and_sheds_at_it() {
        let c = AdmissionController::new(config());
        assert_eq!(c.limit(), 8);
        assert!(c.try_admit(7).is_ok());
        assert_eq!(c.try_admit(8), Err(ShedReason::AdmissionLimit));
        assert_eq!(c.try_admit(9), Err(ShedReason::AdmissionLimit));
    }

    #[test]
    fn sustained_delay_cuts_multiplicatively_once_per_interval() {
        let c = AdmissionController::new(config());
        // Over-target sojourns for longer than one interval: one cut.
        c.on_dequeue(20_000, 1_000);
        for t in (2_000..70_000).step_by(4_000) {
            c.on_dequeue(20_000, t);
        }
        assert_eq!(c.limit(), 6, "8 × 3/4");
        assert!(c.overloaded());
        // Staying above target keeps cutting, but only one cut per
        // interval, and never below the floor.
        for t in (70_000..2_000_000).step_by(4_000) {
            c.on_dequeue(20_000, t);
        }
        assert_eq!(c.limit(), config().min_limit);
    }

    #[test]
    fn transient_spike_does_not_cut() {
        let c = AdmissionController::new(config());
        // A burst shorter than the interval, then recovery.
        c.on_dequeue(20_000, 1_000);
        c.on_dequeue(20_000, 10_000);
        c.on_dequeue(1_000, 20_000);
        assert_eq!(c.limit(), 8, "no standing queue, no cut");
        assert!(!c.overloaded());
    }

    #[test]
    fn good_dequeues_raise_the_limit_additively() {
        let c = AdmissionController::new(config());
        // One limit-worth of under-target dequeues buys one slot.
        for i in 0..8 {
            c.on_dequeue(100, 1_000 + i);
        }
        assert_eq!(c.limit(), 9);
        // The ceiling holds.
        for i in 0..100_000u64 {
            c.on_dequeue(100, 10_000 + i);
        }
        assert_eq!(c.limit(), config().max_limit);
    }

    #[test]
    fn recovery_after_cut_grows_back() {
        let c = AdmissionController::new(config());
        for t in (1_000..120_000).step_by(2_000) {
            c.on_dequeue(30_000, t);
        }
        let cut = c.limit();
        assert!(cut < 8);
        for i in 0..200 {
            c.on_dequeue(500, 200_000 + i);
        }
        assert!(c.limit() > cut, "additive recovery after the congestion clears");
        assert!(!c.overloaded());
    }

    #[test]
    fn inflight_gauge_tracks_begin_end_and_saturates() {
        let c = AdmissionController::new(config());
        c.begin();
        c.begin();
        assert_eq!(c.inflight(), 2);
        c.end();
        c.end();
        c.end();
        assert_eq!(c.inflight(), 0, "extra end saturates instead of wrapping");
    }
}
