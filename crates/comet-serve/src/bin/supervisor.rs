//! `comet-supervisor` — keep N `comet-serve` processes alive.
//!
//! ```text
//! comet-supervisor [--children N] [--serve-bin PATH] [--seed N]
//!                  [--backoff-ms MS] [--backoff-max-ms MS]
//!                  [--max-restarts N] [--window-secs S] [--grace-ms MS]
//!                  [-- CHILD_ARGS...]
//! ```
//!
//! Everything after `--` is passed to each child verbatim, with
//! `{slot}` substituted by the child's index (useful for per-child
//! ports: `-- --supervised --addr 127.0.0.1:808{slot}`). Children are
//! restarted on crash with jittered exponential backoff; a restart
//! storm (more than `--max-restarts` exits within `--window-secs`)
//! opens the supervision breaker, kills everything, and exits 1.
//! SIGINT/SIGTERM drains: children get stdin EOF (which
//! `comet-serve --supervised` treats as a drain request), then
//! `--grace-ms` to exit before being killed.

use std::time::Duration;

use comet_core::cancel::{install_sigint, install_sigterm};
use comet_serve::{ChildSpec, Supervisor, SupervisorConfig};

fn usage() -> ! {
    eprintln!(
        "usage: comet-supervisor [--children N] [--serve-bin PATH] [--seed N]\n\
         \x20                       [--backoff-ms MS] [--backoff-max-ms MS]\n\
         \x20                       [--max-restarts N] [--window-secs S] [--grace-ms MS]\n\
         \x20                       [-- CHILD_ARGS...]"
    );
    std::process::exit(2);
}

fn parse_or_usage<T: std::str::FromStr>(s: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("error: cannot parse `{s}`");
        usage()
    })
}

/// Default child binary: the `comet-serve` sitting next to this
/// executable (the normal cargo layout).
fn sibling_serve_bin() -> String {
    std::env::current_exe()
        .ok()
        .and_then(|exe| exe.parent().map(|dir| dir.join("comet-serve")))
        .map(|p| p.to_string_lossy().into_owned())
        .unwrap_or_else(|| "comet-serve".into())
}

fn main() {
    let mut config = SupervisorConfig { children: 2, ..SupervisorConfig::default() };
    let mut program = sibling_serve_bin();
    let mut child_args: Vec<String> =
        vec!["--supervised".into(), "--addr".into(), "127.0.0.1:0".into()];
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |name: &str| -> String {
            argv.next().unwrap_or_else(|| {
                eprintln!("error: {name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--children" => config.children = parse_or_usage(&value("--children")),
            "--serve-bin" => program = value("--serve-bin"),
            "--seed" => config.seed = parse_or_usage(&value("--seed")),
            "--backoff-ms" => {
                config.backoff_base = Duration::from_millis(parse_or_usage(&value("--backoff-ms")))
            }
            "--backoff-max-ms" => {
                config.backoff_max =
                    Duration::from_millis(parse_or_usage(&value("--backoff-max-ms")))
            }
            "--max-restarts" => config.max_restarts = parse_or_usage(&value("--max-restarts")),
            "--window-secs" => {
                config.restart_window = Duration::from_secs(parse_or_usage(&value("--window-secs")))
            }
            "--grace-ms" => {
                config.grace = Duration::from_millis(parse_or_usage(&value("--grace-ms")))
            }
            "--" => {
                child_args = argv.by_ref().collect();
                break;
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown argument `{other}`");
                usage();
            }
        }
    }

    let spec = ChildSpec { program: program.clone(), args: child_args };
    let supervisor = match Supervisor::start(spec, config) {
        Ok(supervisor) => supervisor,
        Err(e) => {
            eprintln!("error: cannot start `{program}`: {e}");
            std::process::exit(1);
        }
    };
    install_sigint(supervisor.cancel_token().clone());
    install_sigterm(supervisor.cancel_token().clone());
    eprintln!(
        "[comet-supervisor] supervising {} × `{program}` (seed {}); \
         SIGINT/SIGTERM drains",
        config.children.max(1),
        config.seed
    );
    while !supervisor.cancel_token().is_cancelled() && !supervisor.done() {
        std::thread::sleep(Duration::from_millis(50));
    }
    let code = supervisor.shutdown();
    eprintln!("[comet-supervisor] exiting with code {code}");
    std::process::exit(code);
}
