//! `comet-router` — front door for a consistent-hash sharded fleet.
//!
//! ```text
//! comet-router --shard-addr HOST:PORT [--shard-addr HOST:PORT ...]
//!              [--addr HOST:PORT] [--event-threads N] [--workers N]
//!              [--queue-depth N] [--idle-timeout-ms MS]
//!              [--upstream-timeout-ms MS] [--down-cooldown-ms MS]
//!              [--supervised]
//! ```
//!
//! `--shard-addr` order matters: position `i` is shard `i` of an
//! `M = count(--shard-addr)` fleet, and must point at a comet-serve
//! started with `--shard i/M`. Runs until Ctrl-C/SIGTERM (graceful
//! drain); `--supervised` adds stdin EOF as a drain trigger.

use std::io::Read;

use comet_core::cancel::{install_sigint, install_sigterm};
use comet_serve::{Router, RouterConfig};

fn usage() -> ! {
    eprintln!(
        "usage: comet-router --shard-addr HOST:PORT [--shard-addr HOST:PORT ...]\n\
         \x20                   [--addr HOST:PORT] [--event-threads N] [--workers N]\n\
         \x20                   [--queue-depth N] [--idle-timeout-ms MS]\n\
         \x20                   [--upstream-timeout-ms MS] [--down-cooldown-ms MS]\n\
         \x20                   [--supervised]"
    );
    std::process::exit(2);
}

fn parse_or_usage<T: std::str::FromStr>(s: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("error: cannot parse `{s}`");
        usage()
    })
}

fn main() {
    let mut config = RouterConfig::default();
    let mut supervised = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |name: &str| -> String {
            argv.next().unwrap_or_else(|| {
                eprintln!("error: {name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--shard-addr" => config.shards.push(value("--shard-addr")),
            "--event-threads" => config.event_threads = parse_or_usage(&value("--event-threads")),
            "--workers" => config.workers = parse_or_usage(&value("--workers")),
            "--queue-depth" => config.queue_depth = parse_or_usage(&value("--queue-depth")),
            "--idle-timeout-ms" => {
                config.idle_timeout_ms = parse_or_usage(&value("--idle-timeout-ms"))
            }
            "--upstream-timeout-ms" => {
                config.upstream_timeout_ms = parse_or_usage(&value("--upstream-timeout-ms"))
            }
            "--down-cooldown-ms" => {
                config.down_cooldown_ms = parse_or_usage(&value("--down-cooldown-ms"))
            }
            "--supervised" => supervised = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown argument `{other}`");
                usage();
            }
        }
    }
    if config.shards.is_empty() {
        eprintln!("error: at least one --shard-addr is required");
        usage();
    }

    let shards = config.shards.len();
    let router = match Router::start(config) {
        Ok(router) => router,
        Err(e) => {
            eprintln!("error: cannot start router: {e}");
            std::process::exit(1);
        }
    };
    install_sigint(router.cancel_token().clone());
    install_sigterm(router.cancel_token().clone());
    if supervised {
        let token = router.cancel_token().clone();
        std::thread::Builder::new()
            .name("comet-router-stdin-watch".into())
            .spawn(move || {
                let mut sink = Vec::new();
                let _ = std::io::stdin().lock().read_to_end(&mut sink);
                eprintln!("[comet-router] stdin closed: draining");
                token.cancel();
            })
            .expect("spawn stdin watcher");
    }
    eprintln!(
        "[comet-router] listening on {} ({} shards); Ctrl-C drains, twice aborts",
        router.addr(),
        shards
    );
    router.join();
    eprintln!("[comet-router] drained, bye");
}
