//! Minimal Linux `epoll` + pipe FFI — the syscalls the readiness
//! event loop needs and nothing more.
//!
//! `std` exposes nonblocking sockets but no readiness API, and the
//! workspace policy is std-only (no mio, no libc crate). The process
//! already links the platform libc through `std`, so declaring the
//! five functions we need (`epoll_create1`, `epoll_ctl`, `epoll_wait`,
//! `pipe2`, `close`) is enough. Everything is wrapped in owned types
//! whose `Drop` closes the descriptor, and every raw return value is
//! converted to `io::Result` at the boundary — no unsafety leaks out
//! of this module.

#![allow(clippy::upper_case_acronyms)]

use std::io;
use std::os::fd::RawFd;

/// Readable readiness (level-triggered).
pub const EPOLLIN: u32 = 0x001;
/// Writable readiness.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported; registration not required).
pub const EPOLLERR: u32 = 0x008;
/// Peer hung up.
pub const EPOLLHUP: u32 = 0x010;
/// Peer half-closed its write side.
pub const EPOLLRDHUP: u32 = 0x2000;
/// Wake only one of the epoll instances sharing this fd on readiness
/// (avoids accept thundering herd across reactor threads).
pub const EPOLLEXCLUSIVE: u32 = 1 << 28;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

const EPOLL_CLOEXEC: i32 = 0o2000000;
const O_CLOEXEC: i32 = 0o2000000;
const O_NONBLOCK: i32 = 0o4000;

/// One readiness event, exactly as the kernel fills it in. x86-64
/// Linux declares the struct packed; the `data` field carries the
/// token we registered the fd with.
#[repr(C, packed)]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Bitmask of `EPOLL*` readiness flags.
    pub events: u32,
    /// The caller's token (slot index + generation, packed).
    pub data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn pipe2(fds: *mut i32, flags: i32) -> i32;
    fn close(fd: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An owned epoll instance. Closed on drop.
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// `epoll_create1(EPOLL_CLOEXEC)`.
    pub fn new() -> io::Result<Epoll> {
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Epoll { fd })
    }

    /// Register `fd` for `events`, tagged with `token`.
    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, data: token };
        cvt(unsafe { epoll_ctl(self.fd, EPOLL_CTL_ADD, fd, &mut ev) }).map(drop)
    }

    /// Change the interest set of a registered `fd`.
    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, data: token };
        cvt(unsafe { epoll_ctl(self.fd, EPOLL_CTL_MOD, fd, &mut ev) }).map(drop)
    }

    /// Deregister `fd` (safe to call on an already-closed fd — the
    /// error is returned, not panicked on).
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        let mut ev = EpollEvent { events: 0, data: 0 };
        cvt(unsafe { epoll_ctl(self.fd, EPOLL_CTL_DEL, fd, &mut ev) }).map(drop)
    }

    /// Wait for readiness, at most `timeout_ms` (negative blocks
    /// forever). Returns the filled prefix of `events`. EINTR is
    /// reported as an empty wake, not an error — the caller's loop
    /// re-checks its cancel flag either way.
    pub fn wait<'a>(
        &self,
        events: &'a mut [EpollEvent],
        timeout_ms: i32,
    ) -> io::Result<&'a [EpollEvent]> {
        let n =
            unsafe { epoll_wait(self.fd, events.as_mut_ptr(), events.len() as i32, timeout_ms) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(&events[..0]);
            }
            return Err(err);
        }
        Ok(&events[..n as usize])
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

/// The read half of a nonblocking wakeup pipe, registered in a
/// reactor's epoll set.
pub struct WakeReader {
    fd: RawFd,
}

/// The write half: workers (and shutdown) poke it to wake the reactor.
/// Clonable — every worker holds one.
#[derive(Clone)]
pub struct WakeWriter {
    fd: std::sync::Arc<WriterFd>,
}

struct WriterFd(RawFd);

impl Drop for WriterFd {
    fn drop(&mut self) {
        unsafe { close(self.0) };
    }
}

/// `pipe2(O_NONBLOCK | O_CLOEXEC)` — the reactor wakeup channel.
pub fn wake_pipe() -> io::Result<(WakeReader, WakeWriter)> {
    let mut fds = [0i32; 2];
    cvt(unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) })?;
    Ok((WakeReader { fd: fds[0] }, WakeWriter { fd: std::sync::Arc::new(WriterFd(fds[1])) }))
}

impl WakeReader {
    /// The raw fd, for epoll registration.
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Drain every pending wakeup byte (nonblocking).
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            let n = unsafe { read(self.fd, buf.as_mut_ptr(), buf.len()) };
            if n <= 0 {
                return;
            }
        }
    }
}

impl Drop for WakeReader {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

impl WakeWriter {
    /// Poke the reactor. A full pipe means a wakeup is already
    /// pending, which is all we need — the error is ignored.
    pub fn wake(&self) {
        let byte = 1u8;
        unsafe { write(self.fd.0, &byte, 1) };
    }
}

/// `struct rlimit` (64-bit Linux: two `u64`s).
#[repr(C)]
struct RLimit {
    rlim_cur: u64,
    rlim_max: u64,
}

const RLIMIT_NOFILE: i32 = 7;

extern "C" {
    fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
    fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
}

/// Best-effort raise of the soft open-files limit to at least `want`
/// (clamped to the hard limit; CI runners often default the soft
/// limit to 1024, far below a c10k load test). Returns the soft limit
/// in effect afterwards.
pub fn raise_nofile_limit(want: u64) -> u64 {
    unsafe {
        let mut lim = RLimit { rlim_cur: 0, rlim_max: 0 };
        if getrlimit(RLIMIT_NOFILE, &mut lim) != 0 {
            return 1024;
        }
        if lim.rlim_cur >= want {
            return lim.rlim_cur;
        }
        let raised = RLimit { rlim_cur: want.min(lim.rlim_max), rlim_max: lim.rlim_max };
        if setrlimit(RLIMIT_NOFILE, &raised) == 0 {
            raised.rlim_cur
        } else {
            lim.rlim_cur
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn epoll_reports_readable_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let epoll = Epoll::new().unwrap();
        epoll.add(server.as_raw_fd(), EPOLLIN, 7).unwrap();

        // Nothing to read yet: a zero-timeout wait returns empty.
        let mut events = [EpollEvent { events: 0, data: 0 }; 8];
        assert!(epoll.wait(&mut events, 0).unwrap().is_empty());

        client.write_all(b"hi").unwrap();
        let mut events = [EpollEvent { events: 0, data: 0 }; 8];
        let ready = epoll.wait(&mut events, 1000).unwrap();
        assert_eq!(ready.len(), 1);
        assert_eq!({ ready[0].data }, 7);
        assert_ne!({ ready[0].events } & EPOLLIN, 0);

        epoll.delete(server.as_raw_fd()).unwrap();
    }

    #[test]
    fn nofile_limit_is_queryable_and_monotonic() {
        // Asking for a trivially small floor must report the (already
        // higher) current limit; the call never lowers it.
        let before = raise_nofile_limit(64);
        assert!(before >= 64);
        assert!(raise_nofile_limit(64) >= before);
    }

    #[test]
    fn wake_pipe_wakes_and_drains() {
        let (reader, writer) = wake_pipe().unwrap();
        let epoll = Epoll::new().unwrap();
        epoll.add(reader.fd(), EPOLLIN, 42).unwrap();

        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        assert!(epoll.wait(&mut events, 0).unwrap().is_empty());

        let from_thread = writer.clone();
        std::thread::spawn(move || from_thread.wake()).join().unwrap();
        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        let ready = epoll.wait(&mut events, 1000).unwrap();
        assert_eq!(ready.len(), 1);
        assert_eq!({ ready[0].data }, 42);

        reader.drain();
        // Drained: level-triggered readiness is gone.
        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        assert!(epoll.wait(&mut events, 0).unwrap().is_empty());
    }
}
