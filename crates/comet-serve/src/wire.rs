//! Wire format: versioned, strictly validated JSON DTOs.
//!
//! Every request and response carries a `{"v":1,...}` envelope so the
//! format can evolve without silent misparses: a client speaking a
//! different major version gets a clean 400, not a field filled with
//! a default. Request structs are `#[serde(deny_unknown_fields)]` —
//! a typo like `"epsilonn"` is an error, not an ignored key silently
//! running the search with the default ε.

use comet_core::{Explanation, FeatureSet};
use serde::{Deserialize, Serialize};

/// The wire major version this build speaks.
pub const WIRE_V: u32 = 1;

/// `POST /v1/predict` request body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct PredictRequest {
    /// Wire version; must equal [`WIRE_V`].
    pub v: u32,
    /// Basic-block text (one instruction per line, Intel syntax).
    pub block: String,
    /// Per-request deadline override, milliseconds (body field wins
    /// over the `x-comet-deadline-ms` header).
    #[serde(default)]
    pub deadline_ms: Option<u64>,
}

/// `POST /v1/explain` request body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct ExplainRequest {
    /// Wire version; must equal [`WIRE_V`].
    pub v: u32,
    /// Basic-block text (one instruction per line, Intel syntax).
    pub block: String,
    /// ε-ball radius override (cycles); the server default applies
    /// when absent. Part of the single-flight coalescing key.
    #[serde(default)]
    pub epsilon: Option<f64>,
    /// Search RNG seed; identical (block, ε, seed) triples coalesce
    /// onto one in-flight search. Defaults to 0.
    #[serde(default)]
    pub seed: u64,
    /// Per-request deadline override, milliseconds.
    #[serde(default)]
    pub deadline_ms: Option<u64>,
}

/// `POST /v1/predict` response body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictResponse {
    /// Wire version.
    pub v: u32,
    /// Serving model name.
    pub model: String,
    /// Registry version of the model that produced this prediction.
    /// Every response reports the version its numbers actually came
    /// from, even while a hot-swap is in flight.
    #[serde(default)]
    pub model_version: u64,
    /// Predicted cost (cycles).
    pub prediction: f64,
}

/// The explanation payload inside an [`ExplainResponse`] — an explicit
/// wire-owned mirror of [`Explanation`] (minus process-local
/// diagnostics like wall-clock duration) so the service's JSON shape
/// is pinned here, not implied by a core struct's derive.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExplanationDto {
    /// The explanation feature set F̂*.
    pub features: FeatureSet,
    /// The same set rendered in the paper's notation, for humans.
    pub display: String,
    /// Estimated precision.
    pub precision: f64,
    /// Estimated coverage.
    pub coverage: f64,
    /// The model's prediction for the explained block.
    pub prediction: f64,
    /// Whether the precision threshold was reached.
    pub anchored: bool,
    /// Model queries spent by the search.
    pub queries: u64,
    /// Queries that returned an error.
    #[serde(default)]
    pub faults: u64,
    /// Whether the search ran under degraded conditions.
    #[serde(default)]
    pub degraded: bool,
    /// Which rung of the degradation ladder produced this explanation
    /// (`"store"`, `"full"`, `"reduced-budget"`, `"cached"`, or
    /// `"baseline"`).
    #[serde(default)]
    pub tier: String,
    /// Where the explanation came from: `"store"` (precomputed on-disk
    /// store) or `"live"` (an anchors search this process ran).
    #[serde(default)]
    pub source: String,
}

impl From<&Explanation> for ExplanationDto {
    fn from(e: &Explanation) -> ExplanationDto {
        ExplanationDto {
            features: e.features.clone(),
            display: e.display_features(),
            precision: e.precision,
            coverage: e.coverage,
            prediction: e.prediction,
            anchored: e.anchored,
            queries: e.queries,
            faults: e.faults,
            degraded: e.degraded,
            tier: "full".into(),
            source: "live".into(),
        }
    }
}

/// `POST /v1/explain` response body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExplainResponse {
    /// Wire version.
    pub v: u32,
    /// Serving model name.
    pub model: String,
    /// Registry version of the model the search queried. A coalesced
    /// follower reports the leader's version — the one whose
    /// predictions are inside the explanation.
    #[serde(default)]
    pub model_version: u64,
    /// ε actually used for the search.
    pub epsilon: f64,
    /// Seed actually used for the search.
    pub seed: u64,
    /// True when this response piggybacked on an identical in-flight
    /// search instead of running its own.
    pub coalesced: bool,
    /// The explanation itself.
    pub explanation: ExplanationDto,
}

/// `POST /admin/model` request body: stage a model candidate (or roll
/// back). The candidate is built server-side from `kind`, staged into
/// the on-disk registry, shadow-validated against the active model,
/// and — if it passes the gates (or `force` is set) — hot-swapped into
/// the serving path on probation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct AdminModelRequest {
    /// Wire version; must equal [`WIRE_V`].
    pub v: u32,
    /// Model kind to build (`"crude-haswell"`, `"crude-skylake"`,
    /// `"uica"`). Required unless `rollback` is set.
    #[serde(default)]
    pub kind: Option<String>,
    /// Free-form operator note recorded in the snapshot.
    #[serde(default)]
    pub note: Option<String>,
    /// Skip the shadow-validation gates (the candidate is still
    /// staged, validated, and put on probation — `force` only ignores
    /// a failing report).
    #[serde(default)]
    pub force: bool,
    /// Stage and validate but do not swap, whatever the verdict.
    #[serde(default)]
    pub dry_run: bool,
    /// Roll back to the last-known-good model instead of staging a
    /// candidate. Mutually exclusive with `kind`.
    #[serde(default)]
    pub rollback: bool,
    /// Fault injection: scale the candidate's predictions by this
    /// factor. A scaled candidate fails the shadow MAPE gate — the
    /// supported way to exercise the 409 path and, with `force`, the
    /// probation rollback path.
    #[serde(default)]
    pub chaos_scale: Option<f64>,
    /// Fault injection: make every candidate prediction error. Fails
    /// shadow validation outright; combine with `force` to promote
    /// anyway and exercise the probation failure-rate trip and
    /// automatic rollback.
    #[serde(default)]
    pub chaos_fail: bool,
}

impl HasVersion for AdminModelRequest {
    fn version(&self) -> u32 {
        self.v
    }
}

/// Shadow-validation report for one candidate, returned from
/// `POST /admin/model` and kept in the lifecycle log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShadowReport {
    /// Probe blocks evaluated.
    pub probes: u64,
    /// Candidate predictions that were not finite.
    pub non_finite: u64,
    /// Mean absolute percentage error of the candidate vs the active
    /// model over the probe set.
    pub mape: f64,
    /// Mean per-probe candidate latency, microseconds.
    pub mean_latency_us: f64,
    /// Whether every gate passed.
    pub passed: bool,
    /// Human-readable gate verdicts (empty when `passed`).
    pub failures: Vec<String>,
}

/// `POST /admin/model` / `GET /admin/model` response body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdminModelResponse {
    /// Wire version.
    pub v: u32,
    /// Registry version of the model currently serving traffic.
    pub active_version: u64,
    /// Name of the model currently serving traffic.
    pub active_model: String,
    /// Rebuild recipe of the active model (`"crude-skylake"`, …).
    pub active_kind: String,
    /// Last-known-good version (the rollback target).
    pub last_good_version: u64,
    /// Registry version this request staged (0 if none).
    #[serde(default)]
    pub staged_version: u64,
    /// What the request did: `"promoted"`, `"rejected"`,
    /// `"dry-run"`, `"rolled-back"`, or `"status"`.
    pub action: String,
    /// Shadow-validation report for the staged candidate, when one ran.
    #[serde(default)]
    pub shadow: Option<ShadowReport>,
    /// Versions on disk in the registry, ascending.
    pub registry_versions: Vec<u64>,
    /// Snapshots quarantined at boot (damage found while scanning).
    #[serde(default)]
    pub quarantined: Vec<String>,
    /// Hot-swaps so far (including rollback swaps).
    pub swaps: u64,
    /// Rollbacks so far.
    pub rollbacks: u64,
    /// Requests remaining in the active model's probation window
    /// (0 once settled).
    pub probation_remaining: u64,
    /// Why the last rollback happened, if any.
    #[serde(default)]
    pub last_rollback: Option<String>,
}

/// Error body for every non-200 response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorResponse {
    /// Wire version.
    pub v: u32,
    /// Human-readable failure description.
    pub error: String,
}

impl ErrorResponse {
    /// Build a v1 error body.
    pub fn new(error: impl Into<String>) -> ErrorResponse {
        ErrorResponse { v: WIRE_V, error: error.into() }
    }
}

/// Decode a request body, enforcing UTF-8, JSON shape, unknown-field
/// rejection (via the derive), and the version envelope.
pub fn decode_request<T: serde::Deserialize + HasVersion>(body: &[u8]) -> Result<T, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let value: T = serde_json::from_str(text).map_err(|e| format!("invalid request: {e}"))?;
    if value.version() != WIRE_V {
        return Err(format!(
            "unsupported wire version {} (this server speaks v{WIRE_V})",
            value.version()
        ));
    }
    Ok(value)
}

/// Access to the envelope version field, for [`decode_request`].
pub trait HasVersion {
    /// The request's `v` field.
    fn version(&self) -> u32;
}

impl HasVersion for PredictRequest {
    fn version(&self) -> u32 {
        self.v
    }
}

impl HasVersion for ExplainRequest {
    fn version(&self) -> u32 {
        self.v
    }
}

/// The single-flight coalescing key: FNV-1a over the canonical block
/// text, then the ε bit pattern and the seed folded through the same
/// hash. Identical (block, ε, seed) triples — and only those — share
/// a key (modulo 64-bit collisions, negligible at service scale).
pub fn explain_key(canonical_block: &str, epsilon: f64, seed: u64) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash = (hash ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    };
    eat(canonical_block.as_bytes());
    eat(&epsilon.to_bits().to_le_bytes());
    eat(&seed.to_le_bytes());
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predict_request_round_trips() {
        let req = PredictRequest { v: 1, block: "add rcx, rax\nnop".into(), deadline_ms: Some(50) };
        let json = serde_json::to_string(&req).unwrap();
        let back: PredictRequest = decode_request(json.as_bytes()).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn explain_request_round_trips_with_defaults() {
        let req: ExplainRequest = decode_request(br#"{"v":1,"block":"div rcx"}"#).unwrap();
        assert_eq!(req.block, "div rcx");
        assert_eq!(req.seed, 0);
        assert_eq!(req.epsilon, None);
        assert_eq!(req.deadline_ms, None);
        let json = serde_json::to_string(&req).unwrap();
        let back: ExplainRequest = decode_request(json.as_bytes()).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn unknown_fields_are_rejected_not_ignored() {
        let err = decode_request::<ExplainRequest>(br#"{"v":1,"block":"nop","epsilonn":0.5}"#)
            .unwrap_err();
        assert!(err.contains("epsilonn"), "{err}");
        let err =
            decode_request::<PredictRequest>(br#"{"v":1,"block":"nop","extra":true}"#).unwrap_err();
        assert!(err.contains("extra"), "{err}");
    }

    #[test]
    fn wrong_version_is_a_clean_error() {
        let err = decode_request::<PredictRequest>(br#"{"v":2,"block":"nop"}"#).unwrap_err();
        assert!(err.contains("wire version 2"), "{err}");
    }

    #[test]
    fn missing_required_fields_fail() {
        assert!(decode_request::<PredictRequest>(br#"{"v":1}"#).is_err());
        assert!(decode_request::<ExplainRequest>(br#"{"block":"nop"}"#).is_err());
        assert!(decode_request::<PredictRequest>(b"\xff\xfe").is_err());
        assert!(decode_request::<PredictRequest>(b"not json").is_err());
    }

    #[test]
    fn explain_response_round_trips() {
        let dto = ExplanationDto {
            features: FeatureSet::new(),
            display: "{}".into(),
            precision: 0.9,
            coverage: 0.4,
            prediction: 2.25,
            anchored: true,
            queries: 123,
            faults: 0,
            degraded: false,
            tier: "full".into(),
            source: "live".into(),
        };
        let resp = ExplainResponse {
            v: WIRE_V,
            model: "crude".into(),
            model_version: 3,
            epsilon: 0.25,
            seed: 7,
            coalesced: false,
            explanation: dto,
        };
        let json = serde_json::to_string(&resp).unwrap();
        let back: ExplainResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn admin_request_round_trips_and_rejects_unknown_fields() {
        let req: AdminModelRequest =
            decode_request(br#"{"v":1,"kind":"crude-skylake","note":"canary"}"#).unwrap();
        assert_eq!(req.kind.as_deref(), Some("crude-skylake"));
        assert!(!req.force && !req.dry_run && !req.rollback && !req.chaos_fail);
        assert_eq!(req.chaos_scale, None);
        let json = serde_json::to_string(&req).unwrap();
        let back: AdminModelRequest = decode_request(json.as_bytes()).unwrap();
        assert_eq!(back, req);

        let err = decode_request::<AdminModelRequest>(br#"{"v":1,"kindd":"uica"}"#).unwrap_err();
        assert!(err.contains("kindd"), "{err}");
    }

    #[test]
    fn error_response_round_trips() {
        let json = serde_json::to_string(&ErrorResponse::new("overloaded")).unwrap();
        let back: ErrorResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(back.error, "overloaded");
        assert_eq!(back.v, WIRE_V);
    }

    #[test]
    fn coalescing_key_separates_block_epsilon_and_seed() {
        let base = explain_key("add rcx, rax", 0.25, 0);
        assert_eq!(base, explain_key("add rcx, rax", 0.25, 0));
        assert_ne!(base, explain_key("add rcx, rbx", 0.25, 0));
        assert_ne!(base, explain_key("add rcx, rax", 0.5, 0));
        assert_ne!(base, explain_key("add rcx, rax", 0.25, 1));
    }
}
