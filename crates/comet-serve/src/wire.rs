//! Wire format: versioned, strictly validated JSON DTOs.
//!
//! Every request and response carries a `{"v":1,...}` envelope so the
//! format can evolve without silent misparses: a client speaking a
//! different major version gets a clean 400, not a field filled with
//! a default. Request structs are `#[serde(deny_unknown_fields)]` —
//! a typo like `"epsilonn"` is an error, not an ignored key silently
//! running the search with the default ε.

use comet_core::{Explanation, FeatureSet};
use serde::{Deserialize, Serialize};

/// The wire major version this build speaks.
pub const WIRE_V: u32 = 1;

/// `POST /v1/predict` request body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct PredictRequest {
    /// Wire version; must equal [`WIRE_V`].
    pub v: u32,
    /// Basic-block text (one instruction per line, Intel syntax).
    pub block: String,
    /// Per-request deadline override, milliseconds (body field wins
    /// over the `x-comet-deadline-ms` header).
    #[serde(default)]
    pub deadline_ms: Option<u64>,
}

/// `POST /v1/explain` request body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct ExplainRequest {
    /// Wire version; must equal [`WIRE_V`].
    pub v: u32,
    /// Basic-block text (one instruction per line, Intel syntax).
    pub block: String,
    /// ε-ball radius override (cycles); the server default applies
    /// when absent. Part of the single-flight coalescing key.
    #[serde(default)]
    pub epsilon: Option<f64>,
    /// Search RNG seed; identical (block, ε, seed) triples coalesce
    /// onto one in-flight search. Defaults to 0.
    #[serde(default)]
    pub seed: u64,
    /// Per-request deadline override, milliseconds.
    #[serde(default)]
    pub deadline_ms: Option<u64>,
}

/// `POST /v1/predict` response body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictResponse {
    /// Wire version.
    pub v: u32,
    /// Serving model name.
    pub model: String,
    /// Predicted cost (cycles).
    pub prediction: f64,
}

/// The explanation payload inside an [`ExplainResponse`] — an explicit
/// wire-owned mirror of [`Explanation`] (minus process-local
/// diagnostics like wall-clock duration) so the service's JSON shape
/// is pinned here, not implied by a core struct's derive.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExplanationDto {
    /// The explanation feature set F̂*.
    pub features: FeatureSet,
    /// The same set rendered in the paper's notation, for humans.
    pub display: String,
    /// Estimated precision.
    pub precision: f64,
    /// Estimated coverage.
    pub coverage: f64,
    /// The model's prediction for the explained block.
    pub prediction: f64,
    /// Whether the precision threshold was reached.
    pub anchored: bool,
    /// Model queries spent by the search.
    pub queries: u64,
    /// Queries that returned an error.
    #[serde(default)]
    pub faults: u64,
    /// Whether the search ran under degraded conditions.
    #[serde(default)]
    pub degraded: bool,
    /// Which rung of the degradation ladder produced this explanation
    /// (`"full"`, `"reduced-budget"`, `"cached"`, or `"baseline"`).
    #[serde(default)]
    pub tier: String,
}

impl From<&Explanation> for ExplanationDto {
    fn from(e: &Explanation) -> ExplanationDto {
        ExplanationDto {
            features: e.features.clone(),
            display: e.display_features(),
            precision: e.precision,
            coverage: e.coverage,
            prediction: e.prediction,
            anchored: e.anchored,
            queries: e.queries,
            faults: e.faults,
            degraded: e.degraded,
            tier: "full".into(),
        }
    }
}

/// `POST /v1/explain` response body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExplainResponse {
    /// Wire version.
    pub v: u32,
    /// Serving model name.
    pub model: String,
    /// ε actually used for the search.
    pub epsilon: f64,
    /// Seed actually used for the search.
    pub seed: u64,
    /// True when this response piggybacked on an identical in-flight
    /// search instead of running its own.
    pub coalesced: bool,
    /// The explanation itself.
    pub explanation: ExplanationDto,
}

/// Error body for every non-200 response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorResponse {
    /// Wire version.
    pub v: u32,
    /// Human-readable failure description.
    pub error: String,
}

impl ErrorResponse {
    /// Build a v1 error body.
    pub fn new(error: impl Into<String>) -> ErrorResponse {
        ErrorResponse { v: WIRE_V, error: error.into() }
    }
}

/// Decode a request body, enforcing UTF-8, JSON shape, unknown-field
/// rejection (via the derive), and the version envelope.
pub fn decode_request<T: serde::Deserialize + HasVersion>(body: &[u8]) -> Result<T, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let value: T = serde_json::from_str(text).map_err(|e| format!("invalid request: {e}"))?;
    if value.version() != WIRE_V {
        return Err(format!(
            "unsupported wire version {} (this server speaks v{WIRE_V})",
            value.version()
        ));
    }
    Ok(value)
}

/// Access to the envelope version field, for [`decode_request`].
pub trait HasVersion {
    /// The request's `v` field.
    fn version(&self) -> u32;
}

impl HasVersion for PredictRequest {
    fn version(&self) -> u32 {
        self.v
    }
}

impl HasVersion for ExplainRequest {
    fn version(&self) -> u32 {
        self.v
    }
}

/// The single-flight coalescing key: FNV-1a over the canonical block
/// text, then the ε bit pattern and the seed folded through the same
/// hash. Identical (block, ε, seed) triples — and only those — share
/// a key (modulo 64-bit collisions, negligible at service scale).
pub fn explain_key(canonical_block: &str, epsilon: f64, seed: u64) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash = (hash ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    };
    eat(canonical_block.as_bytes());
    eat(&epsilon.to_bits().to_le_bytes());
    eat(&seed.to_le_bytes());
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predict_request_round_trips() {
        let req = PredictRequest { v: 1, block: "add rcx, rax\nnop".into(), deadline_ms: Some(50) };
        let json = serde_json::to_string(&req).unwrap();
        let back: PredictRequest = decode_request(json.as_bytes()).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn explain_request_round_trips_with_defaults() {
        let req: ExplainRequest = decode_request(br#"{"v":1,"block":"div rcx"}"#).unwrap();
        assert_eq!(req.block, "div rcx");
        assert_eq!(req.seed, 0);
        assert_eq!(req.epsilon, None);
        assert_eq!(req.deadline_ms, None);
        let json = serde_json::to_string(&req).unwrap();
        let back: ExplainRequest = decode_request(json.as_bytes()).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn unknown_fields_are_rejected_not_ignored() {
        let err = decode_request::<ExplainRequest>(br#"{"v":1,"block":"nop","epsilonn":0.5}"#)
            .unwrap_err();
        assert!(err.contains("epsilonn"), "{err}");
        let err =
            decode_request::<PredictRequest>(br#"{"v":1,"block":"nop","extra":true}"#).unwrap_err();
        assert!(err.contains("extra"), "{err}");
    }

    #[test]
    fn wrong_version_is_a_clean_error() {
        let err = decode_request::<PredictRequest>(br#"{"v":2,"block":"nop"}"#).unwrap_err();
        assert!(err.contains("wire version 2"), "{err}");
    }

    #[test]
    fn missing_required_fields_fail() {
        assert!(decode_request::<PredictRequest>(br#"{"v":1}"#).is_err());
        assert!(decode_request::<ExplainRequest>(br#"{"block":"nop"}"#).is_err());
        assert!(decode_request::<PredictRequest>(b"\xff\xfe").is_err());
        assert!(decode_request::<PredictRequest>(b"not json").is_err());
    }

    #[test]
    fn explain_response_round_trips() {
        let dto = ExplanationDto {
            features: FeatureSet::new(),
            display: "{}".into(),
            precision: 0.9,
            coverage: 0.4,
            prediction: 2.25,
            anchored: true,
            queries: 123,
            faults: 0,
            degraded: false,
            tier: "full".into(),
        };
        let resp = ExplainResponse {
            v: WIRE_V,
            model: "crude".into(),
            epsilon: 0.25,
            seed: 7,
            coalesced: false,
            explanation: dto,
        };
        let json = serde_json::to_string(&resp).unwrap();
        let back: ExplainResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn error_response_round_trips() {
        let json = serde_json::to_string(&ErrorResponse::new("overloaded")).unwrap();
        let back: ErrorResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(back.error, "overloaded");
        assert_eq!(back.v, WIRE_V);
    }

    #[test]
    fn coalescing_key_separates_block_epsilon_and_seed() {
        let base = explain_key("add rcx, rax", 0.25, 0);
        assert_eq!(base, explain_key("add rcx, rax", 0.25, 0));
        assert_ne!(base, explain_key("add rcx, rbx", 0.25, 0));
        assert_ne!(base, explain_key("add rcx, rax", 0.5, 0));
        assert_ne!(base, explain_key("add rcx, rax", 0.25, 1));
    }
}
