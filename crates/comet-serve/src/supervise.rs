//! Crash-restart supervision for serve processes.
//!
//! `comet-serve` contains panics per-connection, but a process can
//! still die: OOM kill, a bug in a dependency, an operator's stray
//! `kill -9`. The [`Supervisor`] keeps `children` copies of a command
//! alive, restarting crashed ones with **jittered exponential
//! backoff** (so N children that crash together do not restart — and
//! re-crash — in lockstep) and giving up via a **restart-rate circuit
//! breaker** when crashes come faster than a configured rate, which
//! means the problem is persistent and restarts are just churn.
//!
//! Shutdown is a graceful drain relay: each child is spawned with a
//! piped stdin it never reads until EOF. Closing that pipe is the
//! drain signal — `comet-serve --supervised` watches stdin and
//! treats EOF exactly like SIGTERM (cancel token → drain → exit).
//! Children that outlive the grace period are killed. This uses only
//! `std::process`, no signal-sending syscalls, so it works the same
//! under the chaos harness and in CI.
//!
//! Everything nondeterministic is parameterized: the backoff jitter
//! comes from a seeded SplitMix64 stream, and [`backoff_delay`] is a
//! pure function of (attempt, jitter draw), so supervision schedules
//! are reproducible in tests and chaos runs.

use std::collections::VecDeque;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use comet_core::cancel::CancelToken;

/// What to run in each supervised slot.
#[derive(Debug, Clone)]
pub struct ChildSpec {
    /// Program path (e.g. the `comet-serve` binary).
    pub program: String,
    /// Arguments; every `{slot}` substring is replaced with the
    /// child's slot index, so children can e.g. bind distinct ports or
    /// name distinct log files.
    pub args: Vec<String>,
}

impl ChildSpec {
    /// The argv for `slot`, with `{slot}` substituted.
    pub fn args_for(&self, slot: usize) -> Vec<String> {
        self.args.iter().map(|a| a.replace("{slot}", &slot.to_string())).collect()
    }
}

/// Supervision policy.
#[derive(Debug, Clone, Copy)]
pub struct SupervisorConfig {
    /// How many copies of the child to keep alive.
    pub children: usize,
    /// First restart delay (before jitter).
    pub backoff_base: Duration,
    /// Restart-delay ceiling (before jitter).
    pub backoff_max: Duration,
    /// Seed for the jitter stream (reproducible schedules).
    pub seed: u64,
    /// Restart-rate circuit breaker: more than this many child exits
    /// inside `restart_window` opens the breaker — every child is
    /// killed and the supervisor reports failure instead of churning.
    pub max_restarts: usize,
    /// The sliding window for `max_restarts`.
    pub restart_window: Duration,
    /// How long a drained child gets to exit before being killed.
    pub grace: Duration,
    /// Uptime after which a child's backoff attempt counter resets (it
    /// ran long enough to call the previous crash transient).
    pub stable_after: Duration,
    /// Monitor poll interval.
    pub poll: Duration,
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig {
            children: 1,
            backoff_base: Duration::from_millis(100),
            backoff_max: Duration::from_secs(5),
            seed: 0,
            max_restarts: 8,
            restart_window: Duration::from_secs(30),
            grace: Duration::from_secs(5),
            stable_after: Duration::from_secs(2),
            poll: Duration::from_millis(20),
        }
    }
}

/// The restart delay for the `attempt`-th consecutive crash (1-based):
/// exponential `base × 2^(attempt−1)` capped at `max`, scaled by a
/// jitter factor in `[0.5, 1.5)` derived from `jitter_unit ∈ [0, 1)`.
/// Pure, so schedules are testable; the supervisor feeds it draws from
/// its seeded stream.
pub fn backoff_delay(base: Duration, max: Duration, attempt: u32, jitter_unit: f64) -> Duration {
    let exp = attempt.saturating_sub(1).min(30);
    let raw = base.saturating_mul(1u32 << exp).min(max);
    raw.mul_f64(0.5 + jitter_unit.clamp(0.0, 1.0 - f64::EPSILON))
}

/// SplitMix64 step (same mixer the serve chaos schedule uses).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One supervised slot's bookkeeping.
struct Slot {
    child: Option<Child>,
    /// Held open for the child's lifetime; dropping it is the drain
    /// signal (EOF on the child's stdin).
    stdin: Option<ChildStdin>,
    spawned_at: Instant,
    restart_at: Option<Instant>,
    /// Consecutive crashes without a stable run (backoff exponent).
    attempt: u32,
    /// Total times this slot was respawned.
    restarts: u64,
}

/// A point-in-time supervision summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupervisorStatus {
    /// Children currently running.
    pub alive: usize,
    /// Total respawns across all slots.
    pub restarts: u64,
    /// Whether the restart-rate breaker has opened.
    pub breaker_open: bool,
    /// Current pid per slot (`None` while a slot awaits restart).
    pub pids: Vec<Option<u32>>,
}

struct Inner {
    spec: ChildSpec,
    config: SupervisorConfig,
    slots: Mutex<Vec<Slot>>,
    /// Child-exit timestamps inside the sliding breaker window.
    exits: Mutex<VecDeque<Instant>>,
    cancel: CancelToken,
    breaker_open: AtomicBool,
    restarts_total: AtomicU64,
    /// Jitter stream state (seeded; advanced per draw).
    jitter_state: AtomicU64,
    /// Monitor finished (breaker trip or cancellation observed).
    done: AtomicBool,
}

impl Inner {
    fn lock_slots(&self) -> MutexGuard<'_, Vec<Slot>> {
        self.slots.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Next jitter draw in `[0, 1)`.
    fn next_unit(&self) -> f64 {
        let state = self.jitter_state.fetch_add(1, Relaxed);
        (splitmix64(self.config.seed ^ state.wrapping_mul(0x2545_f491_4f6c_dd1d)) >> 11) as f64
            / (1u64 << 53) as f64
    }
}

/// A running supervisor: `children` child processes plus one monitor
/// thread. See the module docs for the restart and drain semantics.
pub struct Supervisor {
    inner: Arc<Inner>,
    monitor: Option<std::thread::JoinHandle<()>>,
}

/// Spawn one child for `slot` with a piped (drain-signal) stdin.
fn spawn_child(spec: &ChildSpec, slot: usize) -> std::io::Result<(Child, Option<ChildStdin>)> {
    let mut child =
        Command::new(&spec.program).args(spec.args_for(slot)).stdin(Stdio::piped()).spawn()?;
    let stdin = child.stdin.take();
    Ok((child, stdin))
}

impl Supervisor {
    /// Spawn all children and the monitor thread. Fails if any initial
    /// spawn fails (a program that cannot start once is configuration
    /// error, not a crash to ride out).
    pub fn start(spec: ChildSpec, config: SupervisorConfig) -> std::io::Result<Supervisor> {
        let count = config.children.max(1);
        let mut slots = Vec::with_capacity(count);
        for slot in 0..count {
            let (child, stdin) = spawn_child(&spec, slot)?;
            eprintln!("[comet-supervisor] slot {slot}: started pid {}", child.id());
            slots.push(Slot {
                child: Some(child),
                stdin,
                spawned_at: Instant::now(),
                restart_at: None,
                attempt: 0,
                restarts: 0,
            });
        }
        let inner = Arc::new(Inner {
            spec,
            config,
            slots: Mutex::new(slots),
            exits: Mutex::new(VecDeque::new()),
            cancel: CancelToken::new(),
            breaker_open: AtomicBool::new(false),
            restarts_total: AtomicU64::new(0),
            jitter_state: AtomicU64::new(0),
            done: AtomicBool::new(false),
        });
        let monitor = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("comet-supervisor-monitor".into())
                .spawn(move || monitor_loop(&inner))
                .expect("spawn monitor")
        };
        Ok(Supervisor { inner, monitor: Some(monitor) })
    }

    /// The token that stops supervision (wired to SIGINT/SIGTERM by
    /// the binary).
    pub fn cancel_token(&self) -> &CancelToken {
        &self.inner.cancel
    }

    /// A point-in-time summary.
    pub fn status(&self) -> SupervisorStatus {
        let slots = self.inner.lock_slots();
        SupervisorStatus {
            alive: slots.iter().filter(|s| s.child.is_some()).count(),
            restarts: self.inner.restarts_total.load(Relaxed),
            breaker_open: self.inner.breaker_open.load(Relaxed),
            pids: slots.iter().map(|s| s.child.as_ref().map(|c| c.id())).collect(),
        }
    }

    /// Whether supervision has ended on its own (breaker trip).
    pub fn done(&self) -> bool {
        self.inner.done.load(Relaxed)
    }

    /// Kill `slot`'s child outright (SIGKILL — the chaos harness's
    /// "crash" lever). Returns whether a child was there to kill.
    pub fn kill_child(&self, slot: usize) -> bool {
        let mut slots = self.inner.lock_slots();
        match slots.get_mut(slot).and_then(|s| s.child.as_mut()) {
            Some(child) => {
                let _ = child.kill();
                true
            }
            None => false,
        }
    }

    /// Stop supervising and drain: cancel, send every child the drain
    /// signal (stdin EOF), give them `grace` to exit, kill stragglers,
    /// and join the monitor. Returns the process exit code: 1 if the
    /// restart-rate breaker opened, 0 otherwise.
    pub fn shutdown(mut self) -> i32 {
        self.inner.cancel.cancel();
        if let Some(monitor) = self.monitor.take() {
            let _ = monitor.join();
        }
        // Drain signal: close every stdin pipe.
        {
            let mut slots = self.inner.lock_slots();
            for slot in slots.iter_mut() {
                slot.stdin = None;
                slot.restart_at = None;
            }
        }
        let deadline = Instant::now() + self.inner.config.grace;
        loop {
            let mut remaining = 0usize;
            {
                let mut slots = self.inner.lock_slots();
                for slot in slots.iter_mut() {
                    if let Some(child) = &mut slot.child {
                        match child.try_wait() {
                            Ok(Some(_)) => slot.child = None,
                            _ => remaining += 1,
                        }
                    }
                }
            }
            if remaining == 0 {
                break;
            }
            if Instant::now() >= deadline {
                let mut slots = self.inner.lock_slots();
                for (i, slot) in slots.iter_mut().enumerate() {
                    if let Some(child) = &mut slot.child {
                        eprintln!(
                            "[comet-supervisor] slot {i}: drain grace expired, killing pid {}",
                            child.id()
                        );
                        let _ = child.kill();
                        let _ = child.wait();
                        slot.child = None;
                    }
                }
                break;
            }
            std::thread::sleep(self.inner.config.poll);
        }
        if self.inner.breaker_open.load(Relaxed) {
            1
        } else {
            0
        }
    }
}

/// The monitor: poll children, schedule restarts, trip the breaker.
fn monitor_loop(inner: &Arc<Inner>) {
    let config = inner.config;
    while !inner.cancel.is_cancelled() && !inner.done.load(Relaxed) {
        let now = Instant::now();
        let mut slots = inner.lock_slots();
        for i in 0..slots.len() {
            let slot = &mut slots[i];
            if let Some(child) = &mut slot.child {
                match child.try_wait() {
                    Ok(Some(status)) => {
                        let pid = child.id();
                        let uptime = now.duration_since(slot.spawned_at);
                        slot.child = None;
                        slot.stdin = None;
                        // Count this exit against the breaker window.
                        let tripped = {
                            let mut exits = inner.exits.lock().unwrap_or_else(|p| p.into_inner());
                            exits.push_back(now);
                            while exits
                                .front()
                                .is_some_and(|&t| now.duration_since(t) > config.restart_window)
                            {
                                exits.pop_front();
                            }
                            exits.len() > config.max_restarts
                        };
                        if tripped {
                            eprintln!(
                                "[comet-supervisor] breaker open: >{} exits in {:?}; giving up",
                                config.max_restarts, config.restart_window
                            );
                            inner.breaker_open.store(true, Relaxed);
                            for (j, other) in slots.iter_mut().enumerate() {
                                if let Some(child) = &mut other.child {
                                    eprintln!(
                                        "[comet-supervisor] slot {j}: killing pid {}",
                                        child.id()
                                    );
                                    let _ = child.kill();
                                    let _ = child.wait();
                                    other.child = None;
                                    other.stdin = None;
                                }
                            }
                            inner.done.store(true, Relaxed);
                            return;
                        }
                        if uptime >= config.stable_after {
                            slot.attempt = 0;
                        }
                        slot.attempt += 1;
                        let delay = backoff_delay(
                            config.backoff_base,
                            config.backoff_max,
                            slot.attempt,
                            inner.next_unit(),
                        );
                        slot.restart_at = Some(now + delay);
                        eprintln!(
                            "[comet-supervisor] slot {i}: pid {pid} exited ({status}) after \
                             {uptime:?}; restart #{} in {delay:?}",
                            slot.restarts + 1
                        );
                    }
                    Ok(None) => {}
                    // try_wait errors are transient kernel-side
                    // weirdness; re-poll next tick.
                    Err(_) => {}
                }
            } else if slot.restart_at.is_some_and(|t| now >= t) {
                match spawn_child(&inner.spec, i) {
                    Ok((child, stdin)) => {
                        eprintln!("[comet-supervisor] slot {i}: restarted as pid {}", child.id());
                        slot.child = Some(child);
                        slot.stdin = stdin;
                        slot.spawned_at = now;
                        slot.restart_at = None;
                        slot.restarts += 1;
                        inner.restarts_total.fetch_add(1, Relaxed);
                    }
                    Err(e) => {
                        // Spawn failure counts as another crash: back
                        // off harder rather than hot-looping on it.
                        slot.attempt = slot.attempt.saturating_add(1);
                        let delay = backoff_delay(
                            config.backoff_base,
                            config.backoff_max,
                            slot.attempt,
                            inner.next_unit(),
                        );
                        slot.restart_at = Some(now + delay);
                        eprintln!(
                            "[comet-supervisor] slot {i}: respawn failed ({e}); retry in {delay:?}"
                        );
                    }
                }
            }
        }
        drop(slots);
        std::thread::sleep(config.poll);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_caps_and_jitters() {
        let base = Duration::from_millis(100);
        let max = Duration::from_secs(5);
        // Mid-jitter (0.5 unit → ×1.0): pure exponential.
        assert_eq!(backoff_delay(base, max, 1, 0.5), Duration::from_millis(100));
        assert_eq!(backoff_delay(base, max, 2, 0.5), Duration::from_millis(200));
        assert_eq!(backoff_delay(base, max, 3, 0.5), Duration::from_millis(400));
        // The cap holds even at absurd attempts and full jitter.
        assert!(backoff_delay(base, max, 40, 0.999) < Duration::from_secs(8));
        // Jitter spans [0.5, 1.5) of the raw delay.
        assert_eq!(backoff_delay(base, max, 1, 0.0), Duration::from_millis(50));
        assert!(backoff_delay(base, max, 1, 0.999) >= Duration::from_millis(149));
        // Pure: same inputs, same output.
        assert_eq!(backoff_delay(base, max, 4, 0.25), backoff_delay(base, max, 4, 0.25));
    }

    #[test]
    fn child_spec_substitutes_slot_index() {
        let spec = ChildSpec {
            program: "serve".into(),
            args: vec!["--addr".into(), "127.0.0.1:90{slot}".into(), "--supervised".into()],
        };
        assert_eq!(spec.args_for(3), vec!["--addr", "127.0.0.1:903", "--supervised"]);
        assert_eq!(spec.args_for(0)[1], "127.0.0.1:900");
    }

    #[test]
    fn jitter_stream_is_seeded_and_deterministic() {
        let mk = |seed| Inner {
            spec: ChildSpec { program: "x".into(), args: vec![] },
            config: SupervisorConfig { seed, ..SupervisorConfig::default() },
            slots: Mutex::new(Vec::new()),
            exits: Mutex::new(VecDeque::new()),
            cancel: CancelToken::new(),
            breaker_open: AtomicBool::new(false),
            restarts_total: AtomicU64::new(0),
            jitter_state: AtomicU64::new(0),
            done: AtomicBool::new(false),
        };
        let (a, b, c) = (mk(42), mk(42), mk(43));
        let draws_a: Vec<f64> = (0..16).map(|_| a.next_unit()).collect();
        let draws_b: Vec<f64> = (0..16).map(|_| b.next_unit()).collect();
        let draws_c: Vec<f64> = (0..16).map(|_| c.next_unit()).collect();
        assert_eq!(draws_a, draws_b, "same seed, same jitter schedule");
        assert_ne!(draws_a, draws_c, "different seed, different schedule");
        assert!(draws_a.iter().all(|u| (0.0..1.0).contains(u)));
    }
}
