//! Model lifecycle: versioned epochs, shadow validation, probation,
//! and automatic rollback.
//!
//! The serving path never sees a half-swapped model. Every request
//! loads one [`ModelEpoch`] — an immutable `(version, model stack)`
//! pair — from the server's RCU cell ([`comet_core::SwapCell`]) and
//! uses only that epoch for the request's lifetime, so a response's
//! `model_version` field always names the model that actually produced
//! its numbers, even while an admin swap lands mid-request.
//!
//! A swap (`POST /admin/model`) runs this state machine:
//!
//! ```text
//! stage (registry snapshot, durable, manifest untouched)
//!   → shadow-validate (seeded probe set vs the active model)
//!       → fail  → 409, candidate stays on disk for forensics
//!       → pass  → publish epoch (RCU swap) → probation window
//!             → trips (failure rate / explain-tier regression)
//!                   → rollback to last-known-good (sticky)
//!             → survives → registry promote (manifest moves)
//! ```
//!
//! The registry `MANIFEST` moves only after probation passes, so a
//! crash — `kill -9` included — at any instant recovers to a version
//! that demonstrably served traffic. Rollback reuses the retained
//! last-good epoch `Arc`, warm cache and all, and needs no disk write
//! because the manifest never left the last-good version.

use std::sync::Arc;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::metrics::{StatusClass, Tier};
use crate::server::{BoxedModel, ModelKind, ServerCtx, Stack};
use crate::wire::{AdminModelRequest, AdminModelResponse, ShadowReport, WIRE_V};
use comet_models::{CachedModel, CostModel, ModelError, ResilientConfig, ResilientModel};

/// One published, immutable `(version, model)` pair. Requests capture
/// an epoch once and never mix state across versions: the prediction
/// cache lives *inside* the epoch's stack, so a swap invalidates it by
/// construction, and the stale-explanation store is keyed by version.
pub(crate) struct ModelEpoch {
    /// Registry version (monotonic; in-memory counter without a
    /// registry).
    pub version: u64,
    /// Model display name, e.g. `crude(haswell)`.
    pub name: String,
    /// Rebuild recipe, e.g. `crude-skylake`.
    pub kind: String,
    /// The full serving stack: `CachedModel(ResilientModel(base))`.
    pub stack: Arc<Stack>,
}

/// Gates a candidate must pass during shadow validation.
#[derive(Debug, Clone, Copy)]
pub struct ShadowGates {
    /// Maximum mean absolute percentage error of the candidate vs the
    /// active model over the probe set. Generous by default: swapping
    /// between microarchitectures is legitimate; a model predicting
    /// garbage (10× off, NaN) is not.
    pub mape: f64,
    /// Maximum mean per-probe candidate latency, microseconds.
    pub mean_latency_us: f64,
}

impl Default for ShadowGates {
    fn default() -> ShadowGates {
        ShadowGates { mape: 1.0, mean_latency_us: 250_000.0 }
    }
}

/// What a snapshot's opaque payload holds for the analytical models:
/// the chaos knobs, so a restart rebuilds exactly what was serving
/// (a chaos-scaled candidate that somehow got promoted must come back
/// scaled, not silently healed).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub(crate) struct SnapshotPayload {
    /// Multiply every prediction by this factor (fault injection).
    #[serde(default)]
    pub chaos_scale: Option<f64>,
    /// Fail every prediction (fault injection).
    #[serde(default)]
    pub chaos_fail: bool,
}

/// Swap/rollback bookkeeping, guarded by one mutex that also
/// serializes admin swaps.
pub(crate) struct LifecycleState {
    /// Last-known-good epoch — the rollback target. Holding the `Arc`
    /// keeps its warm stack alive across any number of failed
    /// candidates.
    pub good: Arc<ModelEpoch>,
    /// Probation bookkeeping for a freshly published epoch, `None`
    /// once settled.
    pub probation: Option<Probation>,
    /// Why the most recent rollback happened (sticky until the next
    /// successful swap).
    pub last_rollback: Option<String>,
    /// Version allocator when serving without a registry.
    pub next_version: u64,
}

/// A freshly promoted epoch earns trust over a request window; real
/// traffic is the final validator shadow probes cannot replace.
pub(crate) struct Probation {
    /// The version on probation.
    pub version: u64,
    /// Requests the epoch must survive.
    pub window: u64,
    /// Requests observed so far.
    pub requests: u64,
    /// Requests that failed with a model-side 500.
    pub failures: u64,
    /// Explains observed so far.
    pub explains: u64,
    /// Explains that landed below the full tier.
    pub degraded_explains: u64,
    /// Pre-swap degraded-explain rate; the regression trip compares
    /// against this so a service that was already degraded does not
    /// pin the blame on the new model.
    pub baseline_degraded_rate: f64,
}

/// Requests on probation must accrue this many observations before a
/// rate can trip rollback (one unlucky first request is not a signal).
const PROBATION_MIN_SAMPLES: u64 = 8;
/// Model-failure rate above which probation trips.
const FAILURE_TRIP_RATE: f64 = 0.5;
/// Degraded-explain rate above baseline at which probation trips.
const DEGRADED_TRIP_MARGIN: f64 = 0.5;

/// Blocks the shadow validator probes — the serving mix in miniature:
/// dependency chains, div port pressure, loads, and a trivial block.
const PROBE_BLOCKS: [&str; 6] = [
    "add rcx, rax\nmov rdx, rcx\npop rbx",
    "mov ecx, edx\nxor edx, edx\nlea rax, [rcx + rax - 1]\ndiv rcx\nmov rdx, rcx\nimul rax, rcx",
    "div rcx",
    "imul rax, rcx\nadd rcx, rax\nnop",
    "mov rax, [rsp + 8]\nadd rax, rcx\nmov [rsp + 8], rax",
    "nop",
];

/// Build the standard serving stack around a base model (same retry
/// budget and bounded cache the boot path uses, so a hot-swapped model
/// gets identical resilience).
pub(crate) fn build_stack(base: BoxedModel, cache_capacity: usize) -> Arc<Stack> {
    let resilient_config =
        ResilientConfig { retry_budget: 64.0, retry_refill: 0.1, ..ResilientConfig::default() };
    Arc::new(CachedModel::bounded(ResilientModel::new(base, resilient_config), cache_capacity))
}

/// Build a base model from its rebuild recipe, applying any recorded
/// chaos knobs.
pub(crate) fn build_base(kind: ModelKind, payload: &SnapshotPayload) -> BoxedModel {
    let (mut base, _) = kind.build();
    if let Some(scale) = payload.chaos_scale {
        base = Box::new(ChaosScaled::new(base, scale));
    }
    if payload.chaos_fail {
        base = Box::new(ChaosFailing::new(base));
    }
    base
}

/// Fault injection: a model whose every prediction is scaled. A large
/// scale fails the shadow MAPE gate — the supported way to exercise
/// the 409 path, and (with `force`) a promoted-then-regretted swap.
struct ChaosScaled {
    inner: BoxedModel,
    scale: f64,
    name: String,
}

impl ChaosScaled {
    fn new(inner: BoxedModel, scale: f64) -> ChaosScaled {
        let name = format!("{}~x{scale}", inner.name());
        ChaosScaled { inner, scale, name }
    }
}

impl CostModel for ChaosScaled {
    fn name(&self) -> &str {
        &self.name
    }

    fn predict(&self, block: &comet_isa::BasicBlock) -> f64 {
        self.inner.predict(block) * self.scale
    }

    fn try_predict(&self, block: &comet_isa::BasicBlock) -> Result<f64, ModelError> {
        self.inner.try_predict(block).map(|v| v * self.scale)
    }
}

/// Fault injection: a model whose every prediction errors. Fails
/// shadow validation outright; force-promoting it exercises the
/// probation failure-rate trip and automatic rollback. The wrapped
/// model contributes only its name — no query ever reaches it.
struct ChaosFailing {
    name: String,
}

impl ChaosFailing {
    fn new(inner: BoxedModel) -> ChaosFailing {
        ChaosFailing { name: format!("{}~failing", inner.name()) }
    }
}

impl CostModel for ChaosFailing {
    fn name(&self) -> &str {
        &self.name
    }

    fn predict(&self, _block: &comet_isa::BasicBlock) -> f64 {
        f64::NAN
    }

    fn try_predict(&self, _block: &comet_isa::BasicBlock) -> Result<f64, ModelError> {
        // Non-retryable on purpose: every serving request fails fast,
        // which is what drives the probation failure-rate trip.
        Err(ModelError::Panic { message: "chaos: injected model failure".into() })
    }
}

/// Shadow-validate a candidate stack against the active one over the
/// seeded probe set. The candidate sees exactly the traffic shape the
/// probes encode; the active model supplies the reference predictions.
pub(crate) fn shadow_validate(
    active: &Stack,
    candidate: &Stack,
    gates: ShadowGates,
) -> ShadowReport {
    let mut probes = 0u64;
    let mut non_finite = 0u64;
    let mut ape_sum = 0.0f64;
    let mut ape_count = 0u64;
    let mut latency_us_sum = 0.0f64;
    for text in PROBE_BLOCKS {
        let Ok(block) = comet_isa::parse_block(text) else { continue };
        probes += 1;
        let reference = active.try_predict(&block).ok().filter(|v| v.is_finite());
        let start = Instant::now();
        let prediction = candidate.try_predict(&block);
        latency_us_sum += start.elapsed().as_micros() as f64;
        match prediction {
            Ok(v) if v.is_finite() => {
                if let Some(reference) = reference {
                    ape_sum += (v - reference).abs() / reference.abs().max(1e-9);
                    ape_count += 1;
                }
            }
            Ok(_) | Err(_) => non_finite += 1,
        }
    }
    let mape = if ape_count > 0 { ape_sum / ape_count as f64 } else { 0.0 };
    let mean_latency_us = if probes > 0 { latency_us_sum / probes as f64 } else { 0.0 };
    let mut failures = Vec::new();
    if non_finite > 0 {
        failures.push(format!("{non_finite}/{probes} probe predictions failed or were non-finite"));
    }
    if mape > gates.mape {
        failures.push(format!("probe MAPE {mape:.3} exceeds gate {:.3}", gates.mape));
    }
    if mean_latency_us > gates.mean_latency_us {
        failures.push(format!(
            "mean probe latency {mean_latency_us:.0}µs exceeds gate {:.0}µs",
            gates.mean_latency_us
        ));
    }
    ShadowReport {
        probes,
        non_finite,
        mape,
        mean_latency_us,
        passed: failures.is_empty(),
        failures,
    }
}

/// How a request against a probation epoch went, for
/// [`note_outcome`].
pub(crate) enum Outcome {
    /// A successful predict (or any non-model-fault status).
    Ok,
    /// A successful explain, with the ladder tier it landed on.
    ExplainTier(Tier),
    /// The serving model itself failed (wire 500).
    Failure,
}

enum Verdict {
    Continue,
    Rollback(String),
    Settle(u64),
}

/// Feed one request outcome into the probation window; trips rollback
/// or settles the epoch as last-known-good when the window closes.
/// Cheap no-op when nothing is on probation or the outcome belongs to
/// an older epoch still finishing in another worker.
pub(crate) fn note_outcome(ctx: &ServerCtx, version: u64, outcome: Outcome) {
    let mut lc = ctx.lifecycle.lock().unwrap_or_else(|p| p.into_inner());
    let verdict = {
        let Some(p) = lc.probation.as_mut() else { return };
        if p.version != version {
            return;
        }
        p.requests += 1;
        match outcome {
            Outcome::Failure => p.failures += 1,
            Outcome::ExplainTier(tier) => {
                p.explains += 1;
                if tier != Tier::Full {
                    p.degraded_explains += 1;
                }
            }
            Outcome::Ok => {}
        }
        let mut verdict = Verdict::Continue;
        if p.requests >= PROBATION_MIN_SAMPLES {
            let failure_rate = p.failures as f64 / p.requests as f64;
            if failure_rate > FAILURE_TRIP_RATE {
                verdict = Verdict::Rollback(format!(
                    "v{version} failure rate {failure_rate:.2} over {} probation requests",
                    p.requests
                ));
            } else if p.explains >= PROBATION_MIN_SAMPLES {
                let degraded_rate = p.degraded_explains as f64 / p.explains as f64;
                if degraded_rate > p.baseline_degraded_rate + DEGRADED_TRIP_MARGIN {
                    verdict = Verdict::Rollback(format!(
                        "v{version} degraded-explain rate {degraded_rate:.2} \
                         (baseline {:.2}) over {} probation explains",
                        p.baseline_degraded_rate, p.explains
                    ));
                }
            }
        }
        if matches!(verdict, Verdict::Continue) && p.requests >= p.window {
            verdict = Verdict::Settle(version);
        }
        verdict
    };
    match verdict {
        Verdict::Continue => {}
        Verdict::Rollback(reason) => rollback_locked(ctx, &mut lc, reason),
        Verdict::Settle(version) => settle_locked(ctx, &mut lc, version),
    }
}

/// Probation survived: the epoch becomes last-known-good and the
/// registry manifest durably moves to it.
fn settle_locked(ctx: &ServerCtx, lc: &mut LifecycleState, version: u64) {
    lc.probation = None;
    let epoch = ctx.epoch.load();
    if epoch.version != version {
        return; // a newer swap superseded this probation mid-flight
    }
    if let Some(registry) = &ctx.registry {
        if let Err(e) = registry.promote(version) {
            // Serving continues on the promoted epoch either way; the
            // manifest just still names the previous good version.
            eprintln!("[comet-serve] registry promote v{version} failed: {e}");
            return;
        }
    }
    eprintln!("[comet-serve] model v{version} ({}) settled as last-known-good", epoch.name);
    lc.good = epoch;
}

/// Swap back to the retained last-known-good epoch. No registry write:
/// the manifest never moved off the good version.
fn rollback_locked(ctx: &ServerCtx, lc: &mut LifecycleState, reason: String) {
    lc.probation = None;
    let good = Arc::clone(&lc.good);
    eprintln!("[comet-serve] model rollback to v{}: {reason}", good.version);
    ctx.metrics().set_model_version(good.version);
    ctx.metrics().record_model_rollback();
    lc.last_rollback = Some(reason);
    ctx.epoch.store(good);
}

/// Current degraded-explain rate from the global tier counters — the
/// probation baseline.
fn degraded_rate(ctx: &ServerCtx) -> f64 {
    let full = ctx.metrics().tier_count(Tier::Full);
    let total: u64 = [Tier::Full, Tier::ReducedBudget, Tier::Cached, Tier::Baseline]
        .iter()
        .map(|&t| ctx.metrics().tier_count(t))
        .sum();
    if total == 0 {
        0.0
    } else {
        (total - full) as f64 / total as f64
    }
}

/// Build the common status body under the lifecycle lock.
fn status_locked(ctx: &ServerCtx, lc: &LifecycleState, action: &str) -> AdminModelResponse {
    let epoch = ctx.epoch.load();
    AdminModelResponse {
        v: WIRE_V,
        active_version: epoch.version,
        active_model: epoch.name.clone(),
        active_kind: epoch.kind.clone(),
        last_good_version: lc.good.version,
        staged_version: 0,
        action: action.to_string(),
        shadow: None,
        registry_versions: ctx
            .registry
            .as_ref()
            .map(|r| r.versions().iter().map(|s| s.version).collect())
            .unwrap_or_default(),
        quarantined: ctx.recovery.quarantined.clone(),
        swaps: ctx.metrics().model_swap_count(),
        rollbacks: ctx.metrics().model_rollback_count(),
        probation_remaining: lc
            .probation
            .as_ref()
            .map(|p| p.window.saturating_sub(p.requests))
            .unwrap_or(0),
        last_rollback: lc.last_rollback.clone(),
    }
}

/// `GET /admin/model`: lifecycle status.
pub(crate) fn admin_status(ctx: &ServerCtx) -> AdminModelResponse {
    let lc = ctx.lifecycle.lock().unwrap_or_else(|p| p.into_inner());
    status_locked(ctx, &lc, "status")
}

/// `POST /admin/model`: stage → validate → publish → probation, or a
/// manual rollback. The lifecycle lock serializes concurrent admin
/// requests end to end; readers are never blocked (RCU).
pub(crate) fn admin_model(
    ctx: &ServerCtx,
    req: &AdminModelRequest,
) -> Result<(StatusClass, AdminModelResponse), (StatusClass, String)> {
    if req.rollback {
        if req.kind.is_some() {
            return Err((
                StatusClass::BadRequest,
                "`rollback` and `kind` are mutually exclusive".into(),
            ));
        }
        let mut lc = ctx.lifecycle.lock().unwrap_or_else(|p| p.into_inner());
        rollback_locked(ctx, &mut lc, "manual rollback requested via /admin/model".into());
        return Ok((StatusClass::Ok, status_locked(ctx, &lc, "rolled-back")));
    }

    let Some(kind_str) = req.kind.as_deref() else {
        return Err((StatusClass::BadRequest, "missing `kind` (or set `rollback`)".into()));
    };
    let Some(kind) = ModelKind::parse(kind_str) else {
        return Err((StatusClass::BadRequest, format!("unknown model kind `{kind_str}`")));
    };
    let payload = SnapshotPayload { chaos_scale: req.chaos_scale, chaos_fail: req.chaos_fail };
    let base = build_base(kind, &payload);
    let name = base.name().to_string();
    let candidate = build_stack(base, ctx.cache_capacity);

    let mut lc = ctx.lifecycle.lock().unwrap_or_else(|p| p.into_inner());
    let version = match &ctx.registry {
        Some(registry) => {
            let payload_json = serde_json::to_string(&payload)
                .map_err(|e| (StatusClass::Internal, format!("payload encode: {e}")))?;
            let note = req.note.as_deref().unwrap_or("");
            registry
                .stage(kind_str, note, &payload_json)
                .map_err(|e| (StatusClass::Internal, format!("registry stage: {e}")))?
                .version
        }
        None => {
            lc.next_version += 1;
            lc.next_version
        }
    };

    let active = ctx.epoch.load();
    let shadow = shadow_validate(&active.stack, &candidate, ctx.shadow);
    let passed = shadow.passed;

    if req.dry_run {
        let mut resp = status_locked(ctx, &lc, "dry-run");
        resp.staged_version = version;
        resp.shadow = Some(shadow);
        return Ok((StatusClass::Ok, resp));
    }
    if !passed && !req.force {
        // The staged snapshot stays on disk (never promoted) so the
        // rejected candidate can be inspected.
        let mut resp = status_locked(ctx, &lc, "rejected");
        resp.staged_version = version;
        resp.shadow = Some(shadow);
        return Ok((StatusClass::Conflict, resp));
    }

    let epoch =
        Arc::new(ModelEpoch { version, name, kind: kind_str.to_string(), stack: candidate });
    let baseline = degraded_rate(ctx);
    ctx.epoch.store(Arc::clone(&epoch));
    ctx.metrics().set_model_version(version);
    ctx.metrics().record_model_swap();
    eprintln!(
        "[comet-serve] model swap: v{version} ({}) now serving{}",
        epoch.name,
        if passed { "" } else { " (forced past shadow validation)" }
    );
    if ctx.probation_requests == 0 {
        // Probation disabled: trust the shadow gates alone.
        settle_locked(ctx, &mut lc, version);
    } else {
        lc.probation = Some(Probation {
            version,
            window: ctx.probation_requests,
            requests: 0,
            failures: 0,
            explains: 0,
            degraded_explains: 0,
            baseline_degraded_rate: baseline,
        });
    }

    let mut resp = status_locked(ctx, &lc, "promoted");
    resp.staged_version = version;
    resp.shadow = Some(shadow);
    Ok((StatusClass::Ok, resp))
}
