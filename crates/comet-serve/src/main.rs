//! `comet-serve` — run the explanation service, or benchmark it.
//!
//! ```text
//! comet-serve [--addr HOST:PORT] [--workers N] [--queue-depth N]
//!             [--event-threads N] [--shard I/M]
//!             [--model crude|crude-skylake|uica] [--epsilon F]
//!             [--deadline-ms MS] [--batch N] [--search-pool N]
//!             [--idle-timeout-ms MS] [--admission-target-ms MS]
//!             [--registry DIR] [--probation-requests N]
//!             [--store PATH]
//!             [--supervised] [--chaos-seed N] [--chaos-panic-rate F]
//!             [--force-scalar]
//!             [--bench-client] [--duration-secs S] [--clients N]
//!             [--connections N] [--baseline FILE]
//!             [--allow-schema-mismatch] [--out FILE]
//! ```
//!
//! `--event-threads N` sets the reactor (epoll event-loop) thread
//! count; `--shard I/M` makes this process shard `I` of an `M`-shard
//! fleet, enforcing consistent-hash block ownership (misrouted blocks
//! get 409 naming the true owner — put `comet-router` in front).
//!
//! `--store PATH` serves precomputed explanations from a `comet-store
//! build` output (a `.comets` file, or a directory holding
//! `store.comets`) as the top tier of the explain ladder, and enables
//! the `GET /analytics/*` rollup endpoints.
//!
//! Without `--bench-client` the binary serves until Ctrl-C or SIGTERM
//! (graceful drain; a second Ctrl-C aborts). `--supervised` makes
//! stdin EOF a third drain trigger, which is how `comet-supervisor`
//! asks its children to drain without signals. The `--chaos-*` flags
//! enable seeded in-server fault injection (worker panics) for the
//! chaos harness — never use them in real serving. With
//! `--bench-client`, the binary starts the server on a loopback port,
//! drives it with `--clients` concurrent connections for
//! `--duration-secs`, and writes `BENCH_serve.json`
//! (`{"schema":2,"mode":...,"current":{...}}`, the same envelope as
//! `BENCH_explain.json`) with throughput, shed rate, and latency
//! percentiles per endpoint — plus two scaling axes:
//!
//! * `connections`: the c10k ladder — a child server process is held
//!   at 100 / 1,000 / `--connections` (default 10,000) open keep-alive
//!   connections while round-robin predict load measures throughput
//!   and p99 at each rung.
//! * `shards`: fleet scaling — for 1 / 2 / 4 shard processes behind an
//!   in-process `comet-router`, the same predict mix measures
//!   routed throughput.
//!
//! `--baseline FILE` merges a previously captured BENCH_serve.json as
//! the `baseline` section with `speedup` ratios; a baseline written
//! under a different serve schema is refused unless
//! `--allow-schema-mismatch` is passed.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::{Duration, Instant};

use comet_core::cancel::{install_sigint, install_sigterm};
use comet_serve::route::ShardSpec;
use comet_serve::{ChaosConfig, ModelKind, Router, RouterConfig, ServeConfig, Server};
use serde_json::json;

/// BENCH_serve.json envelope schema. Bumped to 2 when the epoll front
/// end added the `connections` and `shards` scaling axes — schema-1
/// baselines measured the threaded accept loop and are not comparable.
const SERVE_SCHEMA: u64 = 2;

struct Args {
    config: ServeConfig,
    model: ModelKind,
    supervised: bool,
    chaos_seed: u64,
    chaos_panic_rate: f64,
    bench_client: bool,
    duration_secs: u64,
    clients: usize,
    connections: usize,
    baseline: Option<String>,
    allow_schema_mismatch: bool,
    out: String,
}

fn usage() -> ! {
    eprintln!(
        "usage: comet-serve [--addr HOST:PORT] [--workers N] [--queue-depth N]\n\
         \x20                  [--event-threads N] [--shard I/M]\n\
         \x20                  [--model crude|crude-skylake|uica] [--epsilon F] [--deadline-ms MS]\n\
         \x20                  [--batch N] [--search-pool N] [--idle-timeout-ms MS]\n\
         \x20                  [--admission-target-ms MS] [--supervised]\n\
         \x20                  [--registry DIR] [--probation-requests N] [--store PATH]\n\
         \x20                  [--chaos-seed N] [--chaos-panic-rate F] [--force-scalar]\n\
         \x20                  [--bench-client] [--duration-secs S] [--clients N]\n\
         \x20                  [--connections N] [--baseline FILE] [--allow-schema-mismatch]\n\
         \x20                  [--out FILE]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        config: ServeConfig::default(),
        model: ModelKind::CrudeHaswell,
        supervised: false,
        chaos_seed: 0,
        chaos_panic_rate: 0.0,
        bench_client: false,
        duration_secs: 5,
        clients: 8,
        connections: 10_000,
        baseline: None,
        allow_schema_mismatch: false,
        out: "BENCH_serve.json".into(),
    };
    // ε 0 means "use the model's paper default" (filled in by start()).
    args.config.epsilon = 0.0;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |name: &str| -> String {
            argv.next().unwrap_or_else(|| {
                eprintln!("error: {name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => args.config.addr = value("--addr"),
            "--workers" => args.config.workers = parse_or_usage(&value("--workers")),
            "--queue-depth" => args.config.queue_depth = parse_or_usage(&value("--queue-depth")),
            "--event-threads" => {
                args.config.event_threads = parse_or_usage(&value("--event-threads"))
            }
            "--shard" => {
                let spec = value("--shard");
                args.config.shard = Some(ShardSpec::parse(&spec).unwrap_or_else(|| {
                    eprintln!("error: --shard wants I/M with I < M (e.g. 0/2), got `{spec}`");
                    usage()
                }));
            }
            "--epsilon" => args.config.epsilon = parse_or_usage(&value("--epsilon")),
            "--deadline-ms" => args.config.deadline_ms = parse_or_usage(&value("--deadline-ms")),
            "--batch" => args.config.batch = parse_or_usage(&value("--batch")),
            "--search-pool" => args.config.search_pool = parse_or_usage(&value("--search-pool")),
            "--idle-timeout-ms" => {
                args.config.idle_timeout_ms = parse_or_usage(&value("--idle-timeout-ms"))
            }
            "--admission-target-ms" => {
                let target_ms: u64 = parse_or_usage(&value("--admission-target-ms"));
                args.config.admission.target_delay_us = target_ms.saturating_mul(1_000);
                args.config.admission.interval_us =
                    args.config.admission.target_delay_us.saturating_mul(4).max(1_000);
            }
            "--registry" => args.config.registry_dir = Some(value("--registry")),
            "--store" => args.config.store_path = Some(value("--store")),
            "--probation-requests" => {
                args.config.probation_requests = parse_or_usage(&value("--probation-requests"))
            }
            "--supervised" => args.supervised = true,
            "--force-scalar" => {
                let _ = comet_nn::kernel::force_scalar();
            }
            "--chaos-seed" => args.chaos_seed = parse_or_usage(&value("--chaos-seed")),
            "--chaos-panic-rate" => {
                args.chaos_panic_rate = parse_or_usage(&value("--chaos-panic-rate"))
            }
            "--model" => {
                let name = value("--model");
                args.model = ModelKind::parse(&name).unwrap_or_else(|| {
                    eprintln!("error: unknown model `{name}`");
                    usage()
                });
            }
            "--bench-client" => args.bench_client = true,
            "--duration-secs" => args.duration_secs = parse_or_usage(&value("--duration-secs")),
            "--clients" => args.clients = parse_or_usage(&value("--clients")),
            "--connections" => args.connections = parse_or_usage(&value("--connections")),
            "--baseline" => args.baseline = Some(value("--baseline")),
            "--allow-schema-mismatch" => args.allow_schema_mismatch = true,
            "--out" => args.out = value("--out"),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown argument `{other}`");
                usage();
            }
        }
    }
    args
}

fn parse_or_usage<T: std::str::FromStr>(s: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("error: cannot parse `{s}`");
        usage()
    })
}

fn main() {
    let mut args = parse_args();
    if args.chaos_panic_rate > 0.0 {
        args.config.chaos =
            Some(ChaosConfig { worker_panic_rate: args.chaos_panic_rate, seed: args.chaos_seed });
    }
    if args.bench_client {
        // The bench run owns its own loopback server; never fight a
        // user-supplied address for the port.
        args.config.addr = "127.0.0.1:0".into();
        bench_client(args);
        return;
    }

    let server = match Server::start(args.model, args.config.clone()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", args.config.addr);
            std::process::exit(1);
        }
    };
    install_sigint(server.ctx().cancel_token().clone());
    install_sigterm(server.ctx().cancel_token().clone());
    if args.supervised {
        // Under a supervisor, stdin EOF is the drain request: the
        // supervisor holds our stdin pipe and closes it to drain us
        // without signals.
        let token = server.ctx().cancel_token().clone();
        std::thread::Builder::new()
            .name("comet-serve-stdin-watch".into())
            .spawn(move || {
                let mut sink = Vec::new();
                let _ = std::io::stdin().lock().read_to_end(&mut sink);
                eprintln!("[comet-serve] stdin closed: draining");
                token.cancel();
            })
            .expect("spawn stdin watcher");
    }
    eprintln!(
        "[comet-serve] listening on {} ({} workers, queue depth {}); Ctrl-C drains, twice aborts",
        server.addr(),
        args.config.workers,
        args.config.queue_depth
    );
    server.join();
    eprintln!("[comet-serve] drained, bye");
}

// ---------------------------------------------------------------------------
// Bench client: loopback load generation against an in-process server.
// ---------------------------------------------------------------------------

/// Blocks the load mix cycles through — small/medium/port-pressure
/// shapes so the cache sees repetition but not a single key.
const BENCH_BLOCKS: [&str; 4] = [
    "add rcx, rax\nmov rdx, rcx\npop rbx",
    "mov ecx, edx\nxor edx, edx\nlea rax, [rcx + rax - 1]\ndiv rcx\nmov rdx, rcx\nimul rax, rcx",
    "div rcx",
    "imul rax, rcx\nadd rcx, rax\nnop",
];

/// Send one request over a fresh connection; returns (status, µs).
/// One-shot connections make every request visible to the shed path,
/// which is the behaviour under test.
fn one_shot(addr: std::net::SocketAddr, request: &str) -> Option<(u16, u64)> {
    let start = Instant::now();
    let mut stream = TcpStream::connect(addr).ok()?;
    stream.set_read_timeout(Some(Duration::from_secs(30))).ok()?;
    stream.write_all(request.as_bytes()).ok()?;
    let mut reader = BufReader::new(&stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).ok()?;
    let status: u16 = status_line.split_whitespace().nth(1)?.parse().ok()?;
    // Drain headers + body so the server never sees a reset mid-write.
    let mut rest = Vec::new();
    let _ = reader.read_to_end(&mut rest);
    Some((status, start.elapsed().as_micros() as u64))
}

fn post(path: &str, body: &str) -> String {
    format!(
        "POST {path} HTTP/1.1\r\nHost: bench\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
}

/// Percentile over a sorted latency sample, µs.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[derive(Default)]
struct Tally {
    ok: AtomicU64,
    shed: AtomicU64,
    other: AtomicU64,
}

fn run_phase(
    addr: std::net::SocketAddr,
    clients: usize,
    duration: Duration,
    make_request: impl Fn(usize, u64) -> String + Send + Sync,
) -> (Tally, Vec<u64>) {
    let tally = Tally::default();
    let stop = AtomicBool::new(false);
    let latencies = std::sync::Mutex::new(Vec::<u64>::new());
    std::thread::scope(|scope| {
        for client in 0..clients {
            let tally = &tally;
            let stop = &stop;
            let latencies = &latencies;
            let make_request = &make_request;
            scope.spawn(move || {
                let mut local = Vec::new();
                let mut i = 0u64;
                while !stop.load(Relaxed) {
                    let request = make_request(client, i);
                    i += 1;
                    match one_shot(addr, &request) {
                        Some((200, us)) => {
                            tally.ok.fetch_add(1, Relaxed);
                            local.push(us);
                        }
                        Some((503, _)) => {
                            tally.shed.fetch_add(1, Relaxed);
                        }
                        Some(_) | None => {
                            tally.other.fetch_add(1, Relaxed);
                        }
                    }
                }
                latencies.lock().unwrap().extend(local);
            });
        }
        std::thread::sleep(duration);
        stop.store(true, Relaxed);
    });
    let mut all = latencies.into_inner().unwrap();
    all.sort_unstable();
    (tally, all)
}

fn phase_json(name: &str, tally: &Tally, sorted_us: &[u64], secs: f64) -> serde_json::Value {
    let ok = tally.ok.load(Relaxed);
    let shed = tally.shed.load(Relaxed);
    let other = tally.other.load(Relaxed);
    let total = ok + shed + other;
    eprintln!(
        "[bench-serve] {name}: {ok} ok, {shed} shed, {other} other in {secs:.1}s \
         ({:.0} req/s, p50 {}µs, p99 {}µs)",
        total as f64 / secs.max(1e-9),
        percentile(sorted_us, 0.5),
        percentile(sorted_us, 0.99),
    );
    json!({
        "requests": total,
        "ok": ok,
        "shed": shed,
        "errors": other,
        "req_per_sec": total as f64 / secs.max(1e-9),
        "shed_rate": if total > 0 { shed as f64 / total as f64 } else { 0.0 },
        "p50_us": percentile(sorted_us, 0.5),
        "p90_us": percentile(sorted_us, 0.9),
        "p99_us": percentile(sorted_us, 0.99),
    })
}

// ---------------------------------------------------------------------------
// Scaling axes: child server processes, a c10k connection ladder, and
// a sharded fleet behind an in-process router.
// ---------------------------------------------------------------------------

/// A comet-serve child process (the same binary re-invoked in serve
/// mode). Out-of-process because the c10k rung needs ~N fds on each
/// side of the loopback — one process holding both halves would need
/// double the fd budget.
struct ChildServer {
    child: std::process::Child,
    addr: std::net::SocketAddr,
}

fn spawn_child_server(model: ModelKind, workers: usize, extra: &[String]) -> ChildServer {
    use std::process::{Command, Stdio};
    let exe = std::env::current_exe().expect("own binary path");
    let mut child = Command::new(exe)
        .arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--model")
        .arg(model.label())
        .arg("--workers")
        .arg(workers.to_string())
        .arg("--supervised")
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn child comet-serve");
    // The child announces its bound port on stderr; read lines until
    // the announcement, then keep draining in the background so the
    // pipe never backs up into the child.
    let mut reader = BufReader::new(child.stderr.take().expect("child stderr piped"));
    let addr = loop {
        let mut line = String::new();
        if reader.read_line(&mut line).unwrap_or(0) == 0 {
            panic!("child server exited before announcing its address");
        }
        if let Some(rest) = line.split("listening on ").nth(1) {
            let token = rest.split_whitespace().next().expect("address token");
            break token.parse().expect("child address parses");
        }
    };
    std::thread::spawn(move || {
        let mut sink = String::new();
        loop {
            sink.clear();
            if reader.read_line(&mut sink).unwrap_or(0) == 0 {
                return;
            }
        }
    });
    ChildServer { child, addr }
}

impl ChildServer {
    /// Graceful drain: the child runs `--supervised`, so closing its
    /// stdin is the drain request.
    fn drain(mut self) {
        drop(self.child.stdin.take());
        let _ = self.child.wait();
    }
}

/// One held-open keep-alive connection of the c10k ladder.
struct KeepAliveConn {
    reader: BufReader<TcpStream>,
}

impl KeepAliveConn {
    fn connect(addr: std::net::SocketAddr) -> std::io::Result<KeepAliveConn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.set_nodelay(true)?;
        Ok(KeepAliveConn { reader: BufReader::new(stream) })
    }

    /// One request/response round trip without closing the socket.
    /// Returns (status, µs), or `None` on any transport failure.
    fn call(&mut self, request: &[u8]) -> Option<(u16, u64)> {
        let start = Instant::now();
        self.reader.get_ref().write_all(request).ok()?;
        let mut line = String::new();
        self.reader.read_line(&mut line).ok()?;
        let status: u16 = line.split_whitespace().nth(1)?.parse().ok()?;
        let mut content_length = 0usize;
        loop {
            line.clear();
            if self.reader.read_line(&mut line).ok()? == 0 {
                return None;
            }
            let trimmed = line.trim_end();
            if trimmed.is_empty() {
                break;
            }
            if let Some((name, value)) = trimmed.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().ok()?;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).ok()?;
        Some((status, start.elapsed().as_micros() as u64))
    }
}

fn post_keepalive(path: &str, body: &str) -> Vec<u8> {
    format!("POST {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}", body.len())
        .into_bytes()
}

/// One rung of the connection ladder: hold `target` keep-alive
/// connections open against `addr` and sweep predict load round-robin
/// across all of them from a handful of driver threads for
/// `duration`. Every connection both exists (fd pressure on the
/// reactors) and carries requests (the sweep), which is what "sustains
/// N concurrent connections" means here.
fn connection_rung(
    addr: std::net::SocketAddr,
    target: usize,
    duration: Duration,
) -> serde_json::Value {
    // Connect storm from several threads: serially connecting 10k
    // sockets on a busy single-core box can outlast the server's idle
    // reaper, which would kill the early connections before the sweep
    // ever touches them.
    let connect_failures = AtomicU64::new(0);
    let conn_sink = std::sync::Mutex::new(Vec::with_capacity(target));
    std::thread::scope(|scope| {
        const CONNECTORS: usize = 8;
        for part in 0..CONNECTORS {
            let quota = target / CONNECTORS + usize::from(part < target % CONNECTORS);
            let (conn_sink, connect_failures) = (&conn_sink, &connect_failures);
            scope.spawn(move || {
                let mut mine = Vec::with_capacity(quota);
                for _ in 0..quota {
                    match KeepAliveConn::connect(addr) {
                        Ok(conn) => mine.push(Some(conn)),
                        Err(_) => {
                            connect_failures.fetch_add(1, Relaxed);
                        }
                    }
                }
                conn_sink.lock().unwrap().extend(mine);
            });
        }
    });
    let mut conns: Vec<Option<KeepAliveConn>> = conn_sink.into_inner().unwrap();
    let connect_failures = connect_failures.load(Relaxed);
    let connected = conns.len();
    let requests = BENCH_BLOCKS
        .iter()
        .map(|block| post_keepalive("/v1/predict", &json!({"v": 1, "block": block}).to_string()))
        .collect::<Vec<_>>();

    const DRIVERS: usize = 8;
    let tally = Tally::default();
    let stop = AtomicBool::new(false);
    let latencies = std::sync::Mutex::new(Vec::<u64>::new());
    // Every non-200 outcome stays attributable: a status histogram
    // plus a transport-failure count, so "zero unexplained 5xx" is
    // checkable from the report rather than asserted.
    let statuses = std::sync::Mutex::new(std::collections::BTreeMap::<u16, u64>::new());
    let transport_errors = AtomicU64::new(0);
    let chunk = conns.len().div_ceil(DRIVERS).max(1);
    std::thread::scope(|scope| {
        let mut rest = conns.as_mut_slice();
        let mut offset = 0usize;
        while !rest.is_empty() {
            let (mine, tail) = rest.split_at_mut(chunk.min(rest.len()));
            rest = tail;
            let (tally, stop, latencies, requests) = (&tally, &stop, &latencies, &requests);
            let (statuses, transport_errors) = (&statuses, &transport_errors);
            let base = offset;
            offset += mine.len();
            scope.spawn(move || {
                let mut local = Vec::new();
                let mut round = 0usize;
                'sweep: loop {
                    let mut alive = false;
                    for (i, slot) in mine.iter_mut().enumerate() {
                        if stop.load(Relaxed) {
                            break 'sweep;
                        }
                        let Some(conn) = slot else { continue };
                        alive = true;
                        let request = &requests[(base + i + round) % requests.len()];
                        match conn.call(request) {
                            Some((200, us)) => {
                                tally.ok.fetch_add(1, Relaxed);
                                local.push(us);
                            }
                            Some((503, _)) => {
                                tally.shed.fetch_add(1, Relaxed);
                            }
                            Some((status, _)) => {
                                tally.other.fetch_add(1, Relaxed);
                                *statuses.lock().unwrap().entry(status).or_insert(0) += 1;
                            }
                            None => {
                                // A dead socket is one failure, not a
                                // failure per sweep: retire it.
                                tally.other.fetch_add(1, Relaxed);
                                transport_errors.fetch_add(1, Relaxed);
                                *slot = None;
                            }
                        }
                    }
                    if !alive {
                        break;
                    }
                    round += 1;
                }
                latencies.lock().unwrap().extend(local);
            });
        }
        std::thread::sleep(duration);
        stop.store(true, Relaxed);
    });
    let mut sorted = latencies.into_inner().unwrap();
    sorted.sort_unstable();
    let secs = duration.as_secs_f64();
    let statuses = statuses.into_inner().unwrap();
    let transport_errors = transport_errors.load(Relaxed);
    if !statuses.is_empty() || transport_errors > 0 {
        eprintln!(
            "[bench-serve] connections={target}: non-200 statuses {statuses:?}, \
             {transport_errors} transport failures"
        );
    }
    let held = conns.iter().flatten().count();
    let mut value = phase_json(&format!("connections={target}"), &tally, &sorted, secs);
    if let serde_json::Value::Object(map) = &mut value {
        map.insert("connections".into(), json!(target));
        map.insert("connected".into(), json!(connected));
        map.insert("held".into(), json!(held));
        map.insert("connect_failures".into(), json!(connect_failures));
        map.insert(
            "statuses".into(),
            json!(statuses
                .into_iter()
                .map(|(status, count)| (status.to_string(), count))
                .collect::<std::collections::BTreeMap<_, _>>()),
        );
        map.insert("transport_errors".into(), json!(transport_errors));
    }
    value
}

/// The `connections` axis: a fresh child server held at each rung of
/// the ladder. Rungs are clamped to the fd budget (best-effort raised
/// first) so the axis degrades gracefully on tight containers instead
/// of dying on EMFILE.
fn bench_connections_axis(args: &Args, smoke: bool) -> serde_json::Value {
    let want = (args.connections as u64).saturating_mul(2).saturating_add(2_048);
    let limit = comet_serve::sys::raise_nofile_limit(want);
    let cap = (limit.saturating_sub(1_024) as usize).max(64);
    let peak = args.connections.min(cap);
    if peak < args.connections {
        eprintln!(
            "[bench-serve] fd limit {limit} caps the connection ladder at {peak} \
             (asked for {})",
            args.connections
        );
    }
    let rungs: Vec<usize> =
        if smoke { vec![64, 256] } else { vec![(peak / 100).max(64), (peak / 10).max(64), peak] };
    // The ladder measures holding + serving N connections, not the
    // idle reaper: give the child an idle budget comfortably past the
    // connect storm plus the inter-sweep gap at the top rung.
    let child = spawn_child_server(
        args.model,
        args.config.workers,
        &[
            "--event-threads".into(),
            args.config.event_threads.max(1).to_string(),
            "--idle-timeout-ms".into(),
            "60000".into(),
        ],
    );
    let duration = Duration::from_secs(args.duration_secs.max(1));
    let mut axis = Vec::new();
    for &rung in &rungs {
        axis.push(connection_rung(child.addr, rung, duration));
    }
    child.drain();
    json!(axis)
}

/// The `shards` axis: for each fleet size, spawn that many `--shard
/// i/M` children, put an in-process router in front, and drive the
/// predict mix through it. Throughput per fleet size is the scaling
/// story; on a single-core container the curve is flat-ish, but the
/// axis proves the fleet path end to end.
fn bench_shards_axis(args: &Args, smoke: bool) -> serde_json::Value {
    let fleets: Vec<usize> = if smoke { vec![1, 2] } else { vec![1, 2, 4] };
    let duration = Duration::from_secs(args.duration_secs.max(1));
    let mut axis = Vec::new();
    for &fleet in &fleets {
        let children: Vec<ChildServer> = (0..fleet)
            .map(|i| {
                spawn_child_server(
                    args.model,
                    args.config.workers.max(2),
                    &["--shard".into(), format!("{i}/{fleet}")],
                )
            })
            .collect();
        let router = Router::start(RouterConfig {
            shards: children.iter().map(|c| c.addr.to_string()).collect(),
            ..RouterConfig::default()
        })
        .expect("router starts");
        let (tally, latencies) = run_phase(router.addr(), args.clients, duration, |client, i| {
            let block = BENCH_BLOCKS[(client + i as usize) % BENCH_BLOCKS.len()];
            post("/v1/predict", &json!({"v": 1, "block": block}).to_string())
        });
        router.shutdown();
        for child in children {
            child.drain();
        }
        let mut value =
            phase_json(&format!("shards={fleet}"), &tally, &latencies, duration.as_secs_f64());
        if let serde_json::Value::Object(map) = &mut value {
            map.insert("shards".into(), json!(fleet));
        }
        axis.push(value);
    }
    json!(axis)
}

/// Load and schema-gate a `--baseline` BENCH_serve.json. Returns its
/// `current` section. Refusal happens before any bench work so a bad
/// baseline fails in milliseconds, mirroring bench-report.
fn load_baseline(args: &Args) -> Option<serde_json::Value> {
    let path = args.baseline.as_ref()?;
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read baseline {path}: {e}");
        std::process::exit(1);
    });
    let loaded: serde_json::Value = serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("error: cannot parse baseline {path}: {e}");
        std::process::exit(1);
    });
    let schema = loaded.get("schema").and_then(serde_json::Value::as_u64).unwrap_or(0);
    if schema != SERVE_SCHEMA && !args.allow_schema_mismatch {
        eprintln!(
            "error: baseline {path} has schema {schema}, this report is schema {SERVE_SCHEMA}; \
             refusing to merge (rerun the baseline with this binary, or pass \
             --allow-schema-mismatch to compare across schemas anyway)"
        );
        std::process::exit(1);
    }
    Some(loaded.get("current").cloned().unwrap_or(loaded))
}

/// Throughput ratios current/baseline for the three request phases.
fn speedups(current: &serde_json::Value, baseline: &serde_json::Value) -> serde_json::Value {
    let mut out = std::collections::BTreeMap::new();
    for phase in ["predict", "explain", "store"] {
        let now = current.get(phase).and_then(|p| p.get("req_per_sec"));
        let then = baseline.get(phase).and_then(|p| p.get("req_per_sec"));
        if let (Some(now), Some(then)) =
            (now.and_then(serde_json::Value::as_f64), then.and_then(serde_json::Value::as_f64))
        {
            if then > 0.0 {
                out.insert(format!("{phase}_req_per_sec"), json!(now / then));
            }
        }
    }
    serde_json::Value::Object(out)
}

/// Blocks a bench store covers. Small so the pre-phase build stays in
/// the low seconds; plenty for hammering the lookup path.
const BENCH_STORE_BLOCKS: usize = 32;

/// Make sure the bench run has a store to hit: use `--store` if given,
/// otherwise build a fresh mini-store (model-matched, seed 0, default
/// ε — the same parameters the explain requests will carry).
fn ensure_bench_store(args: &mut Args) -> std::path::PathBuf {
    if let Some(path) = &args.config.store_path {
        return std::path::PathBuf::from(path);
    }
    let out = std::env::temp_dir().join(format!("comet-bench-store-{}.comets", std::process::id()));
    let cfg = comet_store::BuildConfig {
        model: comet_store::BuildModel::parse(args.model.label())
            .expect("serve model kinds are buildable"),
        blocks: BENCH_STORE_BLOCKS,
        ..comet_store::BuildConfig::default()
    };
    eprintln!("[bench-serve] building {BENCH_STORE_BLOCKS}-block bench store…");
    let report = comet_store::build_store(&out, &cfg).unwrap_or_else(|e| {
        eprintln!("error: cannot build bench store: {e}");
        std::process::exit(1);
    });
    eprintln!("[bench-serve] bench store ready ({} records)", report.records);
    args.config.store_path = Some(out.display().to_string());
    out
}

fn bench_client(mut args: Args) {
    // Validate the baseline before spending minutes on load phases.
    let baseline = load_baseline(&args);
    let store_path = ensure_bench_store(&mut args);
    let store = comet_store::ExplanationStore::open(&store_path).unwrap_or_else(|e| {
        eprintln!("error: cannot open bench store: {e}");
        std::process::exit(1);
    });
    // Guaranteed-hit request parameters, straight from the store file.
    let store_texts: Vec<String> = store.iter_texts().map(str::to_string).collect();
    let store_epsilon = store.provenance().epsilon();
    let store_seed = store.provenance().seed;

    let server = Server::start(args.model, args.config.clone()).unwrap_or_else(|e| {
        eprintln!("error: cannot start loopback server: {e}");
        std::process::exit(1);
    });
    let addr = server.addr();
    let duration = Duration::from_secs(args.duration_secs.max(1));
    eprintln!(
        "[bench-serve] loopback server on {addr}, {} clients, {}s per phase",
        args.clients, args.duration_secs
    );

    // Phase 1: predict throughput — unique-ish and repeated blocks mixed.
    let (predict_tally, predict_lat) = run_phase(addr, args.clients, duration, |client, i| {
        let block = BENCH_BLOCKS[(client + i as usize) % BENCH_BLOCKS.len()];
        post("/v1/predict", &json!({"v": 1, "block": block}).to_string())
    });

    // Phase 2: explain throughput with heavy coalescing pressure — all
    // clients cycle the same (block, seed) pairs concurrently. The
    // bench blocks are not in the generated store corpus, so these
    // requests exercise the miss-then-live path.
    let (explain_tally, explain_lat) = run_phase(addr, args.clients, duration, |_client, i| {
        let block = BENCH_BLOCKS[(i % 2) as usize];
        post("/v1/explain", &json!({"v": 1, "block": block, "seed": i % 2}).to_string())
    });

    // Phase 3: store-hit lookups — every request carries the store's
    // exact (ε, seed) and a block text read from the store file, so
    // each is answered from the precomputed store without a search.
    let (store_tally, store_lat) = run_phase(addr, args.clients, duration, |client, i| {
        let block = &store_texts[(client + i as usize) % store_texts.len()];
        post(
            "/v1/explain",
            &json!({"v": 1, "block": block, "epsilon": store_epsilon, "seed": store_seed})
                .to_string(),
        )
    });

    let ctx = Arc::clone(server.ctx());
    server.shutdown();

    // Scaling axes run against child server processes (fd budget: the
    // c10k rung needs ~N fds on both sides of the loopback).
    let smoke = args.duration_secs <= 2;
    eprintln!("[bench-serve] connection ladder (target {})…", args.connections);
    let connections_axis = bench_connections_axis(&args, smoke);
    eprintln!("[bench-serve] shard fleet scaling…");
    let shards_axis = bench_shards_axis(&args, smoke);

    let stats = ctx.cache_stats();
    let metrics = ctx.metrics();
    let secs = duration.as_secs_f64();
    // The speedup claim compares server-side handler latencies: the
    // store-hit histogram (lookup + response) against the live explain
    // phase's client p50 (which is what BENCH_serve.json has always
    // reported for explains). A store hit is a binary search over the
    // file bytes — microseconds against the search's milliseconds.
    let live_p50_us = percentile(&explain_lat, 0.5) as f64;
    let hit_p50_us = metrics.store_hit_latency().quantile_us(0.5);
    let hit_p99_us = metrics.store_hit_latency().quantile_us(0.99);
    let mut store_axis = phase_json("store", &store_tally, &store_lat, secs);
    if let serde_json::Value::Object(map) = &mut store_axis {
        map.insert("records".into(), json!(store_texts.len()));
        map.insert("hits".into(), json!(metrics.store_hit_count()));
        map.insert("misses".into(), json!(metrics.store_miss_count()));
        map.insert("hit_p50_us".into(), json!(hit_p50_us));
        map.insert("hit_p99_us".into(), json!(hit_p99_us));
        map.insert("live_p50_us".into(), json!(live_p50_us));
        map.insert(
            "speedup_p50".into(),
            json!(if hit_p50_us > 0.0 { live_p50_us / hit_p50_us } else { 0.0 }),
        );
    }
    eprintln!(
        "[bench-serve] store: hit p50 {hit_p50_us:.1}µs vs live p50 {live_p50_us:.0}µs \
         ({:.0}× speedup)",
        if hit_p50_us > 0.0 { live_p50_us / hit_p50_us } else { 0.0 }
    );
    let mut report = json!({
        "schema": SERVE_SCHEMA,
        "mode": if smoke { "smoke" } else { "full" },
        "current": {
            "predict": phase_json("predict", &predict_tally, &predict_lat, secs),
            "explain": phase_json("explain", &explain_tally, &explain_lat, secs),
            "store": store_axis,
            "connections": connections_axis,
            "shards": shards_axis,
            "server": {
                "workers": args.config.workers,
                "queue_depth": args.config.queue_depth,
                "event_threads": args.config.event_threads,
                "batch": args.config.batch,
                "search_pool": args.config.search_pool,
                "shed_total": metrics.shed_count(),
                "explain_searches": metrics.search_count(),
                "explain_coalesced": metrics.coalesced_count(),
                "queries_batched": metrics.queries_batched_total(),
                "explain_batch_occupancy": metrics.batch_occupancy(
                    comet_serve::Endpoint::Explain
                ),
                "cache_hit_rate": stats.hit_rate(),
                "cache_entries": stats.entries,
            },
        },
    });
    if let Some(baseline) = baseline {
        let speedup = speedups(&report["current"], &baseline);
        if let serde_json::Value::Object(map) = &mut report {
            map.insert("baseline".into(), baseline);
            map.insert("speedup".into(), speedup);
        }
    }
    let text = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&args.out, &text).unwrap_or_else(|e| panic!("cannot write {}: {e}", args.out));
    eprintln!("[bench-serve] wrote {}", args.out);
}
