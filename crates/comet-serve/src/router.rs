//! comet-router: the thin front door of a sharded serving fleet.
//!
//! A router process owns no models and runs no searches — it parses
//! just enough of each request to compute the block's routing key
//! ([`crate::route::block_key`]), picks the owning shard on the same
//! consistent-hash ring the shards themselves enforce, and proxies the
//! request over a pooled keep-alive connection. Fleet-wide views are
//! synthesized by fan-out:
//!
//! * `GET /metrics` fetches every shard's Prometheus text and sums
//!   samples with identical name+labels, prepending a
//!   `comet_shard_up{shard="i"}` gauge per upstream and the router's
//!   own counters.
//! * `GET /readyz` is ready only when every shard is; the body embeds
//!   each shard's own readiness verbatim so a degraded slice is
//!   attributable.
//! * `POST /admin/model` broadcasts the swap request to every shard
//!   (each shard stages/validates independently against its own
//!   registry); `GET /admin/model` and `GET /analytics/*` go to the
//!   first healthy shard.
//!
//! Failure containment is per-slice: a dead shard costs its key range
//! (those requests get an attributable 503 naming the shard) while the
//! rest of the fleet keeps serving. A failed upstream is marked down
//! for a cooldown so the router does not melt reconnecting to a corpse
//! on every request.
//!
//! The router reuses the epoll front end ([`crate::event`]) for its
//! client side; upstream calls are plain blocking I/O on the worker
//! threads, bounded by `upstream_timeout`.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::event::{FrontEnd, FrontEndConfig, Service, WorkerHandler};
use crate::http::{write_response, HttpError, Request};
use crate::route::Ring;
use crate::wire::ErrorResponse;
use comet_core::cancel::CancelToken;

/// Router tunables.
#[derive(Clone)]
pub struct RouterConfig {
    /// Bind address (`host:port`, port 0 for ephemeral).
    pub addr: String,
    /// Upstream shard addresses; position is the shard index, length
    /// is the fleet size the ring is built for.
    pub shards: Vec<String>,
    /// Reactor threads for the client side.
    pub event_threads: usize,
    /// Worker threads doing upstream I/O.
    pub workers: usize,
    /// Bounded queue depth between reactors and workers.
    pub queue_depth: usize,
    /// Client-side idle / slow-loris budget, ms (0 disables).
    pub idle_timeout_ms: u64,
    /// Per-upstream-call connect/read/write budget, ms.
    pub upstream_timeout_ms: u64,
    /// How long a failed upstream stays marked down before the router
    /// retries it, ms.
    pub down_cooldown_ms: u64,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            addr: "127.0.0.1:0".into(),
            shards: Vec::new(),
            event_threads: 1,
            workers: 4,
            queue_depth: 256,
            idle_timeout_ms: 10_000,
            upstream_timeout_ms: 5_000,
            down_cooldown_ms: 1_000,
        }
    }
}

/// Cap on pooled keep-alive connections per upstream. Anything past
/// the worker count is dead weight.
const POOL_CAP: usize = 8;

/// One upstream shard: its address, a small keep-alive connection
/// pool, and a down-until mark set on connect failure.
struct Upstream {
    addr: String,
    pool: Mutex<Vec<TcpStream>>,
    /// `0` = up; otherwise µs since `ctx.epoch` until which the shard
    /// is considered down (stored as a scalar so readers never lock).
    down_until_us: AtomicU64,
}

/// A parsed upstream response, ready to re-frame for the client.
struct UpstreamResponse {
    status: u16,
    content_type: String,
    body: Vec<u8>,
    /// The upstream asked us not to reuse the connection.
    close: bool,
}

/// Why an upstream call produced no response.
enum UpstreamError {
    /// In cooldown from an earlier failure; not retried.
    Down,
    /// Connect/read/write failed now (marks the shard down).
    Io,
}

struct RouterCtx {
    ring: Ring,
    upstreams: Vec<Upstream>,
    cancel: CancelToken,
    epoch: Instant,
    upstream_timeout: Duration,
    down_cooldown: Duration,
    /// Requests the router proxied (any endpoint, any outcome).
    requests: AtomicU64,
    /// Upstream calls that failed (connect or mid-call I/O).
    upstream_errors: AtomicU64,
    /// Open client connections (gauge from the front end).
    connections: AtomicU64,
}

impl RouterCtx {
    fn shard_up(&self, index: usize) -> bool {
        let until = self.upstreams[index].down_until_us.load(Relaxed);
        until == 0 || self.epoch.elapsed().as_micros() as u64 >= until
    }

    fn mark_down(&self, index: usize) {
        self.upstream_errors.fetch_add(1, Relaxed);
        let until = (self.epoch.elapsed() + self.down_cooldown).as_micros() as u64;
        self.upstreams[index].down_until_us.store(until.max(1), Relaxed);
        // A dead shard's pooled sockets are dead too.
        self.upstreams[index].pool.lock().unwrap_or_else(|p| p.into_inner()).clear();
    }

    fn mark_up(&self, index: usize) {
        self.upstreams[index].down_until_us.store(0, Relaxed);
    }

    /// One proxied call to shard `index`. Tries a pooled connection
    /// first (retrying once on a fresh socket if the pooled one turns
    /// out stale), then a fresh connect; a fresh-connect or
    /// fresh-socket I/O failure marks the shard down.
    fn call(
        &self,
        index: usize,
        method: &str,
        path: &str,
        body: &[u8],
        deadline_ms: Option<u64>,
    ) -> Result<UpstreamResponse, UpstreamError> {
        if !self.shard_up(index) {
            return Err(UpstreamError::Down);
        }
        let pooled = self.upstreams[index].pool.lock().unwrap_or_else(|p| p.into_inner()).pop();
        if let Some(stream) = pooled {
            // A pooled socket may have been closed by the shard's idle
            // reaper between requests — a failure here says nothing
            // about shard health, so retry on a fresh connection.
            if let Ok(response) = self.call_on(stream, index, method, path, body, deadline_ms) {
                return Ok(response);
            }
        }
        let stream = TcpStream::connect_timeout(
            &resolve(&self.upstreams[index].addr).ok_or(UpstreamError::Io).inspect_err(|_| {
                self.mark_down(index);
            })?,
            self.upstream_timeout,
        )
        .map_err(|_| {
            self.mark_down(index);
            UpstreamError::Io
        })?;
        self.call_on(stream, index, method, path, body, deadline_ms).map_err(|_| {
            self.mark_down(index);
            UpstreamError::Io
        })
    }

    fn call_on(
        &self,
        mut stream: TcpStream,
        index: usize,
        method: &str,
        path: &str,
        body: &[u8],
        deadline_ms: Option<u64>,
    ) -> io::Result<UpstreamResponse> {
        stream.set_read_timeout(Some(self.upstream_timeout))?;
        stream.set_write_timeout(Some(self.upstream_timeout))?;
        stream.set_nodelay(true)?;
        let deadline_header = match deadline_ms {
            Some(ms) => format!("X-Comet-Deadline-Ms: {ms}\r\n"),
            None => String::new(),
        };
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nHost: comet-router\r\nContent-Length: {}\r\n\
             {deadline_header}Connection: keep-alive\r\n\r\n",
            body.len()
        )?;
        stream.write_all(body)?;
        stream.flush()?;
        let response = read_upstream_response(&mut stream)?;
        self.mark_up(index);
        if !response.close {
            let mut pool = self.upstreams[index].pool.lock().unwrap_or_else(|p| p.into_inner());
            if pool.len() < POOL_CAP {
                pool.push(stream);
            }
        }
        Ok(response)
    }

    /// The first shard that answers — for endpoints where every shard
    /// gives the same view (`GET /admin/model`, `/analytics/*`).
    fn call_any(&self, method: &str, path: &str, body: &[u8]) -> Option<(usize, UpstreamResponse)> {
        for index in 0..self.upstreams.len() {
            if let Ok(response) = self.call(index, method, path, body, None) {
                return Some((index, response));
            }
        }
        None
    }
}

/// Resolve `host:port` to one address (first result wins).
fn resolve(addr: &str) -> Option<SocketAddr> {
    use std::net::ToSocketAddrs;
    addr.to_socket_addrs().ok()?.next()
}

/// Parse one HTTP/1.1 response off an upstream socket: status line,
/// the three headers the fleet emits (`Content-Type`,
/// `Content-Length`, `Connection`), then exactly `Content-Length`
/// body bytes.
fn read_upstream_response(stream: &mut TcpStream) -> io::Result<UpstreamResponse> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let status: u16 =
        line.split_whitespace().nth(1).and_then(|s| s.parse().ok()).ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, "bad upstream status line")
        })?;
    let mut content_type = String::from("application/json");
    let mut content_length = 0usize;
    let mut close = false;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "upstream EOF in headers"));
        }
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        let Some((name, value)) = trimmed.split_once(':') else { continue };
        let value = value.trim();
        match name.to_ascii_lowercase().as_str() {
            "content-type" => content_type = value.to_string(),
            "content-length" => {
                content_length = value.parse().map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "bad upstream content-length")
                })?
            }
            "connection" => close = value.eq_ignore_ascii_case("close"),
            _ => {}
        }
    }
    // 64 MiB guard: an upstream speaking our own wire format never
    // approaches this; anything bigger is a framing bug.
    if content_length > 64 << 20 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "upstream body too large"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(UpstreamResponse { status, content_type, body, close })
}

// ---------------------------------------------------------------------------
// Service implementation over the epoll front end.
// ---------------------------------------------------------------------------

struct RouterService {
    ctx: Arc<RouterCtx>,
}

fn respond_error(out: &mut Vec<u8>, status: u16, error: &str, close: bool) {
    let body = serde_json::to_vec(&ErrorResponse::new(error)).expect("error serializes");
    write_response(out, status, "application/json", &body, close).expect("vec write");
}

impl Service for RouterService {
    fn make_worker(&self) -> Box<dyn WorkerHandler> {
        Box::new(RouterWorker { ctx: Arc::clone(&self.ctx) })
    }

    fn admit(&self, _queued: usize) -> Result<(), Vec<u8>> {
        // The bounded queue is the router's only backstop; real
        // admission control lives on the shards, which see the actual
        // compute cost.
        Ok(())
    }

    fn shed_overflow(&self) -> Vec<u8> {
        let mut out = Vec::new();
        respond_error(&mut out, 503, "router overloaded", true);
        out
    }

    fn enqueued(&self, _depth: usize) {}

    fn dequeued(&self, _sojourn_us: u64, _depth: usize) {}

    fn finished(&self, _panicked: bool) {}

    fn http_error(&self, err: &HttpError) -> Option<Vec<u8>> {
        let (status, reason) = match err {
            HttpError::Closed | HttpError::Io(_) => return None,
            HttpError::Malformed(reason) => (400, *reason),
            HttpError::Timeout => (408, "request read timed out"),
            HttpError::TooLarge { status, reason } => (*status, *reason),
        };
        let mut out = Vec::new();
        respond_error(&mut out, status, reason, true);
        Some(out)
    }

    fn chaos_panics(&self, _conn_index: u64) -> bool {
        false
    }

    fn on_chaos_panic(&self) {}

    fn cancel(&self) -> &CancelToken {
        &self.ctx.cancel
    }

    fn set_connections(&self, open: u64) {
        self.ctx.connections.store(open, Relaxed);
    }
}

struct RouterWorker {
    ctx: Arc<RouterCtx>,
}

impl WorkerHandler for RouterWorker {
    fn handle(&mut self, request: &Request, close: bool) -> Vec<u8> {
        self.ctx.requests.fetch_add(1, Relaxed);
        let mut out = Vec::new();
        dispatch(&self.ctx, &mut out, request, close);
        out
    }
}

fn dispatch(ctx: &RouterCtx, out: &mut Vec<u8>, request: &Request, close: bool) {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/predict" | "/v1/explain") => route_block(ctx, out, request, close),
        ("GET", "/healthz") => {
            let body = serde_json::json!({
                "v": 1, "ok": true, "router": true, "shards": ctx.upstreams.len(),
            });
            respond_json(out, 200, &body, close);
        }
        ("GET", "/readyz") => aggregate_readyz(ctx, out, request, close),
        ("GET", "/metrics") => aggregate_metrics(ctx, out, close),
        ("POST", "/admin/model") => broadcast_admin(ctx, out, request, close),
        ("GET", "/admin/model") | ("GET", "/analytics/categories" | "/analytics/opcodes") => {
            forward_any(ctx, out, request, close)
        }
        (
            _,
            "/v1/predict"
            | "/v1/explain"
            | "/admin/model"
            | "/healthz"
            | "/readyz"
            | "/metrics"
            | "/analytics/categories"
            | "/analytics/opcodes",
        ) => {
            respond_error(out, 400, "method not allowed", close);
        }
        _ => respond_error(out, 404, "no such endpoint", close),
    }
}

fn respond_json(out: &mut Vec<u8>, status: u16, body: &serde_json::Value, close: bool) {
    let bytes = serde_json::to_vec(body).expect("body serializes");
    write_response(out, status, "application/json", &bytes, close).expect("vec write");
}

/// Proxy a predict/explain to the shard owning its block key. Bodies
/// that do not parse as JSON-with-a-`"block"`-string still route
/// deterministically (to the owner of the empty key) so their 400
/// always comes from the same shard.
fn route_block(ctx: &RouterCtx, out: &mut Vec<u8>, request: &Request, close: bool) {
    let block = std::str::from_utf8(&request.body)
        .ok()
        .and_then(|text| serde_json::from_str::<serde_json::Value>(text).ok())
        .and_then(|v| v.get("block").and_then(|b| b.as_str()).map(str::to_string))
        .unwrap_or_default();
    let shard = ctx.ring.owner_of_block(&block) as usize;
    match ctx.call(shard, &request.method, &request.path, &request.body, request.deadline_ms) {
        Ok(response) => forward(out, &response, close),
        Err(_) => {
            respond_error(out, 503, &format!("shard {shard} unavailable"), close);
        }
    }
}

/// Re-frame an upstream response for the client. The body is copied
/// bitwise; only the framing headers (length, connection) are ours.
fn forward(out: &mut Vec<u8>, response: &UpstreamResponse, close: bool) {
    write_response(out, response.status, &response.content_type, &response.body, close)
        .expect("vec write");
}

fn forward_any(ctx: &RouterCtx, out: &mut Vec<u8>, request: &Request, close: bool) {
    match ctx.call_any(&request.method, &request.path, &request.body) {
        Some((_, response)) => forward(out, &response, close),
        None => respond_error(out, 503, "no shard available", close),
    }
}

/// Fleet readiness: ready only when every shard answers 200. The body
/// carries each shard's own `/readyz` JSON verbatim under `detail`, so
/// `jq` can say exactly which slice is degraded and why.
fn aggregate_readyz(ctx: &RouterCtx, out: &mut Vec<u8>, request: &Request, close: bool) {
    let mut all_ready = true;
    let mut shards = Vec::new();
    for index in 0..ctx.upstreams.len() {
        match ctx.call(index, "GET", "/readyz", b"", request.deadline_ms) {
            Ok(response) => {
                let ready = response.status == 200;
                all_ready &= ready;
                let detail: serde_json::Value = std::str::from_utf8(&response.body)
                    .ok()
                    .and_then(|text| serde_json::from_str(text).ok())
                    .unwrap_or(serde_json::Value::Null);
                shards.push(serde_json::json!({
                    "index": index, "up": true, "ready": ready, "detail": detail,
                }));
            }
            Err(_) => {
                all_ready = false;
                shards.push(serde_json::json!({
                    "index": index, "up": false, "ready": false,
                    "detail": serde_json::Value::Null,
                }));
            }
        }
    }
    let body = serde_json::json!({ "v": 1, "ready": all_ready, "router": true, "shards": shards });
    respond_json(out, if all_ready { 200 } else { 503 }, &body, close);
}

/// Fleet metrics: per-shard up gauges, the router's own counters, then
/// every shard sample summed by identical `name{labels}` key in
/// first-seen order. Counters and histogram buckets sum correctly by
/// construction; gauges sum into fleet totals (queue depth,
/// connections), which is the useful fleet view.
fn aggregate_metrics(ctx: &RouterCtx, out: &mut Vec<u8>, close: bool) {
    let mut order: Vec<String> = Vec::new();
    let mut sums: std::collections::HashMap<String, f64> = std::collections::HashMap::new();
    let mut up = Vec::new();
    for index in 0..ctx.upstreams.len() {
        match ctx.call(index, "GET", "/metrics", b"", None) {
            Ok(response) => {
                up.push(true);
                for line in String::from_utf8_lossy(&response.body).lines() {
                    let line = line.trim();
                    if line.is_empty() || line.starts_with('#') {
                        continue;
                    }
                    let Some((key, value)) = line.rsplit_once(' ') else { continue };
                    let Ok(value) = value.parse::<f64>() else { continue };
                    // Per-shard identity gauges must not sum into a
                    // meaningless fleet total.
                    if key.starts_with("comet_shard{") {
                        continue;
                    }
                    sums.entry(key.to_string()).and_modify(|total| *total += value).or_insert_with(
                        || {
                            order.push(key.to_string());
                            value
                        },
                    );
                }
            }
            Err(_) => up.push(false),
        }
    }
    let mut text = String::new();
    text.push_str(&format!("# comet-router aggregation over {} shard(s)\n", ctx.upstreams.len()));
    for (index, ok) in up.iter().enumerate() {
        text.push_str(&format!(
            "comet_shard_up{{shard=\"{index}\"}} {}\n",
            if *ok { 1 } else { 0 }
        ));
    }
    text.push_str(&format!("comet_router_requests_total {}\n", ctx.requests.load(Relaxed)));
    text.push_str(&format!(
        "comet_router_upstream_errors_total {}\n",
        ctx.upstream_errors.load(Relaxed)
    ));
    text.push_str(&format!("comet_router_connections {}\n", ctx.connections.load(Relaxed)));
    for key in &order {
        text.push_str(&format!("{key} {}\n", sums[key]));
    }
    write_response(out, 200, "text/plain; version=0.0.4", text.as_bytes(), close)
        .expect("vec write");
}

/// Broadcast an admin model swap to every shard. 200 only when every
/// shard accepted; the body carries each shard's status and response
/// so partial rollouts are visible.
fn broadcast_admin(ctx: &RouterCtx, out: &mut Vec<u8>, request: &Request, close: bool) {
    let mut all_ok = true;
    let mut shards = Vec::new();
    for index in 0..ctx.upstreams.len() {
        match ctx.call(index, "POST", "/admin/model", &request.body, request.deadline_ms) {
            Ok(response) => {
                all_ok &= response.status == 200;
                let detail: serde_json::Value = std::str::from_utf8(&response.body)
                    .ok()
                    .and_then(|text| serde_json::from_str(text).ok())
                    .unwrap_or(serde_json::Value::Null);
                shards.push(serde_json::json!({
                    "index": index, "up": true, "status": response.status, "response": detail,
                }));
            }
            Err(_) => {
                all_ok = false;
                shards.push(serde_json::json!({
                    "index": index, "up": false, "status": 503,
                    "response": serde_json::Value::Null,
                }));
            }
        }
    }
    let body = serde_json::json!({ "v": 1, "ok": all_ok, "shards": shards });
    respond_json(out, if all_ok { 200 } else { 502 }, &body, close);
}

// ---------------------------------------------------------------------------
// The running router.
// ---------------------------------------------------------------------------

/// A running comet-router: epoll front end on the client side, pooled
/// blocking proxies to the fleet on the worker side.
pub struct Router {
    ctx: Arc<RouterCtx>,
    addr: SocketAddr,
    front: Option<FrontEnd>,
}

impl Router {
    /// Bind and start routing to `config.shards`.
    pub fn start(config: RouterConfig) -> io::Result<Router> {
        if config.shards.is_empty() {
            return Err(io::Error::new(io::ErrorKind::InvalidInput, "no shard addresses"));
        }
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let ctx = Arc::new(RouterCtx {
            ring: Ring::new(config.shards.len() as u32),
            upstreams: config
                .shards
                .iter()
                .map(|addr| Upstream {
                    addr: addr.clone(),
                    pool: Mutex::new(Vec::new()),
                    down_until_us: AtomicU64::new(0),
                })
                .collect(),
            cancel: CancelToken::new(),
            epoch: Instant::now(),
            upstream_timeout: Duration::from_millis(config.upstream_timeout_ms.max(1)),
            down_cooldown: Duration::from_millis(config.down_cooldown_ms),
            requests: AtomicU64::new(0),
            upstream_errors: AtomicU64::new(0),
            connections: AtomicU64::new(0),
        });
        let service = Arc::new(RouterService { ctx: Arc::clone(&ctx) });
        let front = FrontEnd::start(
            listener,
            service,
            FrontEndConfig {
                event_threads: config.event_threads.max(1),
                workers: config.workers.max(1),
                queue_depth: config.queue_depth.max(1),
                idle_timeout: Duration::from_millis(config.idle_timeout_ms),
            },
        )?;
        Ok(Router { ctx, addr, front: Some(front) })
    }

    /// The bound client-side address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The drain token (cancel to begin a graceful drain).
    pub fn cancel_token(&self) -> &CancelToken {
        &self.ctx.cancel
    }

    /// Address of shard `index`'s upstream, as configured.
    pub fn shard_addr(&self, index: usize) -> &str {
        &self.ctx.upstreams[index].addr
    }

    /// Which shard owns `text`'s block (the router's routing decision,
    /// exposed for tests and ops tooling).
    pub fn owner_of_block(&self, text: &str) -> u32 {
        self.ctx.ring.owner_of_block(text)
    }

    /// Block until drained (after `cancel_token().cancel()`).
    pub fn join(mut self) {
        if let Some(front) = self.front.take() {
            front.join();
        }
    }

    /// Cancel and join.
    pub fn shutdown(self) {
        self.ctx.cancel.cancel();
        self.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upstream_response_parser_round_trips() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let (mut peer, _) = listener.accept().unwrap();
            let mut sink = Vec::new();
            write_response(&mut sink, 200, "application/json", b"{\"v\":1}", false).unwrap();
            peer.write_all(&sink).unwrap();
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        let response = read_upstream_response(&mut stream).unwrap();
        writer.join().unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.content_type, "application/json");
        assert_eq!(response.body, b"{\"v\":1}");
        assert!(!response.close);
    }

    #[test]
    fn start_requires_shards() {
        match Router::start(RouterConfig::default()) {
            Err(e) => assert_eq!(e.kind(), io::ErrorKind::InvalidInput),
            Ok(_) => panic!("a shardless router must refuse to start"),
        }
    }

    #[test]
    fn down_marking_has_a_cooldown() {
        let ctx = RouterCtx {
            ring: Ring::new(1),
            upstreams: vec![Upstream {
                addr: "127.0.0.1:1".into(),
                pool: Mutex::new(Vec::new()),
                down_until_us: AtomicU64::new(0),
            }],
            cancel: CancelToken::new(),
            epoch: Instant::now(),
            upstream_timeout: Duration::from_millis(100),
            down_cooldown: Duration::from_millis(50),
            requests: AtomicU64::new(0),
            upstream_errors: AtomicU64::new(0),
            connections: AtomicU64::new(0),
        };
        assert!(ctx.shard_up(0));
        ctx.mark_down(0);
        assert!(!ctx.shard_up(0), "a freshly failed shard is down");
        std::thread::sleep(Duration::from_millis(60));
        assert!(ctx.shard_up(0), "the cooldown expires");
        ctx.mark_down(0);
        ctx.mark_up(0);
        assert!(ctx.shard_up(0), "a successful call clears the mark");
    }
}
