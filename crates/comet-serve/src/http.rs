//! A deliberately minimal HTTP/1.1 subset over `std::net` — just
//! enough protocol for `comet-serve`'s endpoints: request line +
//! headers + `Content-Length` bodies in, fixed-status responses with
//! JSON or text bodies out, sequential keep-alive (no pipelining, no
//! chunked encoding, no TLS).
//!
//! Parsing is hardened against abuse rather than feature-complete:
//! request lines, header blocks, and bodies all have hard size caps
//! (oversized input is a typed [`HttpError::TooLarge`], answered with
//! 431/413 and a close, never a torn socket), a truncated body is a
//! clean 400, and a request that arrives byte-by-byte (slow loris) is
//! cut off by a wall-clock budget that starts at its first byte and
//! surfaces as [`HttpError::Timeout`] → 408. Idle keep-alive
//! connections that send nothing still close silently, as clients
//! expect.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Longest accepted request line or header line, bytes.
const MAX_LINE: usize = 8 * 1024;
/// Most accepted header lines per request.
const MAX_HEADERS: usize = 64;
/// Largest accepted request body, bytes (basic blocks are tiny; 1 MiB
/// is already generous).
pub const MAX_BODY: usize = 1024 * 1024;

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed the connection before sending a request line
    /// (normal end of a keep-alive session).
    Closed,
    /// Socket-level failure, or a timeout before any request byte
    /// arrived (idle keep-alive reclaim — closed silently).
    Io(std::io::Error),
    /// The bytes on the wire are not the HTTP subset we accept.
    Malformed(&'static str),
    /// The peer started a request but did not finish it within the
    /// read budget (slow loris / stalled sender). Answered with 408.
    Timeout,
    /// A size cap was exceeded; `status` is 431 (request line /
    /// headers) or 413 (body).
    TooLarge {
        /// The HTTP status to answer with (413 or 431).
        status: u16,
        /// Which cap was hit.
        reason: &'static str,
    },
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> HttpError {
        HttpError::Io(e)
    }
}

/// Whether an I/O error is a read-timeout expiry (both kinds occur
/// depending on platform).
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method, e.g. `GET`.
    pub method: String,
    /// Request target as sent (no query-string splitting; the API has
    /// none).
    pub path: String,
    /// Body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// `Connection: close` was requested.
    pub close: bool,
    /// Parsed `x-comet-deadline-ms` header, when present and numeric.
    pub deadline_ms: Option<u64>,
}

/// Tracks the wall-clock budget for reading one request. Armed by the
/// first byte (so idle keep-alive waits are not billed) and consulted
/// between reads; a peer dribbling bytes cannot hold a worker past
/// `budget` plus one socket read-timeout.
struct ReadBudget {
    deadline: Option<Instant>,
    budget: Duration,
}

impl ReadBudget {
    fn new(budget: Duration) -> ReadBudget {
        ReadBudget { deadline: None, budget }
    }

    /// First request byte seen: start the clock (once).
    fn arm(&mut self) {
        if self.deadline.is_none() && !self.budget.is_zero() {
            self.deadline = Some(Instant::now() + self.budget);
        }
    }

    fn armed(&self) -> bool {
        self.deadline.is_some()
    }

    fn check(&self) -> Result<(), HttpError> {
        match self.deadline {
            Some(deadline) if Instant::now() >= deadline => Err(HttpError::Timeout),
            _ => Ok(()),
        }
    }
}

/// Read one line (CRLF or bare LF terminated) with a length cap and
/// the request's read budget.
fn read_line(
    reader: &mut BufReader<&TcpStream>,
    budget: &mut ReadBudget,
) -> Result<String, HttpError> {
    let mut line = Vec::new();
    loop {
        budget.check()?;
        let buf = match reader.fill_buf() {
            Ok(buf) => buf,
            // A socket read-timeout mid-request is the same stalled
            // sender the budget exists for; before any byte it is just
            // an idle keep-alive connection.
            Err(e) if is_timeout(&e) && (budget.armed() || !line.is_empty()) => {
                return Err(HttpError::Timeout)
            }
            Err(e) => return Err(HttpError::Io(e)),
        };
        if buf.is_empty() {
            if line.is_empty() && !budget.armed() {
                return Err(HttpError::Closed);
            }
            return Err(HttpError::Malformed("eof inside request"));
        }
        budget.arm();
        let newline = buf.iter().position(|&b| b == b'\n');
        let take = newline.map_or(buf.len(), |p| p + 1);
        line.extend_from_slice(&buf[..take]);
        reader.consume(take);
        if line.len() > MAX_LINE {
            return Err(HttpError::TooLarge { status: 431, reason: "line too long" });
        }
        if newline.is_some() {
            while matches!(line.last(), Some(b'\n') | Some(b'\r')) {
                line.pop();
            }
            return String::from_utf8(line).map_err(|_| HttpError::Malformed("non-utf8 line"));
        }
    }
}

/// Read and parse one request from a buffered connection. Blocks until
/// a full request arrives, the peer closes, the stream's read timeout
/// fires, or — once the first byte has arrived — `read_budget` is
/// exhausted (`Duration::ZERO` disables the budget).
pub fn read_request(
    reader: &mut BufReader<&TcpStream>,
    read_budget: Duration,
) -> Result<Request, HttpError> {
    let mut budget = ReadBudget::new(read_budget);
    let request_line = read_line(reader, &mut budget)?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or(HttpError::Malformed("empty request line"))?.to_string();
    let path = parts.next().ok_or(HttpError::Malformed("missing request target"))?.to_string();
    let version = parts.next().ok_or(HttpError::Malformed("missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("unsupported protocol version"));
    }

    let mut content_length = 0usize;
    let mut close = version == "HTTP/1.0";
    let mut deadline_ms = None;
    for _ in 0..MAX_HEADERS {
        let line = match read_line(reader, &mut budget) {
            Ok(line) => line,
            Err(HttpError::Closed) => return Err(HttpError::Malformed("eof inside headers")),
            Err(e) => return Err(e),
        };
        if line.is_empty() {
            let body = read_body(reader, content_length, &budget)?;
            return Ok(Request { method, path, body, close, deadline_ms });
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed("header without colon"));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length =
                value.parse().map_err(|_| HttpError::Malformed("bad content-length"))?;
            if content_length > MAX_BODY {
                return Err(HttpError::TooLarge { status: 413, reason: "body too large" });
            }
        } else if name.eq_ignore_ascii_case("connection") {
            close = value.eq_ignore_ascii_case("close");
        } else if name.eq_ignore_ascii_case("x-comet-deadline-ms") {
            deadline_ms = value.parse().ok();
        }
    }
    Err(HttpError::TooLarge { status: 431, reason: "too many headers" })
}

/// Read exactly `content_length` body bytes under the request budget.
/// EOF mid-body is a truncated request (400), not a torn socket.
fn read_body(
    reader: &mut BufReader<&TcpStream>,
    content_length: usize,
    budget: &ReadBudget,
) -> Result<Vec<u8>, HttpError> {
    let mut body = vec![0u8; content_length];
    let mut filled = 0usize;
    while filled < content_length {
        budget.check()?;
        match reader.read(&mut body[filled..]) {
            Ok(0) => return Err(HttpError::Malformed("truncated body")),
            Ok(n) => filled += n,
            Err(e) if is_timeout(&e) => return Err(HttpError::Timeout),
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
    Ok(body)
}

/// Reason phrases for the statuses the service emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write a complete response. `close` adds `Connection: close` so
/// clients know the server will not read another request.
pub fn write_response(
    stream: &mut (impl Write + ?Sized),
    status: u16,
    content_type: &str,
    body: &[u8],
    close: bool,
) -> std::io::Result<()> {
    let connection = if close { "close" } else { "keep-alive" };
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n",
        reason(status),
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Round-trip a raw request through a real loopback socket.
    fn parse_raw(raw: &[u8]) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(raw).unwrap();
        client.shutdown(std::net::Shutdown::Write).unwrap();
        let (server, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(&server);
        read_request(&mut reader, Duration::from_secs(5))
    }

    #[test]
    fn parses_post_with_body_and_deadline_header() {
        let req = parse_raw(
            b"POST /v1/predict HTTP/1.1\r\nHost: x\r\nX-Comet-Deadline-Ms: 250\r\nContent-Length: 4\r\n\r\nabcd",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/predict");
        assert_eq!(req.body, b"abcd");
        assert_eq!(req.deadline_ms, Some(250));
        assert!(!req.close);
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse_raw(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
        assert!(req.close);
    }

    #[test]
    fn clean_eof_is_closed_not_malformed() {
        assert!(matches!(parse_raw(b""), Err(HttpError::Closed)));
    }

    #[test]
    fn junk_is_malformed() {
        assert!(matches!(parse_raw(b"NOT HTTP\r\n\r\n"), Err(HttpError::Malformed(_))));
        assert!(matches!(
            parse_raw(b"POST / HTTP/1.1\r\nContent-Length: zebra\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_bodies_are_rejected_before_reading_them() {
        let raw = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1);
        assert!(matches!(parse_raw(raw.as_bytes()), Err(HttpError::TooLarge { status: 413, .. })));
    }

    #[test]
    fn oversized_request_line_is_431() {
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(2 * MAX_LINE));
        assert!(matches!(parse_raw(raw.as_bytes()), Err(HttpError::TooLarge { status: 431, .. })));
    }

    #[test]
    fn too_many_headers_is_431() {
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        for i in 0..(MAX_HEADERS + 1) {
            raw.push_str(&format!("X-Pad-{i}: y\r\n"));
        }
        raw.push_str("\r\n");
        assert!(matches!(parse_raw(raw.as_bytes()), Err(HttpError::TooLarge { status: 431, .. })));
    }

    #[test]
    fn truncated_body_is_malformed_not_io() {
        // Content-Length promises 100 bytes, the peer sends 5 and
        // half-closes: a clean 400, not a torn socket.
        let err = parse_raw(b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\nhello").unwrap_err();
        assert!(
            matches!(err, HttpError::Malformed("truncated body")),
            "expected truncated-body, got {err:?}"
        );
    }

    #[test]
    fn truncated_headers_are_malformed() {
        let err = parse_raw(b"POST / HTTP/1.1\r\nHost: x\r\n").unwrap_err();
        assert!(matches!(err, HttpError::Malformed(_)), "got {err:?}");
    }

    #[test]
    fn stalled_sender_times_out_within_budget() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        // Start a request, then stall (no half-close, no more bytes).
        client.write_all(b"POST / HTTP/1.1\r\nContent-Le").unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_read_timeout(Some(Duration::from_millis(25))).unwrap();
        let mut reader = BufReader::new(&server);
        let start = Instant::now();
        let err = read_request(&mut reader, Duration::from_millis(50)).unwrap_err();
        assert!(matches!(err, HttpError::Timeout), "got {err:?}");
        assert!(start.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn response_is_well_formed() {
        let mut out: Vec<u8> = Vec::new();
        write_response(&mut out, 200, "application/json", b"{}", false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
