//! A deliberately minimal HTTP/1.1 subset over `std::net` — just
//! enough protocol for `comet-serve`'s endpoints: request line +
//! headers + `Content-Length` bodies in, fixed-status responses with
//! JSON or text bodies out, sequential keep-alive (no pipelining, no
//! chunked encoding, no TLS).
//!
//! Parsing is **incremental**: [`RequestParser`] consumes whatever
//! bytes the socket has ready — a byte at a time under a slow-loris
//! sender, a full pipelined request in one readiness event — and
//! yields a [`Request`] only when one is complete. The epoll front end
//! ([`crate::event`]) feeds it from nonblocking reads; the blocking
//! [`read_request`] used by tests and simple clients is a thin driver
//! over the same parser, so both paths share one grammar and one set
//! of hardening rules.
//!
//! Hardening over feature-completeness: request lines, header blocks,
//! and bodies all have hard size caps (oversized input is a typed
//! [`HttpError::TooLarge`], answered with 431/413 and a close, never a
//! torn socket), a truncated body is a clean 400, and a request that
//! arrives byte-by-byte (slow loris) is cut off by a wall-clock budget
//! that starts at its first byte and surfaces as [`HttpError::Timeout`]
//! → 408. Idle keep-alive connections that send nothing still close
//! silently, as clients expect.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Longest accepted request line or header line, bytes.
const MAX_LINE: usize = 8 * 1024;
/// Most accepted header lines per request.
const MAX_HEADERS: usize = 64;
/// Largest accepted request body, bytes (basic blocks are tiny; 1 MiB
/// is already generous).
pub const MAX_BODY: usize = 1024 * 1024;

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed the connection before sending a request line
    /// (normal end of a keep-alive session).
    Closed,
    /// Socket-level failure, or a timeout before any request byte
    /// arrived (idle keep-alive reclaim — closed silently).
    Io(std::io::Error),
    /// The bytes on the wire are not the HTTP subset we accept.
    Malformed(&'static str),
    /// The peer started a request but did not finish it within the
    /// read budget (slow loris / stalled sender). Answered with 408.
    Timeout,
    /// A size cap was exceeded; `status` is 431 (request line /
    /// headers) or 413 (body).
    TooLarge {
        /// The HTTP status to answer with (413 or 431).
        status: u16,
        /// Which cap was hit.
        reason: &'static str,
    },
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> HttpError {
        HttpError::Io(e)
    }
}

/// Whether an I/O error is a read-timeout expiry (both kinds occur
/// depending on platform).
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method, e.g. `GET`.
    pub method: String,
    /// Request target as sent (no query-string splitting; the API has
    /// none).
    pub path: String,
    /// Body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// `Connection: close` was requested.
    pub close: bool,
    /// Parsed `x-comet-deadline-ms` header, when present and numeric.
    pub deadline_ms: Option<u64>,
}

/// Where the parser is inside the current request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ParseState {
    /// Waiting for (or inside) the request line.
    RequestLine,
    /// Between the request line and the blank line.
    Headers,
    /// Reading `Content-Length` body bytes.
    Body,
}

/// Incremental request parser: push bytes in as they arrive, poll
/// complete requests out. One per connection; survives across
/// keep-alive requests (leftover pipelined bytes stay buffered and
/// parse on the next poll).
#[derive(Debug)]
pub struct RequestParser {
    /// Unconsumed input bytes.
    buf: Vec<u8>,
    /// How far `buf` has been scanned for a newline (avoids rescans
    /// under byte-at-a-time senders).
    scan: usize,
    state: ParseState,
    // Per-request accumulators.
    method: String,
    path: String,
    close: bool,
    deadline_ms: Option<u64>,
    content_length: usize,
    headers_seen: usize,
    http10: bool,
}

impl Default for RequestParser {
    fn default() -> RequestParser {
        RequestParser::new()
    }
}

impl RequestParser {
    /// A fresh parser, ready for the first request.
    pub fn new() -> RequestParser {
        RequestParser {
            buf: Vec::new(),
            scan: 0,
            state: ParseState::RequestLine,
            method: String::new(),
            path: String::new(),
            close: false,
            deadline_ms: None,
            content_length: 0,
            headers_seen: 0,
            http10: false,
        }
    }

    /// Buffer freshly read socket bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Whether any byte of an unfinished request has arrived — the
    /// line between "idle keep-alive, close silently" and "started a
    /// request, answer 408 on expiry".
    pub fn started(&self) -> bool {
        !self.buf.is_empty() || self.state != ParseState::RequestLine
    }

    /// What a peer EOF means in the current state: a clean
    /// [`HttpError::Closed`] between requests, a malformed-request
    /// error mid-request.
    pub fn eof_error(&self) -> HttpError {
        if !self.started() {
            return HttpError::Closed;
        }
        match self.state {
            ParseState::Body => HttpError::Malformed("truncated body"),
            _ => HttpError::Malformed("eof inside request"),
        }
    }

    /// Extract the next complete line from `buf`, stripped of its
    /// CR/LF tail. `Ok(None)` means more bytes are needed.
    fn next_line(&mut self) -> Result<Option<String>, HttpError> {
        match self.buf[self.scan..].iter().position(|&b| b == b'\n') {
            Some(offset) => {
                let end = self.scan + offset + 1;
                if end > MAX_LINE {
                    return Err(HttpError::TooLarge { status: 431, reason: "line too long" });
                }
                let mut line: Vec<u8> = self.buf.drain(..end).collect();
                self.scan = 0;
                while matches!(line.last(), Some(b'\n') | Some(b'\r')) {
                    line.pop();
                }
                String::from_utf8(line).map(Some).map_err(|_| HttpError::Malformed("non-utf8 line"))
            }
            None => {
                self.scan = self.buf.len();
                if self.scan > MAX_LINE {
                    return Err(HttpError::TooLarge { status: 431, reason: "line too long" });
                }
                Ok(None)
            }
        }
    }

    /// Parse as far as the buffered bytes allow. `Ok(None)` means a
    /// request is still incomplete; `Ok(Some(_))` hands a finished
    /// request out and leaves any pipelined remainder buffered. Errors
    /// are terminal for the connection.
    pub fn poll(&mut self) -> Result<Option<Request>, HttpError> {
        loop {
            match self.state {
                ParseState::RequestLine => {
                    let Some(line) = self.next_line()? else { return Ok(None) };
                    let mut parts = line.split_whitespace();
                    self.method =
                        parts.next().ok_or(HttpError::Malformed("empty request line"))?.to_string();
                    self.path = parts
                        .next()
                        .ok_or(HttpError::Malformed("missing request target"))?
                        .to_string();
                    let version = parts.next().ok_or(HttpError::Malformed("missing version"))?;
                    if !version.starts_with("HTTP/1.") {
                        return Err(HttpError::Malformed("unsupported protocol version"));
                    }
                    self.http10 = version == "HTTP/1.0";
                    self.close = self.http10;
                    self.state = ParseState::Headers;
                }
                ParseState::Headers => {
                    if self.headers_seen >= MAX_HEADERS {
                        return Err(HttpError::TooLarge {
                            status: 431,
                            reason: "too many headers",
                        });
                    }
                    let Some(line) = self.next_line()? else { return Ok(None) };
                    if line.is_empty() {
                        self.state = ParseState::Body;
                        continue;
                    }
                    self.headers_seen += 1;
                    let Some((name, value)) = line.split_once(':') else {
                        return Err(HttpError::Malformed("header without colon"));
                    };
                    let value = value.trim();
                    if name.eq_ignore_ascii_case("content-length") {
                        self.content_length = value
                            .parse()
                            .map_err(|_| HttpError::Malformed("bad content-length"))?;
                        if self.content_length > MAX_BODY {
                            return Err(HttpError::TooLarge {
                                status: 413,
                                reason: "body too large",
                            });
                        }
                    } else if name.eq_ignore_ascii_case("connection") {
                        self.close = value.eq_ignore_ascii_case("close");
                    } else if name.eq_ignore_ascii_case("x-comet-deadline-ms") {
                        self.deadline_ms = value.parse().ok();
                    }
                }
                ParseState::Body => {
                    if self.buf.len() < self.content_length {
                        self.scan = self.buf.len();
                        return Ok(None);
                    }
                    let body: Vec<u8> = self.buf.drain(..self.content_length).collect();
                    self.scan = 0;
                    let request = Request {
                        method: std::mem::take(&mut self.method),
                        path: std::mem::take(&mut self.path),
                        body,
                        close: self.close,
                        deadline_ms: self.deadline_ms.take(),
                    };
                    // Reset for the next keep-alive request; leftover
                    // bytes (an eager pipeliner) stay buffered.
                    self.state = ParseState::RequestLine;
                    self.close = false;
                    self.http10 = false;
                    self.content_length = 0;
                    self.headers_seen = 0;
                    return Ok(Some(request));
                }
            }
        }
    }
}

/// Tracks the wall-clock budget for reading one request. Armed by the
/// first byte (so idle keep-alive waits are not billed) and consulted
/// between reads; a peer dribbling bytes cannot hold a worker past
/// `budget` plus one socket read-timeout.
struct ReadBudget {
    deadline: Option<Instant>,
    budget: Duration,
}

impl ReadBudget {
    fn new(budget: Duration) -> ReadBudget {
        ReadBudget { deadline: None, budget }
    }

    /// First request byte seen: start the clock (once).
    fn arm(&mut self) {
        if self.deadline.is_none() && !self.budget.is_zero() {
            self.deadline = Some(Instant::now() + self.budget);
        }
    }

    fn armed(&self) -> bool {
        self.deadline.is_some()
    }

    fn check(&self) -> Result<(), HttpError> {
        match self.deadline {
            Some(deadline) if Instant::now() >= deadline => Err(HttpError::Timeout),
            _ => Ok(()),
        }
    }
}

/// Read and parse one request from a buffered connection — the
/// blocking driver over [`RequestParser`], used by tests and simple
/// clients (the serving path feeds the parser from the epoll loop
/// instead). Blocks until a full request arrives, the peer closes, the
/// stream's read timeout fires, or — once the first byte has arrived —
/// `read_budget` is exhausted (`Duration::ZERO` disables the budget).
pub fn read_request(
    reader: &mut BufReader<&TcpStream>,
    read_budget: Duration,
) -> Result<Request, HttpError> {
    let mut parser = RequestParser::new();
    let mut budget = ReadBudget::new(read_budget);
    loop {
        if let Some(request) = parser.poll()? {
            return Ok(request);
        }
        budget.check()?;
        let chunk = match reader.fill_buf() {
            Ok(chunk) => chunk,
            // A socket read-timeout mid-request is the same stalled
            // sender the budget exists for; before any byte it is just
            // an idle keep-alive connection.
            Err(e) if is_timeout(&e) && (budget.armed() || parser.started()) => {
                return Err(HttpError::Timeout)
            }
            Err(e) => return Err(HttpError::Io(e)),
        };
        if chunk.is_empty() {
            return Err(parser.eof_error());
        }
        budget.arm();
        let n = chunk.len();
        parser.push(chunk);
        reader.consume(n);
    }
}

/// Reason phrases for the statuses the service emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write a complete response. `close` adds `Connection: close` so
/// clients know the server will not read another request.
pub fn write_response(
    stream: &mut (impl Write + ?Sized),
    status: u16,
    content_type: &str,
    body: &[u8],
    close: bool,
) -> std::io::Result<()> {
    let connection = if close { "close" } else { "keep-alive" };
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n",
        reason(status),
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Round-trip a raw request through a real loopback socket.
    fn parse_raw(raw: &[u8]) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(raw).unwrap();
        client.shutdown(std::net::Shutdown::Write).unwrap();
        let (server, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(&server);
        read_request(&mut reader, Duration::from_secs(5))
    }

    #[test]
    fn parses_post_with_body_and_deadline_header() {
        let req = parse_raw(
            b"POST /v1/predict HTTP/1.1\r\nHost: x\r\nX-Comet-Deadline-Ms: 250\r\nContent-Length: 4\r\n\r\nabcd",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/predict");
        assert_eq!(req.body, b"abcd");
        assert_eq!(req.deadline_ms, Some(250));
        assert!(!req.close);
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse_raw(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
        assert!(req.close);
    }

    #[test]
    fn clean_eof_is_closed_not_malformed() {
        assert!(matches!(parse_raw(b""), Err(HttpError::Closed)));
    }

    #[test]
    fn junk_is_malformed() {
        assert!(matches!(parse_raw(b"NOT HTTP\r\n\r\n"), Err(HttpError::Malformed(_))));
        assert!(matches!(
            parse_raw(b"POST / HTTP/1.1\r\nContent-Length: zebra\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_bodies_are_rejected_before_reading_them() {
        let raw = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1);
        assert!(matches!(parse_raw(raw.as_bytes()), Err(HttpError::TooLarge { status: 413, .. })));
    }

    #[test]
    fn oversized_request_line_is_431() {
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(2 * MAX_LINE));
        assert!(matches!(parse_raw(raw.as_bytes()), Err(HttpError::TooLarge { status: 431, .. })));
    }

    #[test]
    fn too_many_headers_is_431() {
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        for i in 0..(MAX_HEADERS + 1) {
            raw.push_str(&format!("X-Pad-{i}: y\r\n"));
        }
        raw.push_str("\r\n");
        assert!(matches!(parse_raw(raw.as_bytes()), Err(HttpError::TooLarge { status: 431, .. })));
    }

    #[test]
    fn truncated_body_is_malformed_not_io() {
        // Content-Length promises 100 bytes, the peer sends 5 and
        // half-closes: a clean 400, not a torn socket.
        let err = parse_raw(b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\nhello").unwrap_err();
        assert!(
            matches!(err, HttpError::Malformed("truncated body")),
            "expected truncated-body, got {err:?}"
        );
    }

    #[test]
    fn truncated_headers_are_malformed() {
        let err = parse_raw(b"POST / HTTP/1.1\r\nHost: x\r\n").unwrap_err();
        assert!(matches!(err, HttpError::Malformed(_)), "got {err:?}");
    }

    #[test]
    fn stalled_sender_times_out_within_budget() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        // Start a request, then stall (no half-close, no more bytes).
        client.write_all(b"POST / HTTP/1.1\r\nContent-Le").unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_read_timeout(Some(Duration::from_millis(25))).unwrap();
        let mut reader = BufReader::new(&server);
        let start = Instant::now();
        let err = read_request(&mut reader, Duration::from_millis(50)).unwrap_err();
        assert!(matches!(err, HttpError::Timeout), "got {err:?}");
        assert!(start.elapsed() < Duration::from_secs(2));
    }

    #[test]
    fn response_is_well_formed() {
        let mut out: Vec<u8> = Vec::new();
        write_response(&mut out, 200, "application/json", b"{}", false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    // ----- incremental-parser edges -------------------------------------

    /// Feed `raw` to a parser in `chunk`-byte slices and return every
    /// request it produces.
    fn parse_in_chunks(raw: &[u8], chunk: usize) -> Result<Vec<Request>, HttpError> {
        let mut parser = RequestParser::new();
        let mut out = Vec::new();
        for piece in raw.chunks(chunk.max(1)) {
            parser.push(piece);
            while let Some(req) = parser.poll()? {
                out.push(req);
            }
        }
        Ok(out)
    }

    #[test]
    fn byte_at_a_time_parses_identically_to_one_shot() {
        let raw = b"POST /v1/predict HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\nhello world";
        for chunk in [1, 2, 3, 7, raw.len()] {
            let reqs = parse_in_chunks(raw, chunk).unwrap();
            assert_eq!(reqs.len(), 1, "chunk={chunk}");
            assert_eq!(reqs[0].method, "POST");
            assert_eq!(reqs[0].path, "/v1/predict");
            assert_eq!(reqs[0].body, b"hello world");
        }
    }

    #[test]
    fn headers_cut_mid_token_resume_cleanly() {
        let mut parser = RequestParser::new();
        parser.push(b"GET /healthz HTTP/1.1\r\nX-Comet-Dead");
        assert!(parser.poll().unwrap().is_none());
        assert!(parser.started());
        parser.push(b"line-Ms: 75\r\nConnec");
        assert!(parser.poll().unwrap().is_none());
        parser.push(b"tion: close\r\n\r\n");
        let req = parser.poll().unwrap().expect("complete request");
        assert_eq!(req.deadline_ms, Some(75));
        assert!(req.close);
        assert!(!parser.started(), "parser resets between requests");
    }

    #[test]
    fn pipelined_second_request_stays_buffered() {
        let mut parser = RequestParser::new();
        parser.push(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n");
        let first = parser.poll().unwrap().expect("first request");
        assert_eq!(first.path, "/a");
        assert!(parser.started(), "second request is pending");
        let second = parser.poll().unwrap().expect("second request");
        assert_eq!(second.path, "/b");
        assert!(parser.poll().unwrap().is_none());
    }

    #[test]
    fn oversized_line_detected_before_newline_arrives() {
        let mut parser = RequestParser::new();
        // 2×MAX_LINE bytes with no newline at all: the cap must fire
        // without waiting for the terminator.
        let mut err = None;
        for _ in 0..(2 * MAX_LINE / 64) {
            parser.push(&[b'x'; 64]);
            if let Err(e) = parser.poll() {
                err = Some(e);
                break;
            }
        }
        assert!(matches!(err, Some(HttpError::TooLarge { status: 431, .. })), "got {err:?}");
    }

    #[test]
    fn eof_error_tracks_parser_state() {
        let parser = RequestParser::new();
        assert!(matches!(parser.eof_error(), HttpError::Closed));

        let mut parser = RequestParser::new();
        parser.push(b"GET / HT");
        let _ = parser.poll();
        assert!(matches!(parser.eof_error(), HttpError::Malformed("eof inside request")));

        let mut parser = RequestParser::new();
        parser.push(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc");
        let _ = parser.poll();
        assert!(matches!(parser.eof_error(), HttpError::Malformed("truncated body")));
    }
}
