//! A deliberately minimal HTTP/1.1 subset over `std::net` — just
//! enough protocol for `comet-serve`'s four endpoints: request line +
//! headers + `Content-Length` bodies in, fixed-status responses with
//! JSON or text bodies out, sequential keep-alive (no pipelining, no
//! chunked encoding, no TLS).
//!
//! Parsing is hardened against abuse rather than feature-complete:
//! request lines, header blocks, and bodies all have hard size caps,
//! and a malformed request yields a typed [`HttpError`] so the caller
//! can answer 400 and close instead of panicking or hanging.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Longest accepted request line or header line, bytes.
const MAX_LINE: usize = 8 * 1024;
/// Most accepted header lines per request.
const MAX_HEADERS: usize = 64;
/// Largest accepted request body, bytes (basic blocks are tiny; 1 MiB
/// is already generous).
pub const MAX_BODY: usize = 1024 * 1024;

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed the connection before sending a request line
    /// (normal end of a keep-alive session).
    Closed,
    /// Socket-level failure or timeout.
    Io(std::io::Error),
    /// The bytes on the wire are not the HTTP subset we accept.
    Malformed(&'static str),
}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> HttpError {
        HttpError::Io(e)
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method, e.g. `GET`.
    pub method: String,
    /// Request target as sent (no query-string splitting; the API has
    /// none).
    pub path: String,
    /// Body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// `Connection: close` was requested.
    pub close: bool,
    /// Parsed `x-comet-deadline-ms` header, when present and numeric.
    pub deadline_ms: Option<u64>,
}

/// Read one line (CRLF or bare LF terminated) with a length cap.
fn read_line(reader: &mut BufReader<&TcpStream>) -> Result<String, HttpError> {
    let mut line = Vec::new();
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            if line.is_empty() {
                return Err(HttpError::Closed);
            }
            return Err(HttpError::Malformed("eof inside line"));
        }
        let newline = buf.iter().position(|&b| b == b'\n');
        let take = newline.map_or(buf.len(), |p| p + 1);
        line.extend_from_slice(&buf[..take]);
        reader.consume(take);
        if line.len() > MAX_LINE {
            return Err(HttpError::Malformed("line too long"));
        }
        if newline.is_some() {
            while matches!(line.last(), Some(b'\n') | Some(b'\r')) {
                line.pop();
            }
            return String::from_utf8(line).map_err(|_| HttpError::Malformed("non-utf8 line"));
        }
    }
}

/// Read and parse one request from a buffered connection. Blocks until
/// a full request arrives, the peer closes, or the stream's read
/// timeout fires.
pub fn read_request(reader: &mut BufReader<&TcpStream>) -> Result<Request, HttpError> {
    let request_line = read_line(reader)?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or(HttpError::Malformed("empty request line"))?.to_string();
    let path = parts.next().ok_or(HttpError::Malformed("missing request target"))?.to_string();
    let version = parts.next().ok_or(HttpError::Malformed("missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("unsupported protocol version"));
    }

    let mut content_length = 0usize;
    let mut close = version == "HTTP/1.0";
    let mut deadline_ms = None;
    for _ in 0..MAX_HEADERS {
        let line = match read_line(reader) {
            Ok(line) => line,
            Err(HttpError::Closed) => return Err(HttpError::Malformed("eof inside headers")),
            Err(e) => return Err(e),
        };
        if line.is_empty() {
            let mut body = vec![0u8; content_length];
            reader.read_exact(&mut body)?;
            return Ok(Request { method, path, body, close, deadline_ms });
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed("header without colon"));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length =
                value.parse().map_err(|_| HttpError::Malformed("bad content-length"))?;
            if content_length > MAX_BODY {
                return Err(HttpError::Malformed("body too large"));
            }
        } else if name.eq_ignore_ascii_case("connection") {
            close = value.eq_ignore_ascii_case("close");
        } else if name.eq_ignore_ascii_case("x-comet-deadline-ms") {
            deadline_ms = value.parse().ok();
        }
    }
    Err(HttpError::Malformed("too many headers"))
}

/// Reason phrases for the statuses the service emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write a complete response. `close` adds `Connection: close` so
/// clients know the server will not read another request.
pub fn write_response(
    stream: &mut (impl Write + ?Sized),
    status: u16,
    content_type: &str,
    body: &[u8],
    close: bool,
) -> std::io::Result<()> {
    let connection = if close { "close" } else { "keep-alive" };
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n",
        reason(status),
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Round-trip a raw request through a real loopback socket.
    fn parse_raw(raw: &[u8]) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(raw).unwrap();
        client.shutdown(std::net::Shutdown::Write).unwrap();
        let (server, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(&server);
        read_request(&mut reader)
    }

    #[test]
    fn parses_post_with_body_and_deadline_header() {
        let req = parse_raw(
            b"POST /v1/predict HTTP/1.1\r\nHost: x\r\nX-Comet-Deadline-Ms: 250\r\nContent-Length: 4\r\n\r\nabcd",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/predict");
        assert_eq!(req.body, b"abcd");
        assert_eq!(req.deadline_ms, Some(250));
        assert!(!req.close);
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse_raw(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
        assert!(req.close);
    }

    #[test]
    fn clean_eof_is_closed_not_malformed() {
        assert!(matches!(parse_raw(b""), Err(HttpError::Closed)));
    }

    #[test]
    fn junk_is_malformed() {
        assert!(matches!(parse_raw(b"NOT HTTP\r\n\r\n"), Err(HttpError::Malformed(_))));
        assert!(matches!(
            parse_raw(b"POST / HTTP/1.1\r\nContent-Length: zebra\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_bodies_are_rejected_before_reading_them() {
        let raw = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1);
        assert!(matches!(parse_raw(raw.as_bytes()), Err(HttpError::Malformed(_))));
    }

    #[test]
    fn response_is_well_formed() {
        let mut out: Vec<u8> = Vec::new();
        write_response(&mut out, 200, "application/json", b"{}", false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
