//! Service metrics: atomic counters and fixed-bucket latency
//! histograms, rendered in Prometheus text exposition format at
//! `GET /metrics`.
//!
//! Everything is lock-free (`AtomicU64` only) so the request hot path
//! pays a handful of relaxed atomic increments per request, and a
//! scrape never blocks a worker. Quantiles are estimated from the
//! histogram buckets at scrape time (linear interpolation inside the
//! containing bucket), which is exactly the estimate a Prometheus
//! `histogram_quantile` query would produce from the same buckets.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use crate::admission::ShedReason;

/// The endpoints the service distinguishes in its metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /v1/predict`
    Predict,
    /// `POST /v1/explain`
    Explain,
    /// `GET /healthz`
    Healthz,
    /// `GET /readyz`
    Readyz,
    /// `GET /metrics`
    Metrics,
    /// `POST`/`GET /admin/model` (model lifecycle).
    Admin,
    /// `GET /analytics/categories` and `/analytics/opcodes`
    /// (store-backed aggregation rollups).
    Analytics,
    /// Anything else (404s, bad request lines, …).
    Other,
}

impl Endpoint {
    const ALL: [Endpoint; 8] = [
        Endpoint::Predict,
        Endpoint::Explain,
        Endpoint::Healthz,
        Endpoint::Readyz,
        Endpoint::Metrics,
        Endpoint::Admin,
        Endpoint::Analytics,
        Endpoint::Other,
    ];

    fn index(self) -> usize {
        match self {
            Endpoint::Predict => 0,
            Endpoint::Explain => 1,
            Endpoint::Healthz => 2,
            Endpoint::Readyz => 3,
            Endpoint::Metrics => 4,
            Endpoint::Admin => 5,
            Endpoint::Analytics => 6,
            Endpoint::Other => 7,
        }
    }

    fn label(self) -> &'static str {
        match self {
            Endpoint::Predict => "predict",
            Endpoint::Explain => "explain",
            Endpoint::Healthz => "healthz",
            Endpoint::Readyz => "readyz",
            Endpoint::Metrics => "metrics",
            Endpoint::Admin => "admin",
            Endpoint::Analytics => "analytics",
            Endpoint::Other => "other",
        }
    }
}

/// Status classes tracked per endpoint (the service only ever emits
/// these).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatusClass {
    /// 200.
    Ok,
    /// 400 (malformed request / unknown fields / bad version).
    BadRequest,
    /// 404.
    NotFound,
    /// 408 (request deadline exhausted before completion, or a
    /// slow-loris peer that never finished sending its request).
    Timeout,
    /// 413 (request body over the hard cap).
    PayloadTooLarge,
    /// 409 (a staged model candidate failed shadow validation).
    Conflict,
    /// 431 (request line or header block over the hard cap).
    HeadersTooLarge,
    /// 500 (handler failure).
    Internal,
    /// 503 (load shed, or not ready on `/readyz`).
    Shed,
}

impl StatusClass {
    const ALL: [StatusClass; 9] = [
        StatusClass::Ok,
        StatusClass::BadRequest,
        StatusClass::NotFound,
        StatusClass::Timeout,
        StatusClass::Conflict,
        StatusClass::PayloadTooLarge,
        StatusClass::HeadersTooLarge,
        StatusClass::Internal,
        StatusClass::Shed,
    ];

    fn index(self) -> usize {
        match self {
            StatusClass::Ok => 0,
            StatusClass::BadRequest => 1,
            StatusClass::NotFound => 2,
            StatusClass::Timeout => 3,
            StatusClass::Conflict => 4,
            StatusClass::PayloadTooLarge => 5,
            StatusClass::HeadersTooLarge => 6,
            StatusClass::Internal => 7,
            StatusClass::Shed => 8,
        }
    }

    /// The HTTP status code this class renders as.
    pub fn code(self) -> u16 {
        match self {
            StatusClass::Ok => 200,
            StatusClass::BadRequest => 400,
            StatusClass::NotFound => 404,
            StatusClass::Timeout => 408,
            StatusClass::Conflict => 409,
            StatusClass::PayloadTooLarge => 413,
            StatusClass::HeadersTooLarge => 431,
            StatusClass::Internal => 500,
            StatusClass::Shed => 503,
        }
    }
}

/// The degradation-ladder tier an explain response was served from
/// (see `server::run_search`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// A precomputed explanation served straight from the on-disk
    /// store (comet-store) — the top of the ladder, no search at all.
    Store,
    /// The full anchors search at the configured budgets.
    Full,
    /// A reduced-budget search: fewer KL-LUCB draws, smaller coverage
    /// pool, narrower beam.
    ReducedBudget,
    /// A stale previously-computed explanation served from the
    /// in-memory per-version stale map.
    Cached,
    /// A minimal single-feature baseline probe.
    Baseline,
}

impl Tier {
    /// All tiers, for metrics iteration, best first.
    pub const ALL: [Tier; 5] =
        [Tier::Store, Tier::Full, Tier::ReducedBudget, Tier::Cached, Tier::Baseline];

    fn index(self) -> usize {
        match self {
            Tier::Store => 0,
            Tier::Full => 1,
            Tier::ReducedBudget => 2,
            Tier::Cached => 3,
            Tier::Baseline => 4,
        }
    }

    /// The wire label carried in `ExplanationDto::tier` and the `tier`
    /// label in `/metrics`.
    pub fn label(self) -> &'static str {
        match self {
            Tier::Store => "store",
            Tier::Full => "full",
            Tier::ReducedBudget => "reduced-budget",
            Tier::Cached => "cached",
            Tier::Baseline => "baseline",
        }
    }
}

/// Upper bounds (microseconds) of the standard latency buckets, plus
/// an implicit +Inf bucket. Spans 100µs → 10s: cache-hit predicts land
/// in the first buckets, cold explains in the hundreds-of-ms range.
const BUCKET_BOUNDS_US: [u64; 14] = [
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 10_000_000,
];

/// Fine-grained bounds for store-hit latency (1µs → 10ms). Store hits
/// complete in microseconds — two orders of magnitude below the first
/// standard bucket — so demonstrating the ≥100× speedup over live
/// explains needs its own resolution.
const STORE_BUCKET_BOUNDS_US: [u64; 13] =
    [1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000];

/// A fixed-bucket latency histogram (cumulative counts would race
/// across buckets, so buckets store per-bucket counts and cumulate at
/// render time). Bucket bounds are chosen at construction:
/// [`Histogram::default`] uses the standard request-latency bounds,
/// [`Histogram::with_bounds`] any custom static set.
#[derive(Debug)]
pub struct Histogram {
    bounds: &'static [u64],
    buckets: Box<[AtomicU64]>,
    sum_us: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::with_bounds(&BUCKET_BOUNDS_US)
    }
}

impl Histogram {
    /// A histogram over `bounds` (ascending, in µs) plus an implicit
    /// +Inf bucket.
    pub fn with_bounds(bounds: &'static [u64]) -> Histogram {
        Histogram {
            bounds,
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_us: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    pub fn observe_us(&self, us: u64) {
        let slot = self.bounds.iter().position(|&b| us <= b).unwrap_or(self.bounds.len());
        self.buckets[slot].fetch_add(1, Relaxed);
        self.sum_us.fetch_add(us, Relaxed);
        self.count.fetch_add(1, Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Estimate the `q`-quantile (0 < q < 1) in microseconds by linear
    /// interpolation within the containing bucket. Returns 0 when
    /// empty; observations in the +Inf bucket report the last finite
    /// bound (the estimate is saturated, not extrapolated).
    pub fn quantile_us(&self, q: f64) -> f64 {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let rank = q * total as f64;
        let mut cumulative = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            let next = cumulative + c;
            if (next as f64) >= rank && c > 0 {
                let lower = if i == 0 { 0 } else { self.bounds[i - 1] };
                let upper = self.bounds.get(i).copied().unwrap_or(*self.bounds.last().unwrap());
                if upper <= lower {
                    return upper as f64;
                }
                let within = (rank - cumulative as f64) / c as f64;
                return lower as f64 + within.clamp(0.0, 1.0) * (upper - lower) as f64;
            }
            cumulative = next;
        }
        *self.bounds.last().unwrap() as f64
    }

    /// Render as a Prometheus histogram (`_bucket`/`_sum`/`_count`)
    /// with the given name and label set.
    fn render(&self, out: &mut String, name: &str, labels: &str) {
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Relaxed);
            let le = self
                .bounds
                .get(i)
                .map(|&b| format!("{}", b as f64 / 1e6))
                .unwrap_or_else(|| "+Inf".to_string());
            let sep = if labels.is_empty() { "" } else { "," };
            let _ = writeln!(out, "{name}_bucket{{{labels}{sep}le=\"{le}\"}} {cumulative}");
        }
        let braced = if labels.is_empty() { String::new() } else { format!("{{{labels}}}") };
        let _ = writeln!(out, "{name}_sum{braced} {}", self.sum_us.load(Relaxed) as f64 / 1e6);
        let _ = writeln!(out, "{name}_count{braced} {}", self.count.load(Relaxed));
    }
}

/// A [`Histogram`] whose `Default` uses the fine store-hit bounds, so
/// [`Registry`] can keep deriving `Default`.
#[derive(Debug)]
struct StoreHitHistogram(Histogram);

impl Default for StoreHitHistogram {
    fn default() -> StoreHitHistogram {
        StoreHitHistogram(Histogram::with_bounds(&STORE_BUCKET_BOUNDS_US))
    }
}

/// The process-wide metrics registry shared by the accept loop, the
/// workers, and the `/metrics` handler.
#[derive(Debug, Default)]
pub struct Registry {
    /// Requests by endpoint × status class.
    requests: [[AtomicU64; StatusClass::ALL.len()]; Endpoint::ALL.len()],
    /// Connections rejected at admission (all reasons).
    shed: AtomicU64,
    /// Shed connections by reason.
    shed_reasons: [AtomicU64; ShedReason::ALL.len()],
    /// Explain searches served, by degradation-ladder tier.
    tiers: [AtomicU64; Tier::ALL.len()],
    /// Current adaptive admission (concurrency) limit; refreshed at
    /// scrape time by the `/metrics` handler.
    admission_limit: AtomicU64,
    /// Last observed queue sojourn, µs; refreshed at scrape time.
    queue_delay_us: AtomicU64,
    /// Worker panics injected by the seeded chaos mode.
    chaos_panics: AtomicU64,
    /// Explain requests answered by piggybacking on an identical
    /// in-flight search (single-flight coalescing).
    coalesced: AtomicU64,
    /// Underlying anchors searches actually executed.
    searches: AtomicU64,
    /// Current depth of the bounded request queue (set by the accept
    /// loop after each push/shed; workers decrement on pop).
    queue_depth: AtomicU64,
    /// Model queries issued through the batched search path, per
    /// endpoint.
    batched_queries: [AtomicU64; Endpoint::ALL.len()],
    /// `predict_batch` calls issued, per endpoint (occupancy
    /// denominator together with the configured batch size).
    batch_chunks: [AtomicU64; Endpoint::ALL.len()],
    /// The configured model-batch size, for occupancy rendering (set
    /// once at server start; 0 until then).
    batch_size: AtomicU64,
    /// Latency histograms for the two real endpoints.
    predict_latency: Histogram,
    explain_latency: Histogram,
    /// Explains answered from the precomputed on-disk store.
    store_hits: AtomicU64,
    /// Explains that consulted a configured store and missed (fell
    /// through to the live ladder). Absent-store requests count
    /// neither.
    store_misses: AtomicU64,
    /// Store-hit latency on its own fine-grained buckets (store hits
    /// are ~µs; the standard buckets start at 100µs).
    store_hit_latency: StoreHitHistogram,
    /// Active model version (registry version of the epoch serving
    /// traffic); 0 until the first epoch is published.
    model_version: AtomicU64,
    /// Model hot-swaps that reached the serving path (promotions,
    /// including forced ones; rollbacks count separately).
    model_swaps: AtomicU64,
    /// Automatic or manual rollbacks to the last-known-good model.
    model_rollbacks: AtomicU64,
    /// Open connections across all reactor threads (gauge).
    connections: AtomicU64,
    /// Shard identity, packed `(count << 32) | index`; 0 = unsharded.
    shard: AtomicU64,
}

impl Registry {
    /// Fresh registry with all counters at zero.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Count one finished request.
    pub fn record(&self, endpoint: Endpoint, status: StatusClass) {
        self.requests[endpoint.index()][status.index()].fetch_add(1, Relaxed);
    }

    /// Record a served request's latency (predict/explain only; the
    /// introspection endpoints are not interesting to time).
    pub fn observe_latency(&self, endpoint: Endpoint, us: u64) {
        match endpoint {
            Endpoint::Predict => self.predict_latency.observe_us(us),
            Endpoint::Explain => self.explain_latency.observe_us(us),
            _ => {}
        }
    }

    /// Count one load-shed connection (the 503 itself is also recorded
    /// via [`record`](Registry::record) by the caller).
    pub fn record_shed(&self, reason: ShedReason) {
        self.shed.fetch_add(1, Relaxed);
        self.shed_reasons[reason.index()].fetch_add(1, Relaxed);
    }

    /// Connections shed so far (all reasons).
    pub fn shed_count(&self) -> u64 {
        self.shed.load(Relaxed)
    }

    /// Connections shed so far for `reason`.
    pub fn shed_count_for(&self, reason: ShedReason) -> u64 {
        self.shed_reasons[reason.index()].load(Relaxed)
    }

    /// Count one explain search served from a degradation-ladder tier.
    pub fn record_tier(&self, tier: Tier) {
        self.tiers[tier.index()].fetch_add(1, Relaxed);
    }

    /// Explain searches served from `tier` so far.
    pub fn tier_count(&self, tier: Tier) -> u64 {
        self.tiers[tier.index()].load(Relaxed)
    }

    /// Refresh the admission gauges (called by the `/metrics` handler
    /// at scrape time).
    pub fn set_admission(&self, limit: u64, queue_delay_us: u64) {
        self.admission_limit.store(limit, Relaxed);
        self.queue_delay_us.store(queue_delay_us, Relaxed);
    }

    /// Count one chaos-injected worker panic.
    pub fn record_chaos_panic(&self) {
        self.chaos_panics.fetch_add(1, Relaxed);
    }

    /// Chaos-injected worker panics so far.
    pub fn chaos_panic_count(&self) -> u64 {
        self.chaos_panics.load(Relaxed)
    }

    /// Requests recorded with `status` across all endpoints.
    pub fn requests_with_status(&self, status: StatusClass) -> u64 {
        Endpoint::ALL.iter().map(|e| self.requests[e.index()][status.index()].load(Relaxed)).sum()
    }

    /// Count one coalesced explain (answered by an in-flight twin).
    pub fn record_coalesced(&self) {
        self.coalesced.fetch_add(1, Relaxed);
    }

    /// Count one underlying anchors search.
    pub fn record_search(&self) {
        self.searches.fetch_add(1, Relaxed);
    }

    /// Underlying anchors searches executed so far.
    pub fn search_count(&self) -> u64 {
        self.searches.load(Relaxed)
    }

    /// Explains coalesced onto an in-flight twin so far.
    pub fn coalesced_count(&self) -> u64 {
        self.coalesced.load(Relaxed)
    }

    /// Requests recorded for `endpoint` across all status classes.
    pub fn requests_for(&self, endpoint: Endpoint) -> u64 {
        self.requests[endpoint.index()].iter().map(|c| c.load(Relaxed)).sum()
    }

    /// Update the queue-depth gauge.
    pub fn set_queue_depth(&self, depth: usize) {
        self.queue_depth.store(depth as u64, Relaxed);
    }

    /// Record the model-batch size the server was configured with
    /// (once, at startup; needed to turn chunk counts into occupancy).
    pub fn set_batch_size(&self, batch: usize) {
        self.batch_size.store(batch as u64, Relaxed);
    }

    /// Record one finished search's batching activity: `queries` model
    /// queries dispatched through `chunks` `predict_batch` calls.
    pub fn record_batched(&self, endpoint: Endpoint, queries: u64, chunks: u64) {
        self.batched_queries[endpoint.index()].fetch_add(queries, Relaxed);
        self.batch_chunks[endpoint.index()].fetch_add(chunks, Relaxed);
    }

    /// Model queries issued through the batch path so far, across all
    /// endpoints.
    pub fn queries_batched_total(&self) -> u64 {
        self.batched_queries.iter().map(|c| c.load(Relaxed)).sum()
    }

    /// Mean batch occupancy for `endpoint` in `(0, 1]`: batched queries
    /// per chunk over the configured batch size. Zero before any chunk
    /// ran (or if the batch size was never set).
    pub fn batch_occupancy(&self, endpoint: Endpoint) -> f64 {
        let chunks = self.batch_chunks[endpoint.index()].load(Relaxed);
        let batch = self.batch_size.load(Relaxed);
        if chunks == 0 || batch == 0 {
            return 0.0;
        }
        self.batched_queries[endpoint.index()].load(Relaxed) as f64 / (chunks * batch) as f64
    }

    /// Publish the active model version (gauge).
    pub fn set_model_version(&self, version: u64) {
        self.model_version.store(version, Relaxed);
    }

    /// The active model version last published.
    pub fn model_version(&self) -> u64 {
        self.model_version.load(Relaxed)
    }

    /// Count one model hot-swap (a promotion reaching the serving
    /// path).
    pub fn record_model_swap(&self) {
        self.model_swaps.fetch_add(1, Relaxed);
    }

    /// Model hot-swaps so far.
    pub fn model_swap_count(&self) -> u64 {
        self.model_swaps.load(Relaxed)
    }

    /// Count one rollback to the last-known-good model.
    pub fn record_model_rollback(&self) {
        self.model_rollbacks.fetch_add(1, Relaxed);
    }

    /// Rollbacks so far.
    pub fn model_rollback_count(&self) -> u64 {
        self.model_rollbacks.load(Relaxed)
    }

    /// Update the open-connections gauge (set by the reactors).
    pub fn set_connections(&self, open: u64) {
        self.connections.store(open, Relaxed);
    }

    /// Open connections right now.
    pub fn connection_count(&self) -> u64 {
        self.connections.load(Relaxed)
    }

    /// Publish this process's shard identity (`--shard index/count`).
    pub fn set_shard(&self, index: u32, count: u32) {
        self.shard.store(((count as u64) << 32) | index as u64, Relaxed);
    }

    /// The explain latency histogram (for the bench client's report).
    pub fn explain_latency(&self) -> &Histogram {
        &self.explain_latency
    }

    /// The predict latency histogram (for the bench client's report).
    pub fn predict_latency(&self) -> &Histogram {
        &self.predict_latency
    }

    /// Count one explain served from the precomputed store, with its
    /// end-to-end handler latency.
    pub fn record_store_hit(&self, us: u64) {
        self.store_hits.fetch_add(1, Relaxed);
        self.store_hit_latency.0.observe_us(us);
    }

    /// Count one explain that consulted the store and missed.
    pub fn record_store_miss(&self) {
        self.store_misses.fetch_add(1, Relaxed);
    }

    /// Explains served from the store so far.
    pub fn store_hit_count(&self) -> u64 {
        self.store_hits.load(Relaxed)
    }

    /// Store lookups that missed so far.
    pub fn store_miss_count(&self) -> u64 {
        self.store_misses.load(Relaxed)
    }

    /// The store-hit latency histogram (fine-grained buckets).
    pub fn store_hit_latency(&self) -> &Histogram {
        &self.store_hit_latency.0
    }

    /// Render the whole registry in Prometheus text exposition format.
    /// `cache` carries the shared model cache's counters, re-exported
    /// as `comet_cache_*` so scrapers see hit rate without a second
    /// endpoint; `stale_versions` carries `(model_version, entries)`
    /// pairs from the stale-explanation map, so operators can see
    /// exactly how many entries each hot-swap stranded.
    pub fn render_prometheus(
        &self,
        cache: &comet_models::QueryStats,
        stale_versions: &[(u64, u64)],
    ) -> String {
        let mut out = String::with_capacity(4096);
        let _ = writeln!(out, "# HELP comet_requests_total Requests by endpoint and status.");
        let _ = writeln!(out, "# TYPE comet_requests_total counter");
        for endpoint in Endpoint::ALL {
            for status in StatusClass::ALL {
                let count = self.requests[endpoint.index()][status.index()].load(Relaxed);
                if count > 0 {
                    let _ = writeln!(
                        out,
                        "comet_requests_total{{endpoint=\"{}\",status=\"{}\"}} {count}",
                        endpoint.label(),
                        status.code()
                    );
                }
            }
        }
        let _ = writeln!(
            out,
            "# HELP comet_kernel Active inference kernel variant (info gauge, always 1)."
        );
        let _ = writeln!(out, "# TYPE comet_kernel gauge");
        let _ = writeln!(out, "comet_kernel{{name=\"{}\"}} 1", comet_nn::kernel::active().name);
        let _ = writeln!(out, "# HELP comet_shed_total Connections rejected by backpressure.");
        let _ = writeln!(out, "# TYPE comet_shed_total counter");
        let _ = writeln!(out, "comet_shed_total {}", self.shed.load(Relaxed));
        let _ = writeln!(out, "# HELP comet_shed_reason_total Shed connections by reason.");
        let _ = writeln!(out, "# TYPE comet_shed_reason_total counter");
        for reason in ShedReason::ALL {
            let _ = writeln!(
                out,
                "comet_shed_reason_total{{reason=\"{}\"}} {}",
                reason.label(),
                self.shed_reasons[reason.index()].load(Relaxed)
            );
        }
        let _ = writeln!(
            out,
            "# HELP comet_admission_limit Current adaptive concurrency limit (AIMD)."
        );
        let _ = writeln!(out, "# TYPE comet_admission_limit gauge");
        let _ = writeln!(out, "comet_admission_limit {}", self.admission_limit.load(Relaxed));
        let _ = writeln!(out, "# HELP comet_queue_delay_seconds Last observed queue sojourn time.");
        let _ = writeln!(out, "# TYPE comet_queue_delay_seconds gauge");
        let _ = writeln!(
            out,
            "comet_queue_delay_seconds {}",
            self.queue_delay_us.load(Relaxed) as f64 / 1e6
        );
        let _ = writeln!(
            out,
            "# HELP comet_explain_tier_total Explain searches by degradation-ladder tier."
        );
        let _ = writeln!(out, "# TYPE comet_explain_tier_total counter");
        for tier in Tier::ALL {
            let _ = writeln!(
                out,
                "comet_explain_tier_total{{tier=\"{}\"}} {}",
                tier.label(),
                self.tiers[tier.index()].load(Relaxed)
            );
        }
        let chaos_panics = self.chaos_panics.load(Relaxed);
        if chaos_panics > 0 {
            let _ = writeln!(
                out,
                "# HELP comet_chaos_panics_total Worker panics injected by chaos mode."
            );
            let _ = writeln!(out, "# TYPE comet_chaos_panics_total counter");
            let _ = writeln!(out, "comet_chaos_panics_total {chaos_panics}");
        }
        let _ = writeln!(out, "# HELP comet_explain_searches_total Underlying anchors searches.");
        let _ = writeln!(out, "# TYPE comet_explain_searches_total counter");
        let _ = writeln!(out, "comet_explain_searches_total {}", self.searches.load(Relaxed));
        let _ = writeln!(
            out,
            "# HELP comet_explain_coalesced_total Explains answered by an in-flight twin."
        );
        let _ = writeln!(out, "# TYPE comet_explain_coalesced_total counter");
        let _ = writeln!(out, "comet_explain_coalesced_total {}", self.coalesced.load(Relaxed));
        let _ = writeln!(out, "# HELP comet_queue_depth Requests waiting in the bounded queue.");
        let _ = writeln!(out, "# TYPE comet_queue_depth gauge");
        let _ = writeln!(out, "comet_queue_depth {}", self.queue_depth.load(Relaxed));
        let _ = writeln!(out, "# HELP comet_connections Open connections across all reactors.");
        let _ = writeln!(out, "# TYPE comet_connections gauge");
        let _ = writeln!(out, "comet_connections {}", self.connections.load(Relaxed));
        let shard = self.shard.load(Relaxed);
        if shard != 0 {
            let _ = writeln!(
                out,
                "# HELP comet_shard Shard identity of this process (info gauge, always 1)."
            );
            let _ = writeln!(out, "# TYPE comet_shard gauge");
            let _ = writeln!(
                out,
                "comet_shard{{index=\"{}\",count=\"{}\"}} 1",
                shard & 0xffff_ffff,
                shard >> 32
            );
        }
        let _ = writeln!(
            out,
            "# HELP comet_queries_batched_total Model queries issued via predict_batch."
        );
        let _ = writeln!(out, "# TYPE comet_queries_batched_total counter");
        for endpoint in Endpoint::ALL {
            let queries = self.batched_queries[endpoint.index()].load(Relaxed);
            if queries > 0 {
                let _ = writeln!(
                    out,
                    "comet_queries_batched_total{{endpoint=\"{}\"}} {queries}",
                    endpoint.label()
                );
            }
        }
        let _ = writeln!(
            out,
            "# HELP comet_batch_occupancy Mean model-batch occupancy (queries per chunk / batch size)."
        );
        let _ = writeln!(out, "# TYPE comet_batch_occupancy gauge");
        for endpoint in Endpoint::ALL {
            if self.batch_chunks[endpoint.index()].load(Relaxed) > 0 {
                let _ = writeln!(
                    out,
                    "comet_batch_occupancy{{endpoint=\"{}\"}} {}",
                    endpoint.label(),
                    self.batch_occupancy(endpoint)
                );
            }
        }

        let _ = writeln!(
            out,
            "# HELP comet_cache_queries_total Model queries through the shared cache."
        );
        let _ = writeln!(out, "# TYPE comet_cache_queries_total counter");
        let _ = writeln!(out, "comet_cache_queries_total {}", cache.total);
        let _ =
            writeln!(out, "# HELP comet_cache_hits_total Queries answered from the shared cache.");
        let _ = writeln!(out, "# TYPE comet_cache_hits_total counter");
        let _ = writeln!(out, "comet_cache_hits_total {}", cache.hits);
        let _ =
            writeln!(out, "# HELP comet_cache_hit_rate Fraction of queries answered from cache.");
        let _ = writeln!(out, "# TYPE comet_cache_hit_rate gauge");
        let _ = writeln!(out, "comet_cache_hit_rate {}", cache.hit_rate());
        let _ = writeln!(out, "# HELP comet_cache_entries Live entries in the shared cache.");
        let _ = writeln!(out, "# TYPE comet_cache_entries gauge");
        let _ = writeln!(out, "comet_cache_entries {}", cache.entries);
        let _ = writeln!(
            out,
            "# HELP comet_cache_evictions_total Entries displaced by bounded-capacity inserts."
        );
        let _ = writeln!(out, "# TYPE comet_cache_evictions_total counter");
        let _ = writeln!(out, "comet_cache_evictions_total {}", cache.evictions);
        let _ = writeln!(
            out,
            "# HELP comet_cache_version Model version the live prediction cache belongs to."
        );
        let _ = writeln!(out, "# TYPE comet_cache_version gauge");
        let _ = writeln!(out, "comet_cache_version {}", cache.version);
        let _ = writeln!(
            out,
            "# HELP comet_stale_entries Stale-explanation entries by the model version that produced them."
        );
        let _ = writeln!(out, "# TYPE comet_stale_entries gauge");
        for (version, entries) in stale_versions {
            let _ = writeln!(out, "comet_stale_entries{{version=\"{version}\"}} {entries}");
        }

        let _ = writeln!(
            out,
            "# HELP comet_store_hits_total Explains served from the precomputed store."
        );
        let _ = writeln!(out, "# TYPE comet_store_hits_total counter");
        let _ = writeln!(out, "comet_store_hits_total {}", self.store_hits.load(Relaxed));
        let _ = writeln!(
            out,
            "# HELP comet_store_misses_total Explains that consulted the store and missed."
        );
        let _ = writeln!(out, "# TYPE comet_store_misses_total counter");
        let _ = writeln!(out, "comet_store_misses_total {}", self.store_misses.load(Relaxed));
        let _ = writeln!(
            out,
            "# HELP comet_store_hit_latency_seconds Store-hit handler latency (fine buckets)."
        );
        let _ = writeln!(out, "# TYPE comet_store_hit_latency_seconds histogram");
        self.store_hit_latency.0.render(&mut out, "comet_store_hit_latency_seconds", "");

        let _ = writeln!(
            out,
            "# HELP comet_model_version Registry version of the model serving traffic."
        );
        let _ = writeln!(out, "# TYPE comet_model_version gauge");
        let _ = writeln!(out, "comet_model_version {}", self.model_version.load(Relaxed));
        let _ = writeln!(out, "# HELP comet_model_swaps_total Model hot-swaps served so far.");
        let _ = writeln!(out, "# TYPE comet_model_swaps_total counter");
        let _ = writeln!(out, "comet_model_swaps_total {}", self.model_swaps.load(Relaxed));
        let _ = writeln!(
            out,
            "# HELP comet_model_rollbacks_total Rollbacks to the last-known-good model."
        );
        let _ = writeln!(out, "# TYPE comet_model_rollbacks_total counter");
        let _ = writeln!(out, "comet_model_rollbacks_total {}", self.model_rollbacks.load(Relaxed));

        let _ = writeln!(out, "# HELP comet_request_latency_seconds Request latency.");
        let _ = writeln!(out, "# TYPE comet_request_latency_seconds histogram");
        self.predict_latency.render(
            &mut out,
            "comet_request_latency_seconds",
            "endpoint=\"predict\"",
        );
        self.explain_latency.render(
            &mut out,
            "comet_request_latency_seconds",
            "endpoint=\"explain\"",
        );

        let _ = writeln!(
            out,
            "# HELP comet_request_latency_quantile_seconds Estimated latency quantiles."
        );
        let _ = writeln!(out, "# TYPE comet_request_latency_quantile_seconds gauge");
        for (label, hist) in
            [("predict", &self.predict_latency), ("explain", &self.explain_latency)]
        {
            for (q, qs) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                let _ = writeln!(
                    out,
                    "comet_request_latency_quantile_seconds{{endpoint=\"{label}\",quantile=\"{qs}\"}} {}",
                    hist.quantile_us(q) / 1e6
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_interpolate_within_buckets() {
        let h = Histogram::default();
        // 100 observations spread uniformly through the 100–250µs bucket.
        for _ in 0..100 {
            h.observe_us(200);
        }
        let p50 = h.quantile_us(0.5);
        assert!((100.0..=250.0).contains(&p50), "p50 {p50} outside its bucket");
        assert_eq!(h.count(), 100);
        // All mass in one bucket ⇒ p99 stays inside it too.
        assert!(h.quantile_us(0.99) <= 250.0);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::default();
        assert_eq!(h.quantile_us(0.5), 0.0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn overflow_bucket_saturates_at_last_bound() {
        let h = Histogram::default();
        h.observe_us(60_000_000); // a minute: beyond the last bound
        assert_eq!(h.quantile_us(0.5), 10_000_000.0);
    }

    #[test]
    fn prometheus_rendering_contains_the_advertised_families() {
        let reg = Registry::new();
        reg.record(Endpoint::Predict, StatusClass::Ok);
        reg.record(Endpoint::Explain, StatusClass::Shed);
        reg.record_shed(ShedReason::QueueFull);
        reg.record_search();
        reg.record_coalesced();
        reg.observe_latency(Endpoint::Explain, 12_000);
        reg.set_queue_depth(3);
        reg.set_batch_size(16);
        reg.record_batched(Endpoint::Explain, 24, 2);
        reg.record_tier(Tier::ReducedBudget);
        reg.record_tier(Tier::Store);
        reg.record_store_hit(12);
        reg.record_store_miss();
        reg.set_admission(48, 1_500);
        let cache =
            comet_models::QueryStats { total: 10, hits: 4, version: 3, ..Default::default() };
        let text = reg.render_prometheus(&cache, &[(1, 5), (2, 7)]);
        for needle in [
            "comet_requests_total{endpoint=\"predict\",status=\"200\"} 1",
            "comet_requests_total{endpoint=\"explain\",status=\"503\"} 1",
            "comet_shed_total 1",
            "comet_shed_reason_total{reason=\"queue-full\"} 1",
            "comet_shed_reason_total{reason=\"admission-limit\"} 0",
            "comet_admission_limit 48",
            "comet_queue_delay_seconds 0.0015",
            "comet_explain_tier_total{tier=\"reduced-budget\"} 1",
            "comet_explain_tier_total{tier=\"full\"} 0",
            "comet_explain_searches_total 1",
            "comet_explain_coalesced_total 1",
            "comet_queue_depth 3",
            "comet_queries_batched_total{endpoint=\"explain\"} 24",
            "comet_batch_occupancy{endpoint=\"explain\"} 0.75",
            "comet_cache_hit_rate 0.4",
            "comet_cache_version 3",
            "comet_stale_entries{version=\"1\"} 5",
            "comet_stale_entries{version=\"2\"} 7",
            "comet_explain_tier_total{tier=\"store\"} 1",
            "comet_store_hits_total 1",
            "comet_store_misses_total 1",
            "comet_store_hit_latency_seconds_count 1",
            "comet_request_latency_seconds_bucket{endpoint=\"explain\",le=\"+Inf\"} 1",
            "comet_request_latency_quantile_seconds{endpoint=\"explain\",quantile=\"0.99\"}",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }

    #[test]
    fn batch_occupancy_is_zero_without_chunks_or_batch_size() {
        let reg = Registry::new();
        assert_eq!(reg.batch_occupancy(Endpoint::Explain), 0.0);
        assert_eq!(reg.queries_batched_total(), 0);
        // Chunks without a configured batch size still report zero
        // (never a division by zero or a bogus occupancy).
        reg.record_batched(Endpoint::Explain, 8, 1);
        assert_eq!(reg.batch_occupancy(Endpoint::Explain), 0.0);
        assert_eq!(reg.queries_batched_total(), 8);
        reg.set_batch_size(8);
        assert_eq!(reg.batch_occupancy(Endpoint::Explain), 1.0);
    }

    #[test]
    fn status_codes_and_cross_endpoint_sums() {
        assert_eq!(StatusClass::PayloadTooLarge.code(), 413);
        assert_eq!(StatusClass::HeadersTooLarge.code(), 431);
        assert_eq!(Tier::ReducedBudget.label(), "reduced-budget");
        let reg = Registry::new();
        reg.record(Endpoint::Predict, StatusClass::Internal);
        reg.record(Endpoint::Explain, StatusClass::Internal);
        reg.record(Endpoint::Other, StatusClass::HeadersTooLarge);
        assert_eq!(reg.requests_with_status(StatusClass::Internal), 2);
        assert_eq!(reg.requests_with_status(StatusClass::HeadersTooLarge), 1);
        assert_eq!(reg.requests_with_status(StatusClass::Ok), 0);
        reg.record_chaos_panic();
        assert_eq!(reg.chaos_panic_count(), 1);
        assert!(reg
            .render_prometheus(&Default::default(), &[])
            .contains("comet_chaos_panics_total 1"));
    }

    #[test]
    fn cumulative_buckets_are_monotone() {
        let h = Histogram::default();
        for us in [50, 300, 700, 3_000, 80_000, 2_000_000, 60_000_000] {
            h.observe_us(us);
        }
        let mut out = String::new();
        h.render(&mut out, "t", "");
        let counts: Vec<u64> = out
            .lines()
            .filter(|l| l.starts_with("t_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert_eq!(counts.len(), BUCKET_BOUNDS_US.len() + 1);
        assert!(counts.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*counts.last().unwrap(), 7);
    }
}
