//! Consistent-hash key routing for the sharded serving fleet.
//!
//! A fleet of `M` comet-serve processes partitions the block-text key
//! space: each block's canonical text hashes (FNV-1a) onto a ring of
//! virtual points, and the first point at or after the key names the
//! owning shard. Both sides of the wire compute this independently —
//! `comet-router` to pick the upstream, and a `--shard i/M` server to
//! *enforce* ownership (a block outside its slice is answered `409
//! Conflict` naming the true owner) — so a routing bug is a loud,
//! attributable error instead of silently duplicated cache/store state.
//!
//! Virtual points (256 per shard) smooth the partition: with plain
//! modulo or one point per shard, adding a shard would remap nearly
//! every key; with a ring, joining shard `M` claims ~`1/(M+1)` of each
//! existing slice and nothing else moves.

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over `bytes` — the fleet's one true key hash. Stable across
/// versions by construction (the constants are the spec), so a router
/// and shards built from different commits still agree on ownership.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The routing key for a request's block text: the canonical
/// (parse → Display) form when the block parses — the same
/// normalization the explain coalescing key uses, so `"ADD  rcx,rax"`
/// and `"add rcx, rax"` land on the same shard — and the trimmed raw
/// text otherwise (unparseable blocks still get a stable owner; their
/// 400 always comes from the same shard).
pub fn block_key(text: &str) -> u64 {
    match comet_isa::parse_block(text) {
        Ok(block) => fnv1a(block.to_string().as_bytes()),
        Err(_) => fnv1a(text.trim().as_bytes()),
    }
}

/// Virtual points per shard. 256 keeps the worst-case slice within
/// ~2× of fair share for small fleets — at 64 a 4-shard ring left one
/// shard under 10% of the key space.
const VNODES: u32 = 256;

/// A consistent-hash ring over `M` shards. Construction is pure: every
/// process building `Ring::new(M)` gets the identical ring.
pub struct Ring {
    /// `(point, shard)` sorted by point.
    points: Vec<(u64, u32)>,
    shards: u32,
}

impl Ring {
    /// The ring for an `M`-shard fleet (`M` is clamped to at least 1).
    pub fn new(shards: u32) -> Ring {
        let shards = shards.max(1);
        let mut points = Vec::with_capacity((shards * VNODES) as usize);
        for shard in 0..shards {
            for vnode in 0..VNODES {
                let point = fnv1a(format!("comet-shard-{shard}-vnode-{vnode}").as_bytes());
                points.push((point, shard));
            }
        }
        // Ties (hash collisions between vnode labels) resolve to the
        // lower shard index on every host — sort is total.
        points.sort_unstable();
        Ring { points, shards }
    }

    /// Fleet size this ring was built for.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The shard owning `key`: the first point clockwise from the key,
    /// wrapping past the top of the hash space to the first point.
    pub fn owner(&self, key: u64) -> u32 {
        let idx = self.points.partition_point(|&(point, _)| point < key);
        self.points[idx % self.points.len()].1
    }

    /// The shard owning `text`'s block key.
    pub fn owner_of_block(&self, text: &str) -> u32 {
        self.owner(block_key(text))
    }
}

/// A parsed `--shard i/M` flag: this process is shard `index` of a
/// `count`-shard fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// This process's slot, `0 ≤ index < count`.
    pub index: u32,
    /// Fleet size.
    pub count: u32,
}

impl ShardSpec {
    /// Parse `"i/M"` (e.g. `"0/2"`). Rejects `index ≥ count` and
    /// zero-sized fleets.
    pub fn parse(s: &str) -> Option<ShardSpec> {
        let (index, count) = s.split_once('/')?;
        let index: u32 = index.trim().parse().ok()?;
        let count: u32 = count.trim().parse().ok()?;
        (count > 0 && index < count).then_some(ShardSpec { index, count })
    }
}

impl std::fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn block_key_is_canonicalization_invariant() {
        // Same block, different surface syntax → same key.
        assert_eq!(block_key("add rcx, rax"), block_key("ADD   RCX,  RAX"));
        // Different blocks → (virtually certainly) different keys.
        assert_ne!(block_key("add rcx, rax"), block_key("div rcx"));
        // Unparseable text still keys stably on its trimmed form.
        assert_eq!(block_key("  not asm at all  "), block_key("not asm at all"));
    }

    #[test]
    fn ring_ownership_is_deterministic_and_total() {
        let a = Ring::new(4);
        let b = Ring::new(4);
        for i in 0..10_000u64 {
            let key = fnv1a(&i.to_le_bytes());
            let owner = a.owner(key);
            assert!(owner < 4);
            assert_eq!(owner, b.owner(key), "two rings over the same fleet must agree");
        }
        // Extremes wrap cleanly.
        assert!(a.owner(0) < 4);
        assert!(a.owner(u64::MAX) < 4);
    }

    #[test]
    fn ring_spreads_keys_across_all_shards() {
        let ring = Ring::new(4);
        let mut counts = [0u32; 4];
        for i in 0..10_000u64 {
            counts[ring.owner(fnv1a(&i.to_le_bytes())) as usize] += 1;
        }
        for (shard, &count) in counts.iter().enumerate() {
            // 256 vnodes keep the imbalance modest; require every
            // shard to hold at least half its fair share.
            assert!(count > 10_000 / 8, "shard {shard} owns only {count} of 10000 keys");
        }
    }

    #[test]
    fn adding_a_shard_moves_only_a_slice() {
        let four = Ring::new(4);
        let five = Ring::new(5);
        let mut moved = 0u32;
        for i in 0..10_000u64 {
            let key = fnv1a(&i.to_le_bytes());
            let (before, after) = (four.owner(key), five.owner(key));
            if before != after {
                moved += 1;
                assert_eq!(after, 4, "a key may only move to the new shard, not reshuffle");
            }
        }
        // Expected movement is ~1/5 of keys; anything past 40% means
        // the ring is degenerating toward full remapping.
        assert!(moved < 4_000, "{moved} of 10000 keys moved on scale-out");
    }

    #[test]
    fn shard_spec_parses_and_rejects() {
        assert_eq!(ShardSpec::parse("0/2"), Some(ShardSpec { index: 0, count: 2 }));
        assert_eq!(ShardSpec::parse("3/4"), Some(ShardSpec { index: 3, count: 4 }));
        assert_eq!(ShardSpec::parse("2/2"), None, "index must be < count");
        assert_eq!(ShardSpec::parse("0/0"), None);
        assert_eq!(ShardSpec::parse("1"), None);
        assert_eq!(ShardSpec::parse("a/b"), None);
        assert_eq!(ShardSpec::parse("1/2").unwrap().to_string(), "1/2");
    }
}
