//! A bounded MPMC queue for accepted connections: the backpressure
//! point between the accept loop and the worker pool.
//!
//! `try_push` never blocks — a full queue returns the item to the
//! caller so the accept loop can shed load with an immediate 503
//! instead of queueing unboundedly (memory growth) or blocking (accept
//! backlog growth, then kernel-level drops the metrics never see).
//! `pop` blocks until an item arrives or the queue is shut down *and*
//! drained, which is exactly the graceful-drain semantic: after
//! shutdown workers finish everything already accepted, then exit.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

#[derive(Debug)]
struct State<T> {
    items: VecDeque<T>,
    shutdown: bool,
}

/// Fixed-capacity MPMC queue with shutdown-and-drain.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            state: Mutex::new(State { items: VecDeque::new(), shutdown: false }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Recover the state lock even if a holder panicked: every critical
    /// section here is a plain push/pop, which cannot tear the deque.
    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Non-blocking push. `Err(item)` hands the item back when the
    /// queue is full or shut down — the caller owns the shed decision.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut state = self.lock();
        if state.shutdown || state.items.len() >= self.capacity {
            return Err(item);
        }
        state.items.push_back(item);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Blocking pop. Returns `None` only after [`shutdown`]
    /// (BoundedQueue::shutdown) once every queued item has been
    /// handed out.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.shutdown {
                return None;
            }
            state = self.available.wait(state).unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Stop accepting new items and wake every blocked `pop`. Already
    /// queued items are still drained.
    pub fn shutdown(&self) {
        self.lock().shutdown = true;
        self.available.notify_all();
    }

    /// Items currently queued.
    pub fn depth(&self) -> usize {
        self.lock().items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_is_fifo() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_hands_the_item_back() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn shutdown_drains_then_returns_none() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.shutdown();
        assert_eq!(q.try_push(2), Err(2), "no new items after shutdown");
        assert_eq!(q.pop(), Some(1), "queued items still drain");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn shutdown_wakes_blocked_poppers() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        // Give the poppers a moment to block, then shut down.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.shutdown();
        for handle in handles {
            assert_eq!(handle.join().unwrap(), None);
        }
    }

    #[test]
    fn concurrent_producers_and_consumers_conserve_items() {
        let q = Arc::new(BoundedQueue::<u64>::new(8));
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut sum = 0u64;
                    while let Some(v) = q.pop() {
                        sum += v;
                    }
                    sum
                })
            })
            .collect();
        let mut pushed = 0u64;
        for v in 1..=1000u64 {
            loop {
                if q.try_push(v).is_ok() {
                    pushed += v;
                    break;
                }
                std::thread::yield_now();
            }
        }
        q.shutdown();
        let consumed: u64 = consumers.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(consumed, pushed);
    }
}
