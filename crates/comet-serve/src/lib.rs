//! comet-serve: a multi-threaded explanation service over the COMET
//! stack — `std::net` only, no async runtime.
//!
//! The crate turns the library pipeline (`comet-models` stack +
//! `comet-core` explainer) into a long-running HTTP service with the
//! operational properties a shared deployment needs:
//!
//! * **Backpressure, not collapse** — adaptive admission control
//!   ([`admission`]: CoDel-style queue-delay detection driving an AIMD
//!   concurrency limit) in front of a bounded queue ([`queue`]); every
//!   shed is an immediate 503 with a typed reason.
//! * **Degradation over failure** — explains ride a ladder
//!   (precomputed store → full search → reduced budget → stale cache →
//!   baseline probe) under deadline pressure or an open circuit; the
//!   tier is visible on the wire and in `/metrics` ([`server`]).
//! * **Precomputed explanations** — `--store` serves bitwise replicas
//!   of live search results from a `comet-store` file as the ladder's
//!   top tier, keyed by model version so hot-swaps structurally
//!   invalidate stale stores, and exposes the store's build-time
//!   importance rollups at `GET /analytics/categories` and
//!   `/analytics/opcodes`.
//! * **Work deduplication** — identical in-flight explains coalesce
//!   onto one search ([`server`]); the sharded prediction cache
//!   deduplicates repeated queries underneath.
//! * **Deadlines** — per-request budgets propagate from a header or
//!   body field into the model stack (watchdog for single predicts,
//!   cooperative gate for explain searches).
//! * **Observability** — atomic counters and latency histograms
//!   rendered as Prometheus text at `GET /metrics` ([`metrics`]);
//!   `GET /healthz` (liveness) and `GET /readyz` (readiness with
//!   reasons).
//! * **Graceful drain** — SIGINT/SIGTERM (or stdin EOF under the
//!   supervisor) stops the accept loop, in-flight requests finish,
//!   workers join ([`comet_core::cancel`]).
//! * **Crash containment** — the `comet-supervisor` binary
//!   ([`supervise`]) keeps N serve processes alive with jittered
//!   exponential-backoff restarts and a restart-rate circuit breaker.
//! * **Crash-safe model lifecycle** — a versioned on-disk registry
//!   ([`comet_models::ModelRegistry`]) plus RCU-published model epochs
//!   ([`lifecycle`]): `POST /admin/model` stages a candidate, shadow
//!   validates it against the live model, hot-swaps atomically, and
//!   rolls back automatically if probation traffic regresses; every
//!   response names the `model_version` that computed it.
//!
//! Endpoints: `POST /v1/predict`, `POST /v1/explain`,
//! `POST`/`GET /admin/model`, `GET /healthz`, `GET /readyz`,
//! `GET /metrics`, `GET /analytics/categories`,
//! `GET /analytics/opcodes`. Wire DTOs live in [`wire`]; the
//! HTTP/1.1 subset in [`http`]. Seeded fault injection for the chaos
//! harness lives in [`server::ChaosConfig`] (worker panics) and the
//! `comet-models` fault decorators (model-level faults).

pub mod admission;
pub mod event;
pub mod http;
pub mod lifecycle;
pub mod metrics;
pub mod queue;
pub mod route;
pub mod router;
pub mod server;
pub mod supervise;
pub mod sys;
pub mod timer;
pub mod wire;

pub use admission::{AdmissionConfig, AdmissionController, ShedReason};
pub use lifecycle::ShadowGates;
pub use metrics::{Endpoint, StatusClass, Tier};
pub use queue::BoundedQueue;
pub use route::{Ring, ShardSpec};
pub use router::{Router, RouterConfig};
pub use server::{ChaosConfig, ModelKind, ServeConfig, Server};
pub use supervise::{ChildSpec, Supervisor, SupervisorConfig};
