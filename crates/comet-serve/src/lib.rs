//! comet-serve: a multi-threaded explanation service over the COMET
//! stack — `std::net` only, no async runtime.
//!
//! The crate turns the library pipeline (`comet-models` stack +
//! `comet-core` explainer) into a long-running HTTP service with the
//! operational properties a shared deployment needs:
//!
//! * **Backpressure, not collapse** — a bounded queue between the
//!   accept loop and a fixed worker pool ([`queue`]); overflow is shed
//!   with an immediate 503.
//! * **Work deduplication** — identical in-flight explains coalesce
//!   onto one search ([`server`]); the sharded prediction cache
//!   deduplicates repeated queries underneath.
//! * **Deadlines** — per-request budgets propagate from a header or
//!   body field into the model stack (watchdog for single predicts,
//!   cooperative gate for explain searches).
//! * **Observability** — atomic counters and latency histograms
//!   rendered as Prometheus text at `GET /metrics` ([`metrics`]).
//! * **Graceful drain** — SIGINT stops the accept loop, in-flight
//!   requests finish, workers join ([`comet_core::cancel`]).
//!
//! Endpoints: `POST /v1/predict`, `POST /v1/explain`, `GET /healthz`,
//! `GET /metrics`. Wire DTOs live in [`wire`]; the HTTP/1.1 subset in
//! [`http`].

pub mod http;
pub mod metrics;
pub mod queue;
pub mod server;
pub mod wire;

pub use metrics::Endpoint;
pub use queue::BoundedQueue;
pub use server::{ModelKind, ServeConfig, Server};
