//! A hashed timer wheel for connection deadlines.
//!
//! The old thread-per-connection front end leaned on per-stream
//! blocking read timeouts (`set_read_timeout`) to bound idle
//! keep-alive waits and slow-loris senders. A readiness loop owns
//! thousands of sockets on one thread, so deadlines become data: each
//! connection's next deadline lives in a coarse-grained wheel, the
//! reactor's `epoll_wait` timeout is the time to the next tick, and a
//! tick sweeps one slot. Insert and cancel are O(1); a full wheel
//! revolution covers `SLOTS × tick` and longer deadlines simply stay
//! in their slot for another lap (`rounds` counter).
//!
//! Cancellation is lazy: entries carry the connection's slot
//! generation, and the sweep hands back `(token, deadline)` pairs for
//! the reactor to validate against the connection's *current* state —
//! a connection that progressed (or was replaced by a newer one in the
//! same slab slot) ignores the stale fire. This keeps the wheel free
//! of back-pointers and makes re-arming a deadline a plain re-insert.

use std::time::{Duration, Instant};

/// Wheel granularity. Connection deadlines are hundreds of
/// milliseconds to seconds; 25ms ticks keep expiry error under 5% of
/// the shortest real timeout while a full 256-slot revolution spans
/// 6.4s without relapping.
pub const TICK: Duration = Duration::from_millis(25);

const SLOTS: usize = 256;

/// One armed deadline.
struct Entry {
    /// Opaque connection token (slab slot + generation).
    token: u64,
    /// Absolute expiry.
    deadline: Instant,
    /// Laps left before this entry is due in its slot.
    rounds: u32,
}

/// The wheel itself. Single-owner (one per reactor thread) — no locks.
pub struct TimerWheel {
    slots: Vec<Vec<Entry>>,
    /// Index of the next slot to sweep.
    cursor: usize,
    /// The absolute time the cursor slot sweeps at.
    next_tick: Instant,
    /// Armed entries (including stale ones not yet swept).
    len: usize,
}

impl TimerWheel {
    /// A wheel whose first tick is one `TICK` after `now`.
    pub fn new(now: Instant) -> TimerWheel {
        TimerWheel {
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
            cursor: 0,
            next_tick: now + TICK,
            len: 0,
        }
    }

    /// Arm `token` to fire at `deadline` (clamped to at least the next
    /// tick — the wheel never fires in the past).
    pub fn insert(&mut self, token: u64, deadline: Instant) {
        let until = deadline.saturating_duration_since(self.next_tick);
        let ticks_ahead = (until.as_nanos() / TICK.as_nanos()) as usize;
        let slot = (self.cursor + ticks_ahead) % SLOTS;
        let rounds = (ticks_ahead / SLOTS) as u32;
        self.slots[slot].push(Entry { token, deadline, rounds });
        self.len += 1;
    }

    /// How long `epoll_wait` may sleep before the next sweep is due.
    /// Zero once the next tick is already in the past.
    pub fn until_next_tick(&self, now: Instant) -> Duration {
        self.next_tick.saturating_duration_since(now)
    }

    /// Sweep every slot that has come due by `now`, appending expired
    /// `(token, deadline)` pairs to `fired`. The caller re-validates
    /// each against live connection state (lazy cancellation).
    pub fn advance(&mut self, now: Instant, fired: &mut Vec<(u64, Instant)>) {
        while now >= self.next_tick {
            let slot = &mut self.slots[self.cursor];
            let mut i = 0;
            while i < slot.len() {
                if slot[i].rounds > 0 {
                    slot[i].rounds -= 1;
                    i += 1;
                } else {
                    let entry = slot.swap_remove(i);
                    self.len -= 1;
                    fired.push((entry.token, entry.deadline));
                }
            }
            self.cursor = (self.cursor + 1) % SLOTS;
            self.next_tick += TICK;
        }
    }

    /// Armed entries, stale included.
    pub fn len(&self) -> usize {
        self.len
    }

    /// No armed entries at all.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_at_and_not_before_the_deadline() {
        let start = Instant::now();
        let mut wheel = TimerWheel::new(start);
        wheel.insert(1, start + Duration::from_millis(100));
        let mut fired = Vec::new();

        // Two ticks in: nothing due yet.
        wheel.advance(start + Duration::from_millis(50), &mut fired);
        assert!(fired.is_empty());

        // Past the deadline (plus a tick of slack): fired exactly once.
        wheel.advance(start + Duration::from_millis(150), &mut fired);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].0, 1);
        assert!(wheel.is_empty());

        fired.clear();
        wheel.advance(start + Duration::from_millis(400), &mut fired);
        assert!(fired.is_empty(), "an entry fires only once");
    }

    #[test]
    fn long_deadlines_survive_full_revolutions() {
        let start = Instant::now();
        let mut wheel = TimerWheel::new(start);
        // 10s is beyond one 6.4s revolution — needs a rounds lap.
        wheel.insert(9, start + Duration::from_secs(10));
        let mut fired = Vec::new();
        wheel.advance(start + Duration::from_secs(7), &mut fired);
        assert!(fired.is_empty(), "must not fire a lap early");
        wheel.advance(start + Duration::from_secs(11), &mut fired);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].0, 9);
    }

    #[test]
    fn many_entries_fire_in_deadline_order_per_sweep() {
        let start = Instant::now();
        let mut wheel = TimerWheel::new(start);
        for i in 0..64u64 {
            wheel.insert(i, start + Duration::from_millis(30 * (i + 1)));
        }
        assert_eq!(wheel.len(), 64);
        let mut fired = Vec::new();
        wheel.advance(start + Duration::from_secs(3), &mut fired);
        assert_eq!(fired.len(), 64, "everything due fires");
        assert!(wheel.is_empty());
    }

    #[test]
    fn past_deadlines_fire_on_the_next_tick() {
        let start = Instant::now();
        let mut wheel = TimerWheel::new(start);
        wheel.insert(3, start); // already expired at insert
        let mut fired = Vec::new();
        wheel.advance(start + TICK, &mut fired);
        assert_eq!(fired.len(), 1);
    }
}
