//! The readiness-driven front end: epoll reactors + the CPU worker
//! pool, glued by a bounded job queue and a wakeup pipe.
//!
//! # Why a reactor
//!
//! The original front end was thread-per-connection: an accept loop
//! polled a nonblocking listener on a 500µs sleep, flipped each
//! accepted socket back to blocking, and parked one worker thread per
//! connection in blocking reads. That tops out at a thread-pool's
//! worth of concurrent sockets and burns a sleep/poll cycle even when
//! idle. Here the sockets never block and never own a thread: one (or
//! `--event-threads N`) reactor threads own *all* connections through
//! one `epoll` instance each, and the worker pool only ever sees
//! complete, parsed requests.
//!
//! # Per-connection state machine
//!
//! ```text
//!             accept
//!               │
//!               ▼           request complete
//!  ┌──► ReadHeaders/ReadBody ───────────────► Dispatched (job queued)
//!  │      (EPOLLIN, RequestParser)                  │ worker finishes,
//!  │                                                │ wakeup pipe
//!  │    keep-alive (re-arm idle deadline,           ▼
//!  └─── parse pipelined leftovers) ◄───────── WriteResponse
//!                                              (EPOLLOUT on a full
//!               close ◄───────────────────────  socket buffer)
//! ```
//!
//! `ReadHeaders` and `ReadBody` are one reactor state (`Reading`) —
//! the incremental [`RequestParser`] tracks which grammar phase the
//! bytes are in; the reactor only cares about readiness. While a job
//! is `Dispatched` the connection's interest set is empty: sequential
//! keep-alive means no read-ahead, which is also the backpressure
//! story (a client that pipelines just waits in its socket buffer).
//!
//! # Deadlines
//!
//! Blocking reads carried their timeouts in the socket
//! (`set_read_timeout`); readiness reads carry them in a hashed
//! [`TimerWheel`]. Idle keep-alive connections get a silent-close
//! deadline; once a request's first byte arrives the same budget
//! re-arms as a slow-loris deadline answered with 408; a stalled
//! response write gets a silent-close deadline. `epoll_wait`'s timeout
//! is the time to the wheel's next 25ms tick, so cancellation and
//! expiry are both noticed within a tick — no spin-sleeps anywhere.
//!
//! # Drain
//!
//! Cancelling the service's token makes every reactor deregister the
//! listener, close connections with no request in flight, and shut the
//! job queue down; queued and executing jobs still complete and their
//! responses are written in full before the reactor exits — a request
//! the server committed to is never truncated. Workers exit once the
//! queue drains; [`FrontEnd::join`] joins reactors first, workers
//! second.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::http::{HttpError, Request, RequestParser};
use crate::queue::BoundedQueue;
use crate::sys::{self, Epoll, EpollEvent, WakeReader, WakeWriter};
use crate::timer::{TimerWheel, TICK};
use comet_core::cancel::CancelToken;

/// What the front end serves. One implementation wraps the COMET
/// dispatch table ([`crate::server`]); another proxies to a sharded
/// fleet ([`crate::router`]). Everything admission- and
/// metrics-shaped lives behind this trait so the reactor stays pure
/// I/O machinery.
pub trait Service: Send + Sync + 'static {
    /// Build one worker's handler (called on the worker thread; owns
    /// worker-local state such as a `BatchExec`).
    fn make_worker(&self) -> Box<dyn WorkerHandler>;

    /// Admission decision for a freshly parsed request, given the
    /// current queue depth. `Err` carries a prebuilt response (a 503
    /// shed) to write before closing; the implementation records its
    /// own shed metrics.
    fn admit(&self, queued: usize) -> Result<(), Vec<u8>>;

    /// The response for a request that passed admission but found the
    /// bounded queue full (the hard backstop behind the adaptive
    /// limit).
    fn shed_overflow(&self) -> Vec<u8>;

    /// A job made it into the queue; `depth` is the new queue depth.
    fn enqueued(&self, depth: usize);

    /// A worker picked a job up after `sojourn_us` in the queue.
    /// Implementations feed their admission controller and mark the
    /// job in-flight.
    fn dequeued(&self, sojourn_us: u64, depth: usize);

    /// A job finished (even by panicking — the worker always catches).
    fn finished(&self, panicked: bool);

    /// The response for an HTTP-level failure on a connection
    /// (malformed bytes, slow-loris timeout, size caps). `None` closes
    /// silently (clean EOF, socket errors). Implementations record
    /// their own error metrics.
    fn http_error(&self, err: &HttpError) -> Option<Vec<u8>>;

    /// Whether the `n`-th accepted connection carries an injected
    /// chaos panic (seeded fault injection; see
    /// [`crate::server::ChaosConfig`]).
    fn chaos_panics(&self, conn_index: u64) -> bool;

    /// Called by the worker immediately before an injected panic
    /// fires, so the chaos metric counts scheduled panics exactly.
    fn on_chaos_panic(&self);

    /// The drain token. Cancellation is observed within one timer
    /// tick.
    fn cancel(&self) -> &CancelToken;

    /// Open-connection gauge across all reactors.
    fn set_connections(&self, open: u64);
}

/// Per-worker request handler. `handle` runs on a worker thread and
/// returns the complete response bytes; `close` says the connection
/// closes after this response (so the handler can set the
/// `Connection` header honestly).
pub trait WorkerHandler {
    /// Handle one request, returning full response bytes.
    fn handle(&mut self, request: &Request, close: bool) -> Vec<u8>;
}

/// One parsed request bound for the worker pool.
pub struct Job {
    /// Which reactor to hand the completion back to.
    sink: Arc<CompletionSink>,
    slot: u32,
    gen: u32,
    request: Request,
    /// The request asked to close (the worker additionally ORs in
    /// drain state at execution time).
    close: bool,
    enqueued: Instant,
    /// This connection's injected chaos panic fires on this job.
    chaos: bool,
}

/// A finished job on its way back to the owning reactor.
struct Completion {
    slot: u32,
    gen: u32,
    /// `None` means the handler panicked — close without a response,
    /// exactly like the threaded front end dropped the stream.
    bytes: Option<Vec<u8>>,
    close: bool,
}

/// One reactor's inbound completion mailbox plus the pipe that wakes
/// it.
struct CompletionSink {
    done: Mutex<Vec<Completion>>,
    waker: WakeWriter,
}

impl CompletionSink {
    fn push(&self, completion: Completion) {
        self.done.lock().unwrap_or_else(|p| p.into_inner()).push(completion);
        self.waker.wake();
    }
}

/// Front-end tunables, carved out of `ServeConfig`.
pub struct FrontEndConfig {
    /// Reactor (event-loop) threads.
    pub event_threads: usize,
    /// CPU worker threads.
    pub workers: usize,
    /// Bounded job-queue depth.
    pub queue_depth: usize,
    /// Idle / slow-loris / stalled-write budget; zero disables all
    /// connection deadlines (tests only).
    pub idle_timeout: Duration,
}

/// The running front end: reactor threads + worker threads.
pub struct FrontEnd {
    reactors: Vec<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    queue: Arc<BoundedQueue<Job>>,
}

impl FrontEnd {
    /// Spawn reactors and workers over an already-bound listener.
    pub fn start(
        listener: TcpListener,
        service: Arc<dyn Service>,
        config: FrontEndConfig,
    ) -> std::io::Result<FrontEnd> {
        listener.set_nonblocking(true)?;
        let listener = Arc::new(listener);
        let queue = Arc::new(BoundedQueue::<Job>::new(config.queue_depth));
        let open = Arc::new(AtomicU64::new(0));
        let accepted = Arc::new(AtomicU64::new(0));

        let mut reactors = Vec::new();
        for i in 0..config.event_threads.max(1) {
            // Fallible setup happens on the caller's thread so a bad
            // epoll/pipe surfaces as a bind-time error, not a panic.
            let epoll = Epoll::new()?;
            let (wake_rx, waker) = sys::wake_pipe()?;
            epoll.add(listener.as_raw_fd(), sys::EPOLLIN | sys::EPOLLEXCLUSIVE, TOKEN_LISTENER)?;
            epoll.add(wake_rx.fd(), sys::EPOLLIN, TOKEN_WAKER)?;
            let sink = Arc::new(CompletionSink { done: Mutex::new(Vec::new()), waker });
            let mut reactor = Reactor {
                epoll,
                listener: Arc::clone(&listener),
                listener_armed: true,
                service: Arc::clone(&service),
                queue: Arc::clone(&queue),
                sink,
                wake_rx,
                slab: Slab::default(),
                open: Arc::clone(&open),
                accepted: Arc::clone(&accepted),
                idle: config.idle_timeout,
                draining: false,
            };
            reactors.push(
                std::thread::Builder::new()
                    .name(format!("comet-serve-reactor-{i}"))
                    .spawn(move || reactor.run())
                    .expect("spawn reactor"),
            );
        }

        let workers = (0..config.workers.max(1))
            .map(|i| {
                let service = Arc::clone(&service);
                let queue = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("comet-serve-worker-{i}"))
                    .spawn(move || worker_loop(&service, &queue))
                    .expect("spawn worker")
            })
            .collect();

        Ok(FrontEnd { reactors, workers, queue })
    }

    /// Block until drain completes and every thread exits. Join order
    /// matters: reactors first (each exits once its last connection's
    /// response is written — the queue must stay up for those
    /// in-flight requests), then the queue is shut down, then workers
    /// (they exit once the shut queue drains).
    pub fn join(mut self) {
        for reactor in self.reactors.drain(..) {
            let _ = reactor.join();
        }
        self.queue.shutdown();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Pop jobs until the queue shuts down and drains. Chaos panics and
/// genuine handler panics are both caught here — a worker never dies
/// silently; it reports the panic and moves on.
fn worker_loop(service: &Arc<dyn Service>, queue: &BoundedQueue<Job>) {
    let mut handler = service.make_worker();
    while let Some(job) = queue.pop() {
        let sojourn_us = job.enqueued.elapsed().as_micros() as u64;
        service.dequeued(sojourn_us, queue.depth());
        // During drain, answer the in-flight request and close — the
        // same rule the threaded dispatch applied.
        let close = job.close || service.cancel().is_cancelled();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if job.chaos {
                service.on_chaos_panic();
                panic!("chaos: injected worker panic");
            }
            handler.handle(&job.request, close)
        }));
        service.finished(result.is_err());
        let completion = match result {
            Ok(bytes) => Completion { slot: job.slot, gen: job.gen, bytes: Some(bytes), close },
            Err(_) => Completion { slot: job.slot, gen: job.gen, bytes: None, close: true },
        };
        job.sink.push(completion);
    }
}

/// epoll token for the shared listener.
const TOKEN_LISTENER: u64 = u64::MAX;
/// epoll token for the wakeup pipe's read end.
const TOKEN_WAKER: u64 = u64::MAX - 1;

/// Pack a slab slot and its generation into an epoll token.
fn token(slot: u32, gen: u32) -> u64 {
    ((gen as u64) << 32) | slot as u64
}

/// What an armed connection deadline means when it fires.
#[derive(Clone, Copy, PartialEq, Eq)]
enum DeadlineKind {
    /// Idle keep-alive between requests: close silently.
    Idle,
    /// A request started but stalled (slow loris): answer 408, close.
    Request,
    /// A response write stalled on a full socket buffer: close.
    Write,
}

/// Reactor-visible connection lifecycle (the parser tracks the finer
/// ReadHeaders/ReadBody distinction).
#[derive(Clone, Copy, PartialEq, Eq)]
enum ConnState {
    /// Reading request bytes (EPOLLIN).
    Reading,
    /// A job is queued or executing; interest set is empty.
    Dispatched,
    /// Writing a response (EPOLLOUT once the socket buffer filled).
    Writing,
}

/// One connection owned by a reactor.
struct Conn {
    stream: TcpStream,
    gen: u32,
    state: ConnState,
    parser: RequestParser,
    /// Armed deadline. Superseded wheel entries are cancelled lazily:
    /// a fire only counts if its `Instant` matches this field.
    deadline: Option<(Instant, DeadlineKind)>,
    write_buf: Vec<u8>,
    write_pos: usize,
    close_after_write: bool,
    /// The chaos schedule marked this connection; fires on its first
    /// job.
    chaos: bool,
}

/// Generation-tagged connection slab. Slot indices are reused;
/// generations make stale epoll events and timer fires harmless.
#[derive(Default)]
struct Slab {
    conns: Vec<Option<Conn>>,
    gens: Vec<u32>,
    free: Vec<u32>,
}

impl Slab {
    /// Insert, assigning the slot's current generation. Returns
    /// `(slot, gen)`.
    fn insert(&mut self, mut conn: Conn) -> (u32, u32) {
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                self.conns.push(None);
                self.gens.push(1);
                (self.conns.len() - 1) as u32
            }
        };
        let gen = self.gens[slot as usize];
        conn.gen = gen;
        self.conns[slot as usize] = Some(conn);
        (slot, gen)
    }

    /// The live connection at `slot` if its generation matches.
    fn get_mut(&mut self, slot: u32, gen: u32) -> Option<&mut Conn> {
        match self.conns.get_mut(slot as usize) {
            Some(Some(conn)) if conn.gen == gen => Some(conn),
            _ => None,
        }
    }

    /// Remove and return the connection, bumping the slot generation.
    fn remove(&mut self, slot: u32) -> Option<Conn> {
        let conn = self.conns.get_mut(slot as usize)?.take()?;
        // Generation 0 is never assigned, so a wrapped counter still
        // never collides with a stale token.
        self.gens[slot as usize] = self.gens[slot as usize].wrapping_add(1).max(1);
        self.free.push(slot);
        Some(conn)
    }

    fn len(&self) -> usize {
        self.conns.iter().filter(|c| c.is_some()).count()
    }
}

/// Whether the reading loop should stop driving this connection.
#[derive(PartialEq, Eq)]
enum ReadFlow {
    /// Keep feeding the parser from the socket.
    Continue,
    /// The connection dispatched, errored, or closed — stop reading.
    Stop,
}

struct Reactor {
    epoll: Epoll,
    listener: Arc<TcpListener>,
    /// Listener currently registered in this epoll set (disarmed
    /// during accept-failure backoff and drain).
    listener_armed: bool,
    service: Arc<dyn Service>,
    queue: Arc<BoundedQueue<Job>>,
    sink: Arc<CompletionSink>,
    wake_rx: WakeReader,
    slab: Slab,
    /// Open connections across all reactors (shared gauge).
    open: Arc<AtomicU64>,
    /// Accept counter across all reactors; indexes the chaos schedule.
    accepted: Arc<AtomicU64>,
    idle: Duration,
    draining: bool,
}

impl Reactor {
    fn run(&mut self) {
        let mut wheel = TimerWheel::new(Instant::now());
        let mut events = [EpollEvent { events: 0, data: 0 }; 256];
        let mut ready: Vec<(u32, u64)> = Vec::new();
        let mut fired: Vec<(u64, Instant)> = Vec::new();
        // Deadlines to arm, accumulated per iteration (keeps the wheel
        // out of the per-connection borrow scopes).
        let mut arm: Vec<(u64, Instant)> = Vec::new();
        loop {
            // The wait never exceeds one tick, so timer expiry and
            // cancellation are both noticed within TICK — no
            // spin-sleeps, no unbounded blocking.
            let timeout = wheel.until_next_tick(Instant::now()).min(TICK);
            let timeout_ms = timeout.as_micros().div_ceil(1000) as i32;
            ready.clear();
            if let Ok(batch) = self.epoll.wait(&mut events, timeout_ms.max(1)) {
                ready.extend(batch.iter().map(|ev| ({ ev.events }, { ev.data })));
            }

            for &(mask, data) in &ready {
                match data {
                    TOKEN_LISTENER => self.accept_burst(&mut arm),
                    TOKEN_WAKER => self.wake_rx.drain(),
                    tok => self.on_conn_event(tok, mask, &mut arm),
                }
            }

            // Completions from the worker pool (the waker above is the
            // doorbell; the mailbox is drained every iteration).
            let done =
                std::mem::take(&mut *self.sink.done.lock().unwrap_or_else(|p| p.into_inner()));
            for completion in done {
                self.on_completion(completion, &mut arm);
            }

            // Timer sweep, with lazy-cancel validation per fire.
            fired.clear();
            wheel.advance(Instant::now(), &mut fired);
            for &(tok, deadline) in &fired {
                if tok == TOKEN_LISTENER {
                    self.arm_listener();
                } else {
                    self.on_deadline(tok, deadline, &mut arm);
                }
            }
            for (tok, deadline) in arm.drain(..) {
                wheel.insert(tok, deadline);
            }

            if self.service.cancel().is_cancelled() {
                self.drain_step();
                if self.slab.len() == 0 {
                    return;
                }
            }
        }
    }

    // ----- accept ------------------------------------------------------

    /// Accept until the listener runs dry. A non-WouldBlock accept
    /// failure (fd exhaustion, say) disarms the listener for one tick
    /// instead of letting level-triggered readiness spin the loop.
    fn accept_burst(&mut self, arm: &mut Vec<(u64, Instant)>) {
        if self.draining {
            return;
        }
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => self.register(stream, arm),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(_) => {
                    if self.listener_armed {
                        let _ = self.epoll.delete(self.listener.as_raw_fd());
                        self.listener_armed = false;
                        arm.push((TOKEN_LISTENER, Instant::now() + TICK));
                    }
                    return;
                }
            }
        }
    }

    /// Re-register the listener after an accept-failure backoff tick.
    /// EPOLLEXCLUSIVE registrations cannot be `EPOLL_CTL_MOD`-ed, so
    /// disarm/arm is a delete/add pair.
    fn arm_listener(&mut self) {
        if !self.listener_armed
            && !self.draining
            && self
                .epoll
                .add(self.listener.as_raw_fd(), sys::EPOLLIN | sys::EPOLLEXCLUSIVE, TOKEN_LISTENER)
                .is_ok()
        {
            self.listener_armed = true;
        }
    }

    /// Slot a fresh connection into the slab and start reading.
    fn register(&mut self, stream: TcpStream, arm: &mut Vec<(u64, Instant)>) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let n = self.accepted.fetch_add(1, Relaxed);
        let chaos = self.service.chaos_panics(n);
        let (slot, gen) = self.slab.insert(Conn {
            stream,
            gen: 0,
            state: ConnState::Reading,
            parser: RequestParser::new(),
            deadline: None,
            write_buf: Vec::new(),
            write_pos: 0,
            close_after_write: false,
            chaos,
        });
        let conn = self.slab.get_mut(slot, gen).expect("just inserted");
        if self.epoll.add(conn.stream.as_raw_fd(), sys::EPOLLIN, token(slot, gen)).is_err() {
            self.slab.remove(slot);
            return;
        }
        if !self.idle.is_zero() {
            let deadline = Instant::now() + self.idle;
            conn.deadline = Some((deadline, DeadlineKind::Idle));
            arm.push((token(slot, gen), deadline));
        }
        let open = self.open.fetch_add(1, Relaxed) + 1;
        self.service.set_connections(open);
    }

    /// Tear a connection down: epoll deregistration, fd close, slot
    /// generation bump, gauge update.
    fn close(&mut self, slot: u32) {
        if let Some(conn) = self.slab.remove(slot) {
            let _ = self.epoll.delete(conn.stream.as_raw_fd());
            drop(conn);
            let open = self.open.fetch_sub(1, Relaxed).saturating_sub(1);
            self.service.set_connections(open);
        }
    }

    // ----- readiness ---------------------------------------------------

    fn on_conn_event(&mut self, tok: u64, mask: u32, arm: &mut Vec<(u64, Instant)>) {
        let slot = (tok & 0xffff_ffff) as u32;
        let gen = (tok >> 32) as u32;
        let Some(conn) = self.slab.get_mut(slot, gen) else { return };
        match conn.state {
            // Errors and hangups surface through read()/write() on the
            // respective path, so ERR/HUP route the same way as data.
            ConnState::Reading => self.do_read(slot, gen, arm),
            ConnState::Writing => {
                if mask & (sys::EPOLLOUT | sys::EPOLLERR | sys::EPOLLHUP) != 0 {
                    self.do_write(slot, gen, arm);
                }
            }
            // Interest is empty while dispatched; a straggling ERR/HUP
            // is discovered when the response write fails.
            ConnState::Dispatched => {}
        }
    }

    /// Feed the parser from the socket until it would block, a request
    /// dispatches, or the connection dies.
    fn do_read(&mut self, slot: u32, gen: u32, arm: &mut Vec<(u64, Instant)>) {
        let mut buf = [0u8; 16 * 1024];
        loop {
            let Some(conn) = self.slab.get_mut(slot, gen) else { return };
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    let err = conn.parser.eof_error();
                    self.fail(slot, gen, &err, arm);
                    return;
                }
                Ok(n) => {
                    conn.parser.push(&buf[..n]);
                    // First byte of a request: the idle deadline
                    // becomes a slow-loris (408) deadline.
                    if !self.idle.is_zero()
                        && conn.parser.started()
                        && !matches!(conn.deadline, Some((_, DeadlineKind::Request)))
                    {
                        let deadline = Instant::now() + self.idle;
                        conn.deadline = Some((deadline, DeadlineKind::Request));
                        arm.push((token(slot, gen), deadline));
                    }
                    if self.advance_parser(slot, gen, arm) == ReadFlow::Stop {
                        return;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close(slot);
                    return;
                }
            }
        }
    }

    /// Drive the parser over whatever is buffered. At most one request
    /// dispatches (sequential keep-alive); errors answer and close.
    fn advance_parser(&mut self, slot: u32, gen: u32, arm: &mut Vec<(u64, Instant)>) -> ReadFlow {
        let Some(conn) = self.slab.get_mut(slot, gen) else { return ReadFlow::Stop };
        match conn.parser.poll() {
            Ok(None) => ReadFlow::Continue,
            Ok(Some(request)) => {
                self.dispatch(slot, gen, request, arm);
                ReadFlow::Stop
            }
            Err(err) => {
                self.fail(slot, gen, &err, arm);
                ReadFlow::Stop
            }
        }
    }

    /// Admission + enqueue for one parsed request.
    fn dispatch(&mut self, slot: u32, gen: u32, request: Request, arm: &mut Vec<(u64, Instant)>) {
        if let Err(shed) = self.service.admit(self.queue.depth()) {
            self.start_write(slot, gen, shed, true, arm);
            return;
        }
        let Some(conn) = self.slab.get_mut(slot, gen) else { return };
        let close = request.close;
        let chaos = std::mem::take(&mut conn.chaos);
        let fd = conn.stream.as_raw_fd();
        let job = Job {
            sink: Arc::clone(&self.sink),
            slot,
            gen,
            request,
            close,
            enqueued: Instant::now(),
            chaos,
        };
        match self.queue.try_push(job) {
            Ok(()) => {
                self.service.enqueued(self.queue.depth());
                let Some(conn) = self.slab.get_mut(slot, gen) else { return };
                conn.state = ConnState::Dispatched;
                conn.deadline = None;
                let _ = self.epoll.modify(fd, 0, token(slot, gen));
            }
            Err(_rejected) => {
                let shed = self.service.shed_overflow();
                self.start_write(slot, gen, shed, true, arm);
            }
        }
    }

    /// Answer an HTTP-level failure (or close silently, per the
    /// service's mapping).
    fn fail(&mut self, slot: u32, gen: u32, err: &HttpError, arm: &mut Vec<(u64, Instant)>) {
        match self.service.http_error(err) {
            Some(bytes) => self.start_write(slot, gen, bytes, true, arm),
            None => self.close(slot),
        }
    }

    // ----- writes ------------------------------------------------------

    /// Begin writing a response; most complete inline without ever
    /// touching EPOLLOUT.
    fn start_write(
        &mut self,
        slot: u32,
        gen: u32,
        bytes: Vec<u8>,
        close: bool,
        arm: &mut Vec<(u64, Instant)>,
    ) {
        let Some(conn) = self.slab.get_mut(slot, gen) else { return };
        conn.state = ConnState::Writing;
        conn.write_buf = bytes;
        conn.write_pos = 0;
        conn.close_after_write = close;
        conn.deadline = None;
        self.do_write(slot, gen, arm);
    }

    /// Push buffered response bytes until done or the socket buffer
    /// fills.
    fn do_write(&mut self, slot: u32, gen: u32, arm: &mut Vec<(u64, Instant)>) {
        loop {
            let Some(conn) = self.slab.get_mut(slot, gen) else { return };
            if conn.write_pos == conn.write_buf.len() {
                if conn.close_after_write {
                    self.close(slot);
                } else {
                    self.keepalive_reset(slot, gen, arm);
                }
                return;
            }
            match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
                Ok(0) => {
                    self.close(slot);
                    return;
                }
                Ok(n) => conn.write_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    // Socket buffer full: hand the rest to EPOLLOUT
                    // and bound the stall with a write deadline.
                    let fd = conn.stream.as_raw_fd();
                    if !self.idle.is_zero()
                        && !matches!(conn.deadline, Some((_, DeadlineKind::Write)))
                    {
                        let deadline = Instant::now() + self.idle;
                        conn.deadline = Some((deadline, DeadlineKind::Write));
                        arm.push((token(slot, gen), deadline));
                    }
                    let _ = self.epoll.modify(fd, sys::EPOLLOUT, token(slot, gen));
                    return;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close(slot);
                    return;
                }
            }
        }
    }

    /// A response went out on a keep-alive connection: back to
    /// reading, and parse any pipelined leftovers immediately (their
    /// bytes are already buffered, so no readiness event will announce
    /// them).
    fn keepalive_reset(&mut self, slot: u32, gen: u32, arm: &mut Vec<(u64, Instant)>) {
        if self.draining {
            // No further requests during drain (the worker marks
            // responses `Connection: close` after cancellation, so
            // this is a belt-and-suspenders close for completions
            // computed just before the cancel).
            self.close(slot);
            return;
        }
        let idle = self.idle;
        let Some(conn) = self.slab.get_mut(slot, gen) else { return };
        conn.state = ConnState::Reading;
        conn.write_buf = Vec::new();
        conn.write_pos = 0;
        let fd = conn.stream.as_raw_fd();
        if !idle.is_zero() {
            let kind =
                if conn.parser.started() { DeadlineKind::Request } else { DeadlineKind::Idle };
            let deadline = Instant::now() + idle;
            conn.deadline = Some((deadline, kind));
            arm.push((token(slot, gen), deadline));
        } else {
            conn.deadline = None;
        }
        let _ = self.epoll.modify(fd, sys::EPOLLIN, token(slot, gen));
        let _ = self.advance_parser(slot, gen, arm);
    }

    // ----- completions and deadlines -----------------------------------

    fn on_completion(&mut self, completion: Completion, arm: &mut Vec<(u64, Instant)>) {
        let Completion { slot, gen, bytes, close } = completion;
        let Some(conn) = self.slab.get_mut(slot, gen) else { return };
        if conn.state != ConnState::Dispatched {
            return;
        }
        match bytes {
            Some(bytes) => self.start_write(slot, gen, bytes, close, arm),
            // Handler panicked: drop the connection without a
            // response, as the threaded front end did.
            None => self.close(slot),
        }
    }

    fn on_deadline(&mut self, tok: u64, fired: Instant, arm: &mut Vec<(u64, Instant)>) {
        let slot = (tok & 0xffff_ffff) as u32;
        let gen = (tok >> 32) as u32;
        let Some(conn) = self.slab.get_mut(slot, gen) else { return };
        match conn.deadline {
            Some((deadline, kind)) if deadline == fired => {
                conn.deadline = None;
                match kind {
                    DeadlineKind::Idle | DeadlineKind::Write => self.close(slot),
                    DeadlineKind::Request => self.fail(slot, gen, &HttpError::Timeout, arm),
                }
            }
            // Superseded or disarmed deadline: lazy-cancelled.
            _ => {}
        }
    }

    // ----- drain -------------------------------------------------------

    /// One drain sweep: stop accepting and close every *idle*
    /// keep-alive connection. Connections that are `Dispatched` or
    /// `Writing` survive until their response is fully written, and a
    /// `Reading` connection that has already started a request gets to
    /// finish it (answered with `Connection: close`, and still visible
    /// to `/readyz`, which reports "draining") — its request deadline
    /// bounds how long that can take. The queue is NOT shut down here:
    /// in-flight requests still need workers; [`FrontEnd::join`] shuts
    /// it once every reactor has emptied. Runs every loop iteration
    /// after cancellation — cheap, and it catches connections that
    /// return to `Reading` from a pre-cancel completion.
    fn drain_step(&mut self) {
        if !self.draining {
            self.draining = true;
            if self.listener_armed {
                let _ = self.epoll.delete(self.listener.as_raw_fd());
                self.listener_armed = false;
            }
        }
        // With deadlines disabled (tests) a half-sent request has no
        // reaper, so drain must not wait on it.
        let reap_started = self.idle.is_zero();
        let victims: Vec<u32> = self
            .slab
            .conns
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                c.as_ref()
                    .filter(|c| {
                        c.state == ConnState::Reading && (reap_started || !c.parser.started())
                    })
                    .map(|_| i as u32)
            })
            .collect();
        for slot in victims {
            self.close(slot);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http;
    use std::io::{BufRead, BufReader};
    use std::net::TcpListener;

    /// A minimal service: answers every request with its own path,
    /// 503s when asked, never panics.
    struct EchoService {
        cancel: CancelToken,
    }

    struct EchoWorker;

    impl WorkerHandler for EchoWorker {
        fn handle(&mut self, request: &Request, close: bool) -> Vec<u8> {
            let mut out = Vec::new();
            let _ =
                http::write_response(&mut out, 200, "text/plain", request.path.as_bytes(), close);
            out
        }
    }

    impl Service for EchoService {
        fn make_worker(&self) -> Box<dyn WorkerHandler> {
            Box::new(EchoWorker)
        }
        fn admit(&self, _queued: usize) -> Result<(), Vec<u8>> {
            Ok(())
        }
        fn shed_overflow(&self) -> Vec<u8> {
            let mut out = Vec::new();
            let _ = http::write_response(&mut out, 503, "text/plain", b"full", true);
            out
        }
        fn enqueued(&self, _depth: usize) {}
        fn dequeued(&self, _sojourn_us: u64, _depth: usize) {}
        fn finished(&self, _panicked: bool) {}
        fn http_error(&self, err: &HttpError) -> Option<Vec<u8>> {
            let (status, text) = match err {
                HttpError::Closed | HttpError::Io(_) => return None,
                HttpError::Malformed(reason) => (400, *reason),
                HttpError::Timeout => (408, "timeout"),
                HttpError::TooLarge { status, reason } => (*status, *reason),
            };
            let mut out = Vec::new();
            let _ = http::write_response(&mut out, status, "text/plain", text.as_bytes(), true);
            Some(out)
        }
        fn chaos_panics(&self, _conn_index: u64) -> bool {
            false
        }
        fn on_chaos_panic(&self) {}
        fn cancel(&self) -> &CancelToken {
            &self.cancel
        }
        fn set_connections(&self, _open: u64) {}
    }

    fn start_echo(idle_ms: u64) -> (std::net::SocketAddr, CancelToken, FrontEnd) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let cancel = CancelToken::new();
        let service = Arc::new(EchoService { cancel: cancel.clone() });
        let front = FrontEnd::start(
            listener,
            service,
            FrontEndConfig {
                event_threads: 1,
                workers: 2,
                queue_depth: 16,
                idle_timeout: Duration::from_millis(idle_ms),
            },
        )
        .unwrap();
        (addr, cancel, front)
    }

    fn read_response(reader: &mut BufReader<&TcpStream>) -> (u16, String) {
        let mut status_line = String::new();
        reader.read_line(&mut status_line).unwrap();
        let status: u16 = status_line.split_whitespace().nth(1).unwrap().parse().unwrap();
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            if line.trim_end().is_empty() {
                break;
            }
            if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().unwrap();
            }
        }
        let mut body = vec![0u8; content_length];
        std::io::Read::read_exact(reader, &mut body).unwrap();
        (status, String::from_utf8(body).unwrap())
    }

    #[test]
    fn keepalive_serves_sequential_requests_on_one_connection() {
        let (addr, cancel, front) = start_echo(5_000);
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut reader = BufReader::new(&stream);
        for path in ["/first", "/second", "/third"] {
            (&stream)
                .write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
                .unwrap();
            let (status, body) = read_response(&mut reader);
            assert_eq!(status, 200);
            assert_eq!(body, path);
        }
        cancel.cancel();
        front.join();
    }

    #[test]
    fn pipelined_requests_are_answered_in_order() {
        let (addr, cancel, front) = start_echo(5_000);
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        // Both requests in one write: the second must be parsed from
        // the leftover buffer after the first response, with no
        // readiness event to announce it.
        (&stream)
            .write_all(b"GET /a HTTP/1.1\r\nHost: t\r\n\r\nGET /b HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let mut reader = BufReader::new(&stream);
        let (_, first) = read_response(&mut reader);
        let (_, second) = read_response(&mut reader);
        assert_eq!((first.as_str(), second.as_str()), ("/a", "/b"));
        cancel.cancel();
        front.join();
    }

    #[test]
    fn cancel_drains_and_joins_promptly() {
        let (addr, cancel, front) = start_echo(5_000);
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        (&stream).write_all(b"GET /x HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut reader = BufReader::new(&stream);
        let (status, _) = read_response(&mut reader);
        assert_eq!(status, 200);

        cancel.cancel();
        let start = Instant::now();
        front.join();
        assert!(start.elapsed() < Duration::from_secs(5), "drain took {:?}", start.elapsed());
    }

    #[test]
    fn large_response_survives_a_full_socket_buffer() {
        // A handler response far larger than any socket buffer, with a
        // client that reads slowly: the reactor must finish via
        // EPOLLOUT continuation without corrupting or truncating.
        struct BigService {
            cancel: CancelToken,
        }
        struct BigWorker;
        impl WorkerHandler for BigWorker {
            fn handle(&mut self, _request: &Request, close: bool) -> Vec<u8> {
                let body = vec![b'z'; 8 * 1024 * 1024];
                let mut out = Vec::new();
                let _ = http::write_response(&mut out, 200, "text/plain", &body, close);
                out
            }
        }
        impl Service for BigService {
            fn make_worker(&self) -> Box<dyn WorkerHandler> {
                Box::new(BigWorker)
            }
            fn admit(&self, _queued: usize) -> Result<(), Vec<u8>> {
                Ok(())
            }
            fn shed_overflow(&self) -> Vec<u8> {
                Vec::new()
            }
            fn enqueued(&self, _depth: usize) {}
            fn dequeued(&self, _sojourn_us: u64, _depth: usize) {}
            fn finished(&self, _panicked: bool) {}
            fn http_error(&self, _err: &HttpError) -> Option<Vec<u8>> {
                None
            }
            fn chaos_panics(&self, _conn_index: u64) -> bool {
                false
            }
            fn on_chaos_panic(&self) {}
            fn cancel(&self) -> &CancelToken {
                &self.cancel
            }
            fn set_connections(&self, _open: u64) {}
        }

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let cancel = CancelToken::new();
        let front = FrontEnd::start(
            listener,
            Arc::new(BigService { cancel: cancel.clone() }),
            FrontEndConfig {
                event_threads: 1,
                workers: 1,
                queue_depth: 4,
                idle_timeout: Duration::from_secs(30),
            },
        )
        .unwrap();

        let stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        (&stream).write_all(b"GET /big HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut reader = BufReader::new(&stream);
        let (status, body) = read_response(&mut reader);
        assert_eq!(status, 200);
        assert_eq!(body.len(), 8 * 1024 * 1024);
        assert!(body.bytes().all(|b| b == b'z'), "response corrupted");

        cancel.cancel();
        front.join();
    }
}
