//! Full-service integration tests over real loopback sockets: every
//! endpoint, single-flight coalescing, queue-full shedding, and
//! graceful drain, all against an in-process [`Server`] on port 0.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use comet_isa::{BasicBlock, Microarch};
use comet_models::{CostModel, CrudeModel, ModelError};
use comet_serve::server::BoxedModel;
use comet_serve::{ModelKind, ServeConfig, Server};
use serde_json::Value;

/// A model whose queries block until the test releases a gate. Lets a
/// test pin a worker inside an explain search at a known point, which
/// makes coalescing and shedding assertions deterministic instead of
/// sleep-based.
#[derive(Clone)]
struct GatedModel {
    inner: CrudeModel,
    gate: Arc<(Mutex<bool>, Condvar)>,
}

impl GatedModel {
    fn new() -> (GatedModel, Arc<(Mutex<bool>, Condvar)>) {
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        (GatedModel { inner: CrudeModel::new(Microarch::Haswell), gate: Arc::clone(&gate) }, gate)
    }

    fn release(gate: &(Mutex<bool>, Condvar)) {
        *gate.0.lock().unwrap() = true;
        gate.1.notify_all();
    }
}

impl CostModel for GatedModel {
    fn name(&self) -> &str {
        "gated-crude"
    }

    fn predict(&self, block: &BasicBlock) -> f64 {
        let mut open = self.gate.0.lock().unwrap();
        while !*open {
            open = self.gate.1.wait(open).unwrap();
        }
        drop(open);
        self.inner.predict(block)
    }

    fn try_predict(&self, block: &BasicBlock) -> Result<f64, ModelError> {
        let mut open = self.gate.0.lock().unwrap();
        while !*open {
            open = self.gate.1.wait(open).unwrap();
        }
        drop(open);
        self.inner.try_predict(block)
    }
}

/// One HTTP exchange over a fresh connection; returns (status, body).
fn one_shot(addr: SocketAddr, raw: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    stream.write_all(raw.as_bytes()).expect("write request");
    read_response(&stream)
}

fn read_response(stream: &TcpStream) -> (u16, String) {
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 =
        status_line.split_whitespace().nth(1).expect("status code").parse().expect("numeric");
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().expect("content-length");
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (status, String::from_utf8(body).expect("utf8 body"))
}

fn post(path: &str, body: &str) -> String {
    format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
}

fn get(path: &str) -> String {
    format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
}

fn start_crude(workers: usize, queue_depth: usize) -> Server {
    Server::start(
        ModelKind::CrudeHaswell,
        ServeConfig { addr: "127.0.0.1:0".into(), workers, queue_depth, ..ServeConfig::default() },
    )
    .expect("bind loopback")
}

/// Poll `check` until it passes or ~5s elapse.
fn wait_for(what: &str, mut check: impl FnMut() -> bool) {
    let start = Instant::now();
    while !check() {
        assert!(start.elapsed() < Duration::from_secs(5), "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn healthz_and_metrics_respond() {
    let server = start_crude(2, 8);
    let addr = server.addr();

    let (status, body) = one_shot(addr, &get("/healthz"));
    assert_eq!(status, 200);
    let health: Value = serde_json::from_str(&body).expect("healthz is json");
    assert_eq!(health["v"].as_u64(), Some(1));
    assert_eq!(health["ok"].as_bool(), Some(true));

    let (status, body) = one_shot(addr, &get("/metrics"));
    assert_eq!(status, 200);
    assert!(body.contains("comet_requests_total"), "{body}");
    assert!(body.contains("comet_queue_depth"), "{body}");
    assert!(body.contains("comet_cache_hit_rate"), "{body}");

    server.shutdown();
}

#[test]
fn predict_returns_a_prediction_and_rejects_bad_requests() {
    let server = start_crude(2, 8);
    let addr = server.addr();

    let (status, body) =
        one_shot(addr, &post("/v1/predict", r#"{"v":1,"block":"add rcx, rax\nnop"}"#));
    assert_eq!(status, 200, "{body}");
    let resp: Value = serde_json::from_str(&body).unwrap();
    assert!(resp["prediction"].as_f64().unwrap() > 0.0);

    // Unknown field → 400, not silently ignored.
    let (status, body) =
        one_shot(addr, &post("/v1/predict", r#"{"v":1,"block":"nop","blocc":"typo"}"#));
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("blocc"), "{body}");

    // Wrong wire version → 400.
    let (status, body) = one_shot(addr, &post("/v1/predict", r#"{"v":9,"block":"nop"}"#));
    assert_eq!(status, 400, "{body}");

    // Unparseable block → 400.
    let (status, _) = one_shot(addr, &post("/v1/predict", r#"{"v":1,"block":"frobnicate qx"}"#));
    assert_eq!(status, 400);

    // Unknown path → 404; wrong method → 400.
    let (status, _) = one_shot(addr, &get("/v2/predict"));
    assert_eq!(status, 404);
    let (status, _) = one_shot(addr, &get("/v1/predict"));
    assert_eq!(status, 400);

    server.shutdown();
}

#[test]
fn explain_returns_an_explanation() {
    let server = start_crude(2, 8);
    let addr = server.addr();

    let (status, body) = one_shot(
        addr,
        &post("/v1/explain", r#"{"v":1,"block":"add rcx, rax\nmov rdx, rcx","seed":7}"#),
    );
    assert_eq!(status, 200, "{body}");
    let resp: Value = serde_json::from_str(&body).unwrap();
    assert_eq!(resp["v"].as_u64(), Some(1));
    assert_eq!(resp["seed"].as_u64(), Some(7));
    assert_eq!(resp["coalesced"].as_bool(), Some(false));
    assert!(resp["explanation"]["queries"].as_u64().unwrap() > 0);
    assert!(resp["explanation"]["precision"].as_f64().is_some());

    server.shutdown();
}

#[test]
fn explain_runs_on_the_batch_path_and_reports_it() {
    let server = start_crude(2, 8);
    let addr = server.addr();

    let (status, _) = one_shot(
        addr,
        &post("/v1/explain", r#"{"v":1,"block":"add rcx, rax\nmov rdx, rcx","seed":3}"#),
    );
    assert_eq!(status, 200);

    // The search must actually have gone through predict_batch — the
    // registry only counts queries routed via BatchExec.
    let metrics = server.ctx().metrics();
    let batched = metrics.queries_batched_total();
    assert!(batched > 0, "explain search reported no batched queries");
    let occupancy = metrics.batch_occupancy(comet_serve::Endpoint::Explain);
    assert!(
        occupancy > 0.0 && occupancy <= 1.0,
        "explain batch occupancy out of range: {occupancy}"
    );

    // And the same numbers surface on the Prometheus endpoint.
    let (status, body) = one_shot(addr, &get("/metrics"));
    assert_eq!(status, 200);
    assert!(
        body.contains(&format!("comet_queries_batched_total{{endpoint=\"explain\"}} {batched}")),
        "{body}"
    );
    assert!(body.contains("comet_batch_occupancy{endpoint=\"explain\"}"), "{body}");

    server.shutdown();
}

#[test]
fn identical_concurrent_explains_coalesce_onto_one_search() {
    let (model, gate) = GatedModel::new();
    let server = Server::start_with_model(
        Box::new(model) as BoxedModel,
        "gated".into(),
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_depth: 8,
            ..Default::default()
        },
    )
    .expect("bind");
    let addr = server.addr();
    let ctx = Arc::clone(server.ctx());

    const N: usize = 3;
    let request = post("/v1/explain", r#"{"v":1,"block":"add rcx, rax","seed":42}"#);
    let clients: Vec<_> = (0..N)
        .map(|_| {
            let request = request.clone();
            std::thread::spawn(move || one_shot(addr, &request))
        })
        .collect();

    // The leader is parked inside the search (on the gate); the other
    // two must register as coalesced followers before we let it finish.
    wait_for("leader to start its search", || ctx.metrics().search_count() == 1);
    wait_for("followers to coalesce", || ctx.metrics().coalesced_count() == (N - 1) as u64);
    GatedModel::release(&gate);

    let mut coalesced_flags = Vec::new();
    for client in clients {
        let (status, body) = client.join().expect("client thread");
        assert_eq!(status, 200, "{body}");
        let resp: Value = serde_json::from_str(&body).unwrap();
        coalesced_flags.push(resp["coalesced"].as_bool().unwrap());
    }
    assert_eq!(ctx.metrics().search_count(), 1, "exactly one underlying search");
    assert_eq!(ctx.metrics().coalesced_count(), (N - 1) as u64);
    assert_eq!(coalesced_flags.iter().filter(|&&c| !c).count(), 1, "one leader");
    assert_eq!(coalesced_flags.iter().filter(|&&c| c).count(), N - 1, "rest coalesced");

    // A later identical request runs its own (new) search.
    let (status, body) = one_shot(addr, &request);
    assert_eq!(status, 200, "{body}");
    assert_eq!(ctx.metrics().search_count(), 2);

    server.shutdown();
}

#[test]
fn queue_overflow_is_shed_with_503() {
    let (model, gate) = GatedModel::new();
    let server = Server::start_with_model(
        Box::new(model) as BoxedModel,
        "gated".into(),
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            queue_depth: 1,
            ..Default::default()
        },
    )
    .expect("bind");
    let addr = server.addr();
    let ctx = Arc::clone(server.ctx());

    // Occupy the only worker: an explain parked on the gate.
    let blocker = {
        let request = post("/v1/explain", r#"{"v":1,"block":"div rcx","seed":1}"#);
        std::thread::spawn(move || one_shot(addr, &request))
    };
    wait_for("worker to enter the search", || ctx.metrics().search_count() == 1);

    // Fill the queue's single slot with a second connection.
    let mut queued = TcpStream::connect(addr).expect("connect queued");
    queued.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    queued.write_all(get("/healthz").as_bytes()).unwrap();
    wait_for("connection to queue", || {
        ctx.metrics().render_prometheus(&ctx.cache_stats()).contains("\ncomet_queue_depth 1")
    });

    // The next connection must be shed immediately — worker busy,
    // queue full.
    let (status, body) = one_shot(addr, &get("/healthz"));
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("overloaded"), "{body}");
    assert!(ctx.metrics().shed_count() >= 1);

    // Release the gate: the blocked explain and the queued request both
    // complete — shedding rejected new work, it never dropped accepted
    // work.
    GatedModel::release(&gate);
    let (status, _) = blocker.join().expect("blocker thread");
    assert_eq!(status, 200);
    let (status, body) = read_response(&queued);
    assert_eq!(status, 200, "{body}");

    server.shutdown();
}

#[test]
fn cancel_token_drains_and_joins() {
    let server = start_crude(2, 4);
    let addr = server.addr();
    let (status, _) = one_shot(addr, &get("/healthz"));
    assert_eq!(status, 200);

    server.ctx().cancel_token().cancel();
    // join() must return promptly once cancelled — run it on a thread so
    // a regression hangs this test's watchdog rather than forever.
    let joined = std::thread::spawn(move || server.join());
    let start = Instant::now();
    while !joined.is_finished() {
        assert!(start.elapsed() < Duration::from_secs(5), "server failed to drain");
        std::thread::sleep(Duration::from_millis(5));
    }
    joined.join().unwrap();

    // New connections are refused or reset after drain.
    let outcome = TcpStream::connect(addr)
        .and_then(|mut s| {
            s.set_read_timeout(Some(Duration::from_secs(2)))?;
            s.write_all(get("/healthz").as_bytes())?;
            let mut buf = Vec::new();
            s.read_to_end(&mut buf)?;
            Ok(buf)
        })
        .unwrap_or_default();
    assert!(outcome.is_empty(), "drained server must not answer new requests");
}
