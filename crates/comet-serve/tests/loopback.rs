//! Full-service integration tests over real loopback sockets: every
//! endpoint, single-flight coalescing, queue-full shedding, and
//! graceful drain, all against an in-process [`Server`] on port 0.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use comet_isa::{BasicBlock, Microarch};
use comet_models::{CostModel, CrudeModel, ModelError};
use comet_serve::server::BoxedModel;
use comet_serve::{ModelKind, ServeConfig, Server};
use serde_json::Value;

/// A model whose queries block until the test releases a gate. Lets a
/// test pin a worker inside an explain search at a known point, which
/// makes coalescing and shedding assertions deterministic instead of
/// sleep-based.
#[derive(Clone)]
struct GatedModel {
    inner: CrudeModel,
    gate: Arc<(Mutex<bool>, Condvar)>,
}

impl GatedModel {
    fn new() -> (GatedModel, Arc<(Mutex<bool>, Condvar)>) {
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        (GatedModel { inner: CrudeModel::new(Microarch::Haswell), gate: Arc::clone(&gate) }, gate)
    }

    fn release(gate: &(Mutex<bool>, Condvar)) {
        *gate.0.lock().unwrap() = true;
        gate.1.notify_all();
    }
}

impl CostModel for GatedModel {
    fn name(&self) -> &str {
        "gated-crude"
    }

    fn predict(&self, block: &BasicBlock) -> f64 {
        let mut open = self.gate.0.lock().unwrap();
        while !*open {
            open = self.gate.1.wait(open).unwrap();
        }
        drop(open);
        self.inner.predict(block)
    }

    fn try_predict(&self, block: &BasicBlock) -> Result<f64, ModelError> {
        let mut open = self.gate.0.lock().unwrap();
        while !*open {
            open = self.gate.1.wait(open).unwrap();
        }
        drop(open);
        self.inner.try_predict(block)
    }
}

/// One HTTP exchange over a fresh connection; returns (status, body).
fn one_shot(addr: SocketAddr, raw: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    stream.write_all(raw.as_bytes()).expect("write request");
    read_response(&stream)
}

fn read_response(stream: &TcpStream) -> (u16, String) {
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 =
        status_line.split_whitespace().nth(1).expect("status code").parse().expect("numeric");
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().expect("content-length");
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (status, String::from_utf8(body).expect("utf8 body"))
}

fn post(path: &str, body: &str) -> String {
    format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
}

fn get(path: &str) -> String {
    format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
}

fn start_crude(workers: usize, queue_depth: usize) -> Server {
    Server::start(
        ModelKind::CrudeHaswell,
        ServeConfig { addr: "127.0.0.1:0".into(), workers, queue_depth, ..ServeConfig::default() },
    )
    .expect("bind loopback")
}

/// Poll `check` until it passes or ~5s elapse.
fn wait_for(what: &str, mut check: impl FnMut() -> bool) {
    let start = Instant::now();
    while !check() {
        assert!(start.elapsed() < Duration::from_secs(5), "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn healthz_and_metrics_respond() {
    let server = start_crude(2, 8);
    let addr = server.addr();

    let (status, body) = one_shot(addr, &get("/healthz"));
    assert_eq!(status, 200);
    let health: Value = serde_json::from_str(&body).expect("healthz is json");
    assert_eq!(health["v"].as_u64(), Some(1));
    assert_eq!(health["ok"].as_bool(), Some(true));

    let (status, body) = one_shot(addr, &get("/metrics"));
    assert_eq!(status, 200);
    assert!(body.contains("comet_requests_total"), "{body}");
    assert!(body.contains("comet_queue_depth"), "{body}");
    assert!(body.contains("comet_cache_hit_rate"), "{body}");

    server.shutdown();
}

#[test]
fn predict_returns_a_prediction_and_rejects_bad_requests() {
    let server = start_crude(2, 8);
    let addr = server.addr();

    let (status, body) =
        one_shot(addr, &post("/v1/predict", r#"{"v":1,"block":"add rcx, rax\nnop"}"#));
    assert_eq!(status, 200, "{body}");
    let resp: Value = serde_json::from_str(&body).unwrap();
    assert!(resp["prediction"].as_f64().unwrap() > 0.0);

    // Unknown field → 400, not silently ignored.
    let (status, body) =
        one_shot(addr, &post("/v1/predict", r#"{"v":1,"block":"nop","blocc":"typo"}"#));
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("blocc"), "{body}");

    // Wrong wire version → 400.
    let (status, body) = one_shot(addr, &post("/v1/predict", r#"{"v":9,"block":"nop"}"#));
    assert_eq!(status, 400, "{body}");

    // Unparseable block → 400.
    let (status, _) = one_shot(addr, &post("/v1/predict", r#"{"v":1,"block":"frobnicate qx"}"#));
    assert_eq!(status, 400);

    // Unknown path → 404; wrong method → 400.
    let (status, _) = one_shot(addr, &get("/v2/predict"));
    assert_eq!(status, 404);
    let (status, _) = one_shot(addr, &get("/v1/predict"));
    assert_eq!(status, 400);

    server.shutdown();
}

#[test]
fn explain_returns_an_explanation() {
    let server = start_crude(2, 8);
    let addr = server.addr();

    let (status, body) = one_shot(
        addr,
        &post("/v1/explain", r#"{"v":1,"block":"add rcx, rax\nmov rdx, rcx","seed":7}"#),
    );
    assert_eq!(status, 200, "{body}");
    let resp: Value = serde_json::from_str(&body).unwrap();
    assert_eq!(resp["v"].as_u64(), Some(1));
    assert_eq!(resp["seed"].as_u64(), Some(7));
    assert_eq!(resp["coalesced"].as_bool(), Some(false));
    assert!(resp["explanation"]["queries"].as_u64().unwrap() > 0);
    assert!(resp["explanation"]["precision"].as_f64().is_some());

    server.shutdown();
}

#[test]
fn explain_runs_on_the_batch_path_and_reports_it() {
    let server = start_crude(2, 8);
    let addr = server.addr();

    let (status, _) = one_shot(
        addr,
        &post("/v1/explain", r#"{"v":1,"block":"add rcx, rax\nmov rdx, rcx","seed":3}"#),
    );
    assert_eq!(status, 200);

    // The search must actually have gone through predict_batch — the
    // registry only counts queries routed via BatchExec.
    let metrics = server.ctx().metrics();
    let batched = metrics.queries_batched_total();
    assert!(batched > 0, "explain search reported no batched queries");
    let occupancy = metrics.batch_occupancy(comet_serve::Endpoint::Explain);
    assert!(
        occupancy > 0.0 && occupancy <= 1.0,
        "explain batch occupancy out of range: {occupancy}"
    );

    // And the same numbers surface on the Prometheus endpoint.
    let (status, body) = one_shot(addr, &get("/metrics"));
    assert_eq!(status, 200);
    assert!(
        body.contains(&format!("comet_queries_batched_total{{endpoint=\"explain\"}} {batched}")),
        "{body}"
    );
    assert!(body.contains("comet_batch_occupancy{endpoint=\"explain\"}"), "{body}");

    server.shutdown();
}

#[test]
fn identical_concurrent_explains_coalesce_onto_one_search() {
    let (model, gate) = GatedModel::new();
    let server = Server::start_with_model(
        Box::new(model) as BoxedModel,
        "gated".into(),
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_depth: 8,
            ..Default::default()
        },
    )
    .expect("bind");
    let addr = server.addr();
    let ctx = Arc::clone(server.ctx());

    const N: usize = 3;
    let request = post("/v1/explain", r#"{"v":1,"block":"add rcx, rax","seed":42}"#);
    let clients: Vec<_> = (0..N)
        .map(|_| {
            let request = request.clone();
            std::thread::spawn(move || one_shot(addr, &request))
        })
        .collect();

    // The leader is parked inside the search (on the gate); the other
    // two must register as coalesced followers before we let it finish.
    wait_for("leader to start its search", || ctx.metrics().search_count() == 1);
    wait_for("followers to coalesce", || ctx.metrics().coalesced_count() == (N - 1) as u64);
    GatedModel::release(&gate);

    let mut coalesced_flags = Vec::new();
    for client in clients {
        let (status, body) = client.join().expect("client thread");
        assert_eq!(status, 200, "{body}");
        let resp: Value = serde_json::from_str(&body).unwrap();
        coalesced_flags.push(resp["coalesced"].as_bool().unwrap());
    }
    assert_eq!(ctx.metrics().search_count(), 1, "exactly one underlying search");
    assert_eq!(ctx.metrics().coalesced_count(), (N - 1) as u64);
    assert_eq!(coalesced_flags.iter().filter(|&&c| !c).count(), 1, "one leader");
    assert_eq!(coalesced_flags.iter().filter(|&&c| c).count(), N - 1, "rest coalesced");

    // A later identical request runs its own (new) search.
    let (status, body) = one_shot(addr, &request);
    assert_eq!(status, 200, "{body}");
    assert_eq!(ctx.metrics().search_count(), 2);

    server.shutdown();
}

#[test]
fn queue_overflow_is_shed_with_503() {
    let (model, gate) = GatedModel::new();
    let server = Server::start_with_model(
        Box::new(model) as BoxedModel,
        "gated".into(),
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            queue_depth: 1,
            ..Default::default()
        },
    )
    .expect("bind");
    let addr = server.addr();
    let ctx = Arc::clone(server.ctx());

    // Occupy the only worker: an explain parked on the gate.
    let blocker = {
        let request = post("/v1/explain", r#"{"v":1,"block":"div rcx","seed":1}"#);
        std::thread::spawn(move || one_shot(addr, &request))
    };
    wait_for("worker to enter the search", || ctx.metrics().search_count() == 1);

    // Fill the queue's single slot with a second connection.
    let mut queued = TcpStream::connect(addr).expect("connect queued");
    queued.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    queued.write_all(get("/healthz").as_bytes()).unwrap();
    wait_for("connection to queue", || {
        ctx.metrics().render_prometheus(&ctx.cache_stats(), &[]).contains("\ncomet_queue_depth 1")
    });

    // The next connection must be shed immediately — worker busy,
    // queue full.
    let (status, body) = one_shot(addr, &get("/healthz"));
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("overloaded"), "{body}");
    assert!(ctx.metrics().shed_count() >= 1);

    // Release the gate: the blocked explain and the queued request both
    // complete — shedding rejected new work, it never dropped accepted
    // work.
    GatedModel::release(&gate);
    let (status, _) = blocker.join().expect("blocker thread");
    assert_eq!(status, 200);
    let (status, body) = read_response(&queued);
    assert_eq!(status, 200, "{body}");

    server.shutdown();
}

/// Write raw bytes (optionally half-closing the write side, which is
/// how a client truncates a request mid-body) and return everything the
/// server sends back, verbatim.
fn one_shot_bytes(addr: SocketAddr, raw: &[u8], truncate: bool) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream.write_all(raw).expect("write request");
    if truncate {
        let _ = stream.shutdown(std::net::Shutdown::Write);
    }
    let mut buf = Vec::new();
    let _ = stream.read_to_end(&mut buf);
    String::from_utf8_lossy(&buf).into_owned()
}

#[test]
fn metrics_expose_cache_counters() {
    let server = start_crude(2, 8);
    let addr = server.addr();

    // Two identical predicts: the second must be answered by the
    // shared query cache.
    for _ in 0..2 {
        let (status, body) =
            one_shot(addr, &post("/v1/predict", r#"{"v":1,"block":"add rcx, rax"}"#));
        assert_eq!(status, 200, "{body}");
    }
    let stats = server.ctx().cache_stats();
    assert!(stats.hits >= 1, "repeat predict did not hit the cache: {stats:?}");
    assert!(stats.total >= 2, "cache saw too few queries: {stats:?}");

    // And the counters surface on /metrics with exactly those values.
    let (status, text) = one_shot(addr, &get("/metrics"));
    assert_eq!(status, 200);
    assert!(text.contains(&format!("comet_cache_queries_total {}", stats.total)), "{text}");
    assert!(text.contains(&format!("comet_cache_hits_total {}", stats.hits)), "{text}");

    server.shutdown();
}

#[test]
fn malformed_and_oversized_requests_get_clean_errors() {
    let server = start_crude(2, 8);
    let addr = server.addr();
    let lower = |resp: &str| resp.to_ascii_lowercase();

    // Garbage request line → 400 and an explicit close.
    let resp = one_shot_bytes(addr, b"SPLINES /v1/predict\r\n\r\n", false);
    assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
    assert!(lower(&resp).contains("connection: close"), "{resp}");

    // Declared body beyond the wire cap → 413 without reading it.
    let huge = format!(
        "POST /v1/predict HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
        64 * 1024 * 1024
    );
    let resp = one_shot_bytes(addr, huge.as_bytes(), false);
    assert!(resp.starts_with("HTTP/1.1 413"), "{resp}");
    assert!(lower(&resp).contains("connection: close"), "{resp}");

    // A header line beyond the line cap → 431.
    let long = format!("GET /healthz HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "a".repeat(32 * 1024));
    let resp = one_shot_bytes(addr, long.as_bytes(), false);
    assert!(resp.starts_with("HTTP/1.1 431"), "{resp}");
    assert!(lower(&resp).contains("connection: close"), "{resp}");

    // A body cut off mid-flight → 400, not a hung worker.
    let resp = one_shot_bytes(
        addr,
        b"POST /v1/predict HTTP/1.1\r\nHost: t\r\nContent-Length: 100\r\n\r\n{\"v\":1",
        true,
    );
    assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
    assert!(lower(&resp).contains("truncated"), "{resp}");

    // A deterministic storm of fuzzed junk: every reply is either a
    // clean 4xx or a plain close — never a 5xx, never a hang.
    let mut state = 0x5eed_cafe_u64;
    for _ in 0..32 {
        let len = 1 + (state % 200) as usize;
        let mut junk: Vec<u8> = (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 33) as u8
            })
            .collect();
        junk.extend_from_slice(b"\r\n\r\n");
        let resp = one_shot_bytes(addr, &junk, true);
        assert!(
            resp.is_empty() || resp.starts_with("HTTP/1.1 4"),
            "fuzz input produced a non-4xx answer: {resp:?}"
        );
    }

    // The service itself is unharmed.
    let (status, _) = one_shot(addr, &get("/healthz"));
    assert_eq!(status, 200);
    assert_eq!(server.ctx().metrics().requests_with_status(comet_serve::StatusClass::Internal), 0);

    server.shutdown();
}

#[test]
fn slow_loris_is_timed_out_with_408() {
    let server = Server::start(
        ModelKind::CrudeHaswell,
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_depth: 8,
            idle_timeout_ms: 100,
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.addr();

    // Start a request and then stall: the read budget must cut the
    // connection off with 408, well before the client's own timeout.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream.write_all(b"POST /v1/predict HTTP/1.1\r\nHost: t\r\n").unwrap();
    let start = Instant::now();
    let (status, body) = read_response(&stream);
    assert_eq!(status, 408, "{body}");
    assert!(body.contains("timed out"), "{body}");
    assert!(start.elapsed() < Duration::from_secs(5), "loris lingered {:?}", start.elapsed());

    server.shutdown();
}

#[test]
fn readyz_reflects_model_health() {
    // A healthy stack is ready.
    let server = start_crude(1, 4);
    let (status, body) = one_shot(server.addr(), &get("/readyz"));
    assert_eq!(status, 200, "{body}");
    let resp: Value = serde_json::from_str(&body).unwrap();
    assert_eq!(resp["ready"].as_bool(), Some(true));
    server.shutdown();

    // A model that cannot answer the probe is not.
    struct BrokenModel;
    impl CostModel for BrokenModel {
        fn name(&self) -> &str {
            "broken"
        }
        fn predict(&self, _block: &BasicBlock) -> f64 {
            f64::NAN
        }
        fn try_predict(&self, _block: &BasicBlock) -> Result<f64, ModelError> {
            Err(ModelError::NonFinite { value: f64::NAN })
        }
    }
    let server = Server::start_with_model(
        Box::new(BrokenModel) as BoxedModel,
        "broken".into(),
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            queue_depth: 4,
            ..Default::default()
        },
    )
    .expect("bind");
    let (status, body) = one_shot(server.addr(), &get("/readyz"));
    assert_eq!(status, 503, "{body}");
    let resp: Value = serde_json::from_str(&body).unwrap();
    assert_eq!(resp["ready"].as_bool(), Some(false));
    let reasons = resp["reasons"].as_array().expect("reasons list");
    assert!(
        reasons.iter().any(|r| r.as_str() == Some("model probe failed")),
        "unexpected reasons: {reasons:?}"
    );
    server.shutdown();
}

#[test]
fn tight_deadlines_degrade_to_a_lower_tier() {
    /// A crude model with an artificial per-query cost, so explain
    /// latency is large and measurable next to a tiny deadline.
    struct SlowModel(CrudeModel);
    impl CostModel for SlowModel {
        fn name(&self) -> &str {
            "slow-crude"
        }
        fn predict(&self, block: &BasicBlock) -> f64 {
            std::thread::sleep(Duration::from_micros(500));
            self.0.predict(block)
        }
        fn try_predict(&self, block: &BasicBlock) -> Result<f64, ModelError> {
            std::thread::sleep(Duration::from_micros(500));
            self.0.try_predict(block)
        }
    }
    let server = Server::start_with_model(
        Box::new(SlowModel(CrudeModel::new(Microarch::Haswell))) as BoxedModel,
        "slow".into(),
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_depth: 8,
            deadline_ms: 0,
            ..Default::default()
        },
    )
    .expect("bind");
    let addr = server.addr();

    // Warm up: full-tier explains that populate the latency histogram
    // (and the stale-explanation store) for this block.
    for seed in 0..10u64 {
        let (status, body) = one_shot(
            addr,
            &post("/v1/explain", &format!(r#"{{"v":1,"block":"add rcx, rax","seed":{seed}}}"#)),
        );
        assert_eq!(status, 200, "{body}");
    }

    // Now an impossible deadline: the ladder must answer from a lower
    // tier instead of failing or blowing the budget.
    let (status, body) = one_shot(
        addr,
        &post("/v1/explain", r#"{"v":1,"block":"add rcx, rax","seed":99,"deadline_ms":2}"#),
    );
    assert_eq!(status, 200, "{body}");
    let resp: Value = serde_json::from_str(&body).unwrap();
    let tier = resp["explanation"]["tier"].as_str().expect("tier in dto");
    assert_ne!(tier, "full", "a 2ms deadline must not run a full search: {body}");

    let metrics = server.ctx().metrics();
    let degraded = metrics.tier_count(comet_serve::Tier::ReducedBudget)
        + metrics.tier_count(comet_serve::Tier::Cached)
        + metrics.tier_count(comet_serve::Tier::Baseline);
    assert!(degraded >= 1, "no degraded tier recorded");
    assert!(
        metrics.tier_count(comet_serve::Tier::Full) >= 10,
        "warmup explains were not full-tier"
    );

    // The tier also shows up on the Prometheus endpoint.
    let (status, text) = one_shot(addr, &get("/metrics"));
    assert_eq!(status, 200);
    assert!(text.contains("comet_explain_tier_total{tier=\"full\"}"), "{text}");

    server.shutdown();
}

#[test]
fn drain_under_load_never_truncates_responses() {
    let server = start_crude(2, 16);
    let addr = server.addr();

    // Hammer the server from several clients while it drains. Every
    // exchange must end in exactly one of two clean ways: a complete
    // response, or nothing at all (refused/reset before the server
    // committed to answering). A partial response — status line without
    // the promised body — is the failure mode this test exists to catch.
    let clients: Vec<_> = (0..6)
        .map(|_| {
            std::thread::spawn(move || {
                let request = post("/v1/predict", r#"{"v":1,"block":"add rcx, rax\nnop"}"#);
                let (mut complete, mut clean, mut dirty) = (0u64, 0u64, 0u64);
                for _ in 0..10_000 {
                    let Ok(mut stream) = TcpStream::connect(addr) else { break };
                    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
                    if stream.write_all(request.as_bytes()).is_err() {
                        clean += 1;
                        continue;
                    }
                    let mut buf = Vec::new();
                    let _ = BufReader::new(&stream).read_to_end(&mut buf);
                    if buf.is_empty() {
                        clean += 1;
                        continue;
                    }
                    let text = String::from_utf8_lossy(&buf);
                    let whole = text.split_once("\r\n\r\n").is_some_and(|(head, body)| {
                        head.starts_with("HTTP/1.1 ")
                            && head
                                .to_ascii_lowercase()
                                .lines()
                                .find_map(|l| l.strip_prefix("content-length:").map(str::trim))
                                .and_then(|v| v.parse::<usize>().ok())
                                .is_some_and(|len| body.len() >= len)
                    });
                    if whole {
                        complete += 1;
                    } else {
                        dirty += 1;
                    }
                }
                (complete, clean, dirty)
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(50));
    server.ctx().cancel_token().cancel();
    let server_join = std::thread::spawn(move || server.join());
    let start = Instant::now();
    while !server_join.is_finished() {
        assert!(start.elapsed() < Duration::from_secs(10), "server failed to drain under load");
        std::thread::sleep(Duration::from_millis(5));
    }
    server_join.join().unwrap();

    let (mut complete, mut dirty) = (0u64, 0u64);
    for client in clients {
        let (c, _clean, d) = client.join().expect("client thread");
        complete += c;
        dirty += d;
    }
    assert!(complete > 0, "no request completed before the drain");
    assert_eq!(dirty, 0, "drain truncated {dirty} responses mid-flight");
}

#[test]
fn cancel_token_drains_and_joins() {
    let server = start_crude(2, 4);
    let addr = server.addr();
    let (status, _) = one_shot(addr, &get("/healthz"));
    assert_eq!(status, 200);

    server.ctx().cancel_token().cancel();
    // join() must return promptly once cancelled — run it on a thread so
    // a regression hangs this test's watchdog rather than forever.
    let joined = std::thread::spawn(move || server.join());
    let start = Instant::now();
    while !joined.is_finished() {
        assert!(start.elapsed() < Duration::from_secs(5), "server failed to drain");
        std::thread::sleep(Duration::from_millis(5));
    }
    joined.join().unwrap();

    // New connections are refused or reset after drain.
    let outcome = TcpStream::connect(addr)
        .and_then(|mut s| {
            s.set_read_timeout(Some(Duration::from_secs(2)))?;
            s.write_all(get("/healthz").as_bytes())?;
            let mut buf = Vec::new();
            s.read_to_end(&mut buf)?;
            Ok(buf)
        })
        .unwrap_or_default();
    assert!(outcome.is_empty(), "drained server must not answer new requests");
}
