//! Partial-I/O edges of the epoll event loop, driven through a real
//! [`Server`] listener: requests arriving in adversarial fragments
//! (headers cut mid-token, bodies dribbled a byte at a time), slow
//! writers stalling mid-body, size-cap rejections fed in chunks, a
//! client that refuses to read while hundreds of pipelined responses
//! back up the socket, and a graceful drain with a request in flight
//! on a keep-alive connection.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use comet_serve::{ModelKind, ServeConfig, Server};

const PREDICT_REQUEST: &str = "POST /v1/predict HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\
     Content-Length: 25\r\n\r\n{\"v\":1,\"block\":\"div rcx\"}";
const PREDICT_GOLDEN: &str = r#"{"v":1,"model":"C_HSW","model_version":1,"prediction":25.0}"#;

fn start(config_tweak: impl FnOnce(&mut ServeConfig)) -> Server {
    let mut config = ServeConfig { addr: "127.0.0.1:0".into(), workers: 2, ..Default::default() };
    config_tweak(&mut config);
    Server::start(ModelKind::CrudeHaswell, config).expect("bind loopback")
}

fn read_response(stream: &TcpStream) -> (u16, String) {
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line.split_whitespace().nth(1).unwrap().parse().unwrap();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().unwrap();
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (status, String::from_utf8(body).expect("utf8"))
}

/// Deterministic split-point generator (splitmix64 core).
fn next_rand(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[test]
fn fuzzed_split_reads_always_reassemble() {
    let server = start(|_| {});
    let addr = server.addr();
    let bytes = PREDICT_REQUEST.as_bytes();
    // 32 seeds × random fragmentation, including splits inside the
    // request line, inside header names, and inside the body. Every
    // fragmentation must produce the identical golden response.
    for seed in 0..32u64 {
        let mut state = seed;
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        stream.set_nodelay(true).unwrap();
        let mut sent = 0usize;
        while sent < bytes.len() {
            let chunk = 1 + (next_rand(&mut state) as usize) % 7;
            let end = (sent + chunk).min(bytes.len());
            stream.write_all(&bytes[sent..end]).expect("write fragment");
            sent = end;
            // A flush boundary between fragments forces distinct
            // readiness events instead of one coalesced read.
            if next_rand(&mut state).is_multiple_of(3) {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
        let (status, body) = read_response(&stream);
        assert_eq!(status, 200, "seed {seed}");
        assert_eq!(body, PREDICT_GOLDEN, "seed {seed}");
    }
    server.shutdown();
}

#[test]
fn body_dribbled_a_byte_at_a_time_is_reassembled() {
    let server = start(|_| {});
    let addr = server.addr();
    let (head, body) = PREDICT_REQUEST.split_once("\r\n\r\n").unwrap();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    stream.set_nodelay(true).unwrap();
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(b"\r\n\r\n").unwrap();
    for &byte in body.as_bytes() {
        stream.write_all(&[byte]).unwrap();
        std::thread::sleep(Duration::from_micros(100));
    }
    let (status, answer) = read_response(&stream);
    assert_eq!(status, 200);
    assert_eq!(answer, PREDICT_GOLDEN);
    server.shutdown();
}

#[test]
fn stalled_body_is_timed_out_with_408() {
    let server = start(|config| config.idle_timeout_ms = 100);
    let addr = server.addr();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    // Complete headers, then stall with half the declared body sent —
    // a slow loris that got further than the header stage.
    let (head, body) = PREDICT_REQUEST.split_once("\r\n\r\n").unwrap();
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(b"\r\n\r\n").unwrap();
    stream.write_all(&body.as_bytes()[..body.len() / 2]).unwrap();
    let (status, answer) = read_response(&stream);
    assert_eq!(status, 408);
    assert!(answer.contains("timed out"), "{answer}");
    server.shutdown();
}

#[test]
fn size_caps_reject_chunked_oversends_cleanly() {
    let server = start(|_| {});
    let addr = server.addr();

    // 413: the declared body exceeds MAX_BODY. Sent split mid-header
    // so the cap check itself runs on reassembled fragments.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    stream.set_nodelay(true).unwrap();
    let oversized = format!(
        "POST /v1/predict HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
        2 * 1024 * 1024
    );
    let (a, b) = oversized.split_at(oversized.len() / 2);
    stream.write_all(a.as_bytes()).unwrap();
    std::thread::sleep(Duration::from_millis(5));
    stream.write_all(b.as_bytes()).unwrap();
    let (status, _) = read_response(&stream);
    assert_eq!(status, 413);

    // 431: a single header line past MAX_LINE, dribbled in 1 KiB
    // chunks — the rejection must land mid-stream, while the client
    // is still sending.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    stream.write_all(b"GET /healthz HTTP/1.1\r\nX-Flood: ").unwrap();
    let chunk = [b'a'; 1024];
    for _ in 0..16 {
        if stream.write_all(&chunk).is_err() {
            break; // server already rejected and closed — fine
        }
    }
    let (status, _) = read_response(&stream);
    assert_eq!(status, 431);

    server.shutdown();
}

#[test]
fn pipelined_responses_survive_a_client_that_reads_late() {
    let server = start(|_| {});
    let addr = server.addr();
    // Several hundred pipelined requests whose responses the client
    // refuses to read until the end: the response bytes back up the
    // socket until the kernel buffer fills, forcing the reactor
    // through its partial-write (EPOLLOUT continuation) path.
    const N: usize = 800;
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let one = "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n";
    let mut all = String::new();
    for _ in 0..N {
        all.push_str(one);
    }
    stream.write_all(all.as_bytes()).unwrap();
    // Let responses accumulate server-side before the first read.
    std::thread::sleep(Duration::from_millis(300));
    let mut reader = BufReader::new(&stream);
    for i in 0..N {
        let mut status_line = String::new();
        reader.read_line(&mut status_line).unwrap_or_else(|e| panic!("response {i}: {e}"));
        let status: u16 = status_line.split_whitespace().nth(1).unwrap().parse().unwrap();
        assert_eq!(status, 200, "response {i}");
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).expect("header");
            if line.trim_end().is_empty() {
                break;
            }
            if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().unwrap();
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).expect("body");
        assert!(body.starts_with(b"{\"v\":1,\"ok\":true"), "response {i}");
    }
    server.shutdown();
}

#[test]
fn drain_answers_in_flight_keepalive_request_with_draining_readyz() {
    // Default idle timeout (request deadline bounds the drain); one
    // keep-alive connection with a request half-sent at cancel time.
    let server = start(|_| {});
    let addr = server.addr();
    let cancel = server.ctx().cancel_token().clone();

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    stream.set_nodelay(true).unwrap();

    // A completed request keeps the connection in keep-alive.
    stream
        .write_all(
            b"POST /v1/predict HTTP/1.1\r\nHost: t\r\nContent-Length: 25\r\n\r\n\
              {\"v\":1,\"block\":\"div rcx\"}",
        )
        .unwrap();
    let (status, body) = read_response(&stream);
    assert_eq!(status, 200);
    assert_eq!(body, PREDICT_GOLDEN);

    // Start the next request but stop mid-headers, then begin a drain.
    stream.write_all(b"GET /readyz HTTP/1.1\r\nHost: t\r\n").unwrap();
    std::thread::sleep(Duration::from_millis(50));
    cancel.cancel();
    let joiner = std::thread::spawn(move || server.join());

    // Give the reactor time to notice the drain (it must NOT reap this
    // connection: the request has started), then finish the request.
    std::thread::sleep(Duration::from_millis(200));
    stream.write_all(b"\r\n").unwrap();

    // The in-flight request is answered — 503 with the draining
    // reason, not a dropped connection or an overload shed.
    let (status, body) = read_response(&stream);
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("draining"), "{body}");

    // After that answer the connection closes (drain) ...
    let mut rest = Vec::new();
    let n = stream.read_to_end(&mut rest).unwrap_or(0);
    assert_eq!(n, 0, "connection must close after the drain response");

    // ... and the whole server drains promptly.
    let start = Instant::now();
    joiner.join().expect("join");
    assert!(start.elapsed() < Duration::from_secs(10), "drain hung");

    // New connections are refused or dead — the listener is gone.
    if let Ok(mut late) = TcpStream::connect(addr) {
        late.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        let _ = late.write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
        let mut sink = Vec::new();
        assert_eq!(late.read_to_end(&mut sink).unwrap_or(0), 0);
    }
}
