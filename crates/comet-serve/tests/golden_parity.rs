//! Golden-byte parity: the epoll front end must answer with
//! bitwise-identical bodies to the threaded accept loop it replaced.
//! These strings were captured verbatim from the pre-rewrite server
//! (same model, same seeds) — a diff here means the transplant changed
//! observable behavior, not just plumbing.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use comet_serve::{ModelKind, ServeConfig, Server};

fn one_shot(addr: SocketAddr, raw: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    stream.write_all(raw.as_bytes()).expect("write request");
    let mut reader = BufReader::new(&stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line.split_whitespace().nth(1).unwrap().parse().unwrap();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().unwrap();
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (status, String::from_utf8(body).expect("utf8"))
}

fn post(path: &str, body: &str) -> String {
    format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
}

fn get(path: &str) -> String {
    format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
}

fn start() -> Server {
    Server::start(
        ModelKind::CrudeHaswell,
        ServeConfig { addr: "127.0.0.1:0".into(), workers: 2, ..ServeConfig::default() },
    )
    .expect("bind loopback")
}

#[test]
fn predict_bodies_match_the_threaded_front_end_bitwise() {
    let server = start();
    let addr = server.addr();

    let (status, body) = one_shot(
        addr,
        &post("/v1/predict", r#"{"v":1,"block":"add rcx, rax\nmov rdx, rcx\npop rbx"}"#),
    );
    assert_eq!(status, 200);
    assert_eq!(body, r#"{"v":1,"model":"C_HSW","model_version":1,"prediction":0.75}"#);

    let (status, body) = one_shot(addr, &post("/v1/predict", r#"{"v":1,"block":"div rcx"}"#));
    assert_eq!(status, 200);
    assert_eq!(body, r#"{"v":1,"model":"C_HSW","model_version":1,"prediction":25.0}"#);

    server.shutdown();
}

#[test]
fn explain_bodies_match_the_threaded_front_end_bitwise() {
    let server = start();
    let addr = server.addr();

    let (status, body) = one_shot(
        addr,
        &post("/v1/explain", r#"{"v":1,"block":"add rcx, rax\nmov rdx, rcx\npop rbx","seed":0}"#),
    );
    assert_eq!(status, 200);
    assert_eq!(
        body,
        concat!(
            r#"{"v":1,"model":"C_HSW","model_version":1,"epsilon":0.25,"seed":0,"#,
            r#""coalesced":false,"explanation":{"features":[{"Instruction":1},"#,
            r#"{"Instruction":2}],"display":"{inst_2, inst_3}","precision":0.8,"#,
            r#""coverage":0.242,"prediction":0.75,"anchored":true,"queries":345,"#,
            r#""faults":0,"degraded":false,"tier":"full","source":"live"}}"#,
        )
    );

    let (status, body) = one_shot(
        addr,
        &post(
            "/v1/explain",
            r#"{"v":1,"block":"imul rax, rcx\nadd rcx, rax\nnop","seed":7,"epsilon":0.5}"#,
        ),
    );
    assert_eq!(status, 200);
    assert_eq!(
        body,
        concat!(
            r#"{"v":1,"model":"C_HSW","model_version":1,"epsilon":0.5,"seed":7,"#,
            r#""coalesced":false,"explanation":{"features":[{"Instruction":0}],"#,
            r#""display":"{inst_1}","precision":1.0,"coverage":0.5085,"#,
            r#""prediction":1.25,"anchored":true,"queries":97,"faults":0,"#,
            r#""degraded":false,"tier":"full","source":"live"}}"#,
        )
    );

    server.shutdown();
}

#[test]
fn healthz_body_matches_the_threaded_front_end_bitwise() {
    let server = start();
    let (status, body) = one_shot(server.addr(), &get("/healthz"));
    assert_eq!(status, 200);
    assert_eq!(body, r#"{"v":1,"ok":true,"model":"C_HSW","model_version":1}"#);
    server.shutdown();
}
