//! Serving from a precomputed explanation store, over real loopback
//! sockets: store hits are bitwise replicas of what the builder
//! stored, misses and parameter mismatches fall through to the live
//! ladder, `/readyz` reports store health (and 503s on an unreadable
//! store), `/analytics/*` serve the build-time rollups, and a model
//! hot-swap structurally disables store hits.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::time::Duration;

use comet_serve::{ModelKind, ServeConfig, Server};
use comet_store::{build_store, BuildConfig, BuildModel, ExplanationStore};
use serde_json::Value;

const BLOCKS: usize = 6;
const CORPUS_SEED: u64 = 0xB10C5;

/// One HTTP exchange over a fresh connection; returns (status, body).
fn one_shot(addr: SocketAddr, raw: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    stream.write_all(raw.as_bytes()).expect("write request");
    let mut reader = BufReader::new(&stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 =
        status_line.split_whitespace().nth(1).expect("status code").parse().expect("numeric");
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().expect("content-length");
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (status, String::from_utf8(body).expect("utf8 body"))
}

fn post(path: &str, body: &str) -> String {
    format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
}

fn get(path: &str) -> String {
    format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
}

/// Build a small crude-haswell store under `dir` and return its path.
fn build_test_store(dir: &Path) -> PathBuf {
    std::fs::create_dir_all(dir).unwrap();
    let out = dir.join("store.comets");
    let cfg = BuildConfig {
        model: BuildModel::CrudeHaswell,
        blocks: BLOCKS,
        corpus_seed: CORPUS_SEED,
        ..BuildConfig::default()
    };
    let report = build_store(&out, &cfg).expect("test store builds");
    assert_eq!(report.records, BLOCKS);
    out
}

fn start_with_store(store: &Path) -> Server {
    Server::start(
        ModelKind::CrudeHaswell,
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_depth: 8,
            store_path: Some(store.display().to_string()),
            ..ServeConfig::default()
        },
    )
    .expect("bind loopback")
}

fn explain_body(block: &str, seed: u64) -> String {
    serde_json::to_string(&serde_json::json!({"v": 1, "block": block, "seed": seed})).unwrap()
}

#[test]
fn store_hits_are_bitwise_and_misses_fall_through_live() {
    let dir = std::env::temp_dir().join(format!("comet-serve-store-{}", std::process::id()));
    let store_path = build_test_store(&dir);
    let store = ExplanationStore::open(&store_path).unwrap();
    let text = store.iter_texts().next().expect("store has records").to_string();
    let stored = store.lookup(&text).expect("stored explanation");

    let server = start_with_store(&store_path);
    let addr = server.addr();

    // A stored block with the store's (default ε, seed 0) → store hit.
    let (status, body) = one_shot(addr, &post("/v1/explain", &explain_body(&text, 0)));
    assert_eq!(status, 200, "{body}");
    let resp: Value = serde_json::from_str(&body).unwrap();
    assert_eq!(resp["explanation"]["source"].as_str(), Some("store"), "{body}");
    assert_eq!(resp["explanation"]["tier"].as_str(), Some("store"), "{body}");
    assert_eq!(resp["coalesced"].as_bool(), Some(false));
    // JSON floats render shortest-round-trip, so equality here is
    // equality of the underlying f64 — the stored bits survived the
    // wire.
    assert_eq!(resp["explanation"]["precision"].as_f64(), Some(stored.precision));
    assert_eq!(resp["explanation"]["coverage"].as_f64(), Some(stored.coverage));
    assert_eq!(resp["explanation"]["prediction"].as_f64(), Some(stored.prediction));
    assert_eq!(resp["explanation"]["queries"].as_u64(), Some(stored.queries));
    assert_eq!(resp["explanation"]["anchored"].as_bool(), Some(stored.anchored));

    // A block that is not in the corpus → consulted miss, live answer.
    let (status, body) =
        one_shot(addr, &post("/v1/explain", &explain_body("add rcx, rax\nmov rdx, rcx", 0)));
    assert_eq!(status, 200, "{body}");
    let resp: Value = serde_json::from_str(&body).unwrap();
    assert_eq!(resp["explanation"]["source"].as_str(), Some("live"), "{body}");

    // A stored block under a different seed → the store is bypassed
    // (not consulted, not a miss): the stored bits only replicate the
    // build seed's search.
    let misses_before = server.ctx().metrics().store_miss_count();
    let (status, body) = one_shot(addr, &post("/v1/explain", &explain_body(&text, 7)));
    assert_eq!(status, 200, "{body}");
    let resp: Value = serde_json::from_str(&body).unwrap();
    assert_eq!(resp["explanation"]["source"].as_str(), Some("live"), "{body}");
    assert_eq!(server.ctx().metrics().store_miss_count(), misses_before);

    let metrics = server.ctx().metrics();
    assert_eq!(metrics.store_hit_count(), 1);
    assert_eq!(metrics.store_miss_count(), 1);
    assert_eq!(metrics.tier_count(comet_serve::Tier::Store), 1);

    // The same counters surface on /metrics, next to the per-version
    // cache gauge.
    let (status, body) = one_shot(addr, &get("/metrics"));
    assert_eq!(status, 200);
    assert!(body.contains("comet_store_hits_total 1"), "{body}");
    assert!(body.contains("comet_store_misses_total 1"), "{body}");
    assert!(body.contains("comet_explain_tier_total{tier=\"store\"} 1"), "{body}");
    assert!(body.contains("comet_store_hit_latency_seconds_count 1"), "{body}");
    assert!(body.contains("comet_cache_version 1"), "{body}");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn analytics_endpoints_serve_store_rollups() {
    let dir = std::env::temp_dir().join(format!("comet-serve-analytics-{}", std::process::id()));
    let store_path = build_test_store(&dir);
    let store = ExplanationStore::open(&store_path).unwrap();

    let server = start_with_store(&store_path);
    let addr = server.addr();

    let (status, body) = one_shot(addr, &get("/analytics/categories"));
    assert_eq!(status, 200, "{body}");
    let resp: Value = serde_json::from_str(&body).unwrap();
    assert_eq!(resp["source"].as_str(), Some("store"));
    assert_eq!(resp["records"].as_u64(), Some(BLOCKS as u64));
    let categories = resp["categories"].as_array().expect("categories list");
    assert_eq!(categories.len(), store.analytics().categories.len());
    // The wire rollups are the stored rollups, field for field.
    for (wire, built) in categories.iter().zip(&store.analytics().categories) {
        assert_eq!(wire["category"].as_str(), Some(built.category.as_str()));
        assert_eq!(wire["blocks"].as_u64(), Some(built.blocks));
        assert_eq!(wire["pct_eta"].as_f64(), Some(built.pct_eta));
    }

    let (status, body) = one_shot(addr, &get("/analytics/opcodes"));
    assert_eq!(status, 200, "{body}");
    let resp: Value = serde_json::from_str(&body).unwrap();
    let opcodes = resp["opcodes"].as_array().expect("opcodes list");
    assert_eq!(opcodes.len(), store.analytics().opcodes.len());

    // Wrong method → 400, like every other known endpoint.
    let (status, _) = one_shot(addr, &post("/analytics/categories", "{}"));
    assert_eq!(status, 400);

    server.shutdown();

    // Without a store the endpoints are a clean 503.
    let server = Server::start(
        ModelKind::CrudeHaswell,
        ServeConfig { addr: "127.0.0.1:0".into(), workers: 1, ..ServeConfig::default() },
    )
    .unwrap();
    let (status, body) = one_shot(server.addr(), &get("/analytics/categories"));
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("no explanation store configured"), "{body}");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn readyz_reports_store_health_and_unreadable_store_blocks_readiness() {
    let dir = std::env::temp_dir().join(format!("comet-serve-readyz-{}", std::process::id()));
    let store_path = build_test_store(&dir);

    // Healthy store: ready, with the store section describing it.
    let server = start_with_store(&store_path);
    let (status, body) = one_shot(server.addr(), &get("/readyz"));
    assert_eq!(status, 200, "{body}");
    let resp: Value = serde_json::from_str(&body).unwrap();
    assert_eq!(resp["ready"].as_bool(), Some(true));
    assert_eq!(resp["store"]["open"].as_bool(), Some(true), "{body}");
    assert_eq!(resp["store"]["version_match"].as_bool(), Some(true), "{body}");
    assert_eq!(resp["store"]["records"].as_u64(), Some(BLOCKS as u64), "{body}");
    server.shutdown();

    // Corrupt the file: the server still starts and serves live, but
    // /readyz turns 503 with the store named in the reasons.
    let mut bytes = std::fs::read(&store_path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    std::fs::write(&store_path, &bytes).unwrap();
    let server = start_with_store(&store_path);
    let addr = server.addr();
    let (status, body) = one_shot(addr, &get("/readyz"));
    assert_eq!(status, 503, "{body}");
    let resp: Value = serde_json::from_str(&body).unwrap();
    assert_eq!(resp["ready"].as_bool(), Some(false));
    assert_eq!(resp["store"]["open"].as_bool(), Some(false), "{body}");
    let reasons = resp["reasons"].as_array().expect("reasons list");
    assert!(
        reasons.iter().any(|r| r.as_str().is_some_and(|s| s.contains("store unreadable"))),
        "unexpected reasons: {reasons:?}"
    );
    // Live serving is unaffected; analytics answer 503 with the error.
    let (status, body) = one_shot(addr, &post("/v1/explain", &explain_body("div rcx", 0)));
    assert_eq!(status, 200, "{body}");
    let resp: Value = serde_json::from_str(&body).unwrap();
    assert_eq!(resp["explanation"]["source"].as_str(), Some("live"));
    let (status, body) = one_shot(addr, &get("/analytics/categories"));
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("store unreadable"), "{body}");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hot_swap_structurally_disables_store_hits() {
    let dir = std::env::temp_dir().join(format!("comet-serve-swap-{}", std::process::id()));
    let store_path = build_test_store(&dir);
    let store = ExplanationStore::open(&store_path).unwrap();
    let text = store.iter_texts().next().unwrap().to_string();

    let server = start_with_store(&store_path);
    let addr = server.addr();

    // Before the swap: store hit.
    let (status, body) = one_shot(addr, &post("/v1/explain", &explain_body(&text, 0)));
    assert_eq!(status, 200, "{body}");
    let resp: Value = serde_json::from_str(&body).unwrap();
    assert_eq!(resp["explanation"]["source"].as_str(), Some("store"));

    // Hot-swap to an identical model kind: shadow validation passes,
    // the version bumps — and that alone must end store hits, because
    // the stored bits replicate a search against the *old* version.
    let (status, body) = one_shot(addr, &post("/admin/model", r#"{"v":1,"kind":"crude-haswell"}"#));
    assert_eq!(status, 200, "{body}");
    let resp: Value = serde_json::from_str(&body).unwrap();
    assert_eq!(resp["action"].as_str(), Some("promoted"), "{body}");
    let new_version = resp["active_version"].as_u64().unwrap();
    assert!(new_version > 1);

    let (status, body) = one_shot(addr, &post("/v1/explain", &explain_body(&text, 0)));
    assert_eq!(status, 200, "{body}");
    let resp: Value = serde_json::from_str(&body).unwrap();
    assert_eq!(resp["explanation"]["source"].as_str(), Some("live"), "{body}");
    assert_eq!(resp["model_version"].as_u64(), Some(new_version));
    assert_eq!(server.ctx().metrics().store_hit_count(), 1, "no hits after the swap");

    // /readyz stays ready but reports the version mismatch.
    let (status, body) = one_shot(addr, &get("/readyz"));
    assert_eq!(status, 200, "{body}");
    let resp: Value = serde_json::from_str(&body).unwrap();
    assert_eq!(resp["store"]["open"].as_bool(), Some(true));
    assert_eq!(resp["store"]["version_match"].as_bool(), Some(false), "{body}");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
