//! Integration tests for the crash-restart supervisor, driving real
//! child processes. `/bin/sh` stands in for `comet-serve`: `read _x`
//! models a long-running child that exits on the stdin-EOF drain
//! signal (exactly the `--supervised` contract), and `exit 7` models a
//! crash loop.

use std::time::{Duration, Instant};

use comet_serve::{ChildSpec, Supervisor, SupervisorConfig};

fn sh(script: &str) -> ChildSpec {
    ChildSpec { program: "/bin/sh".into(), args: vec!["-c".into(), script.into()] }
}

/// Poll `check` until it passes or ~5s elapse.
fn wait_for(what: &str, mut check: impl FnMut() -> bool) {
    let start = Instant::now();
    while !check() {
        assert!(start.elapsed() < Duration::from_secs(5), "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn killed_child_is_restarted_with_a_new_pid() {
    let config = SupervisorConfig {
        children: 2,
        backoff_base: Duration::from_millis(5),
        backoff_max: Duration::from_millis(50),
        stable_after: Duration::from_millis(1),
        poll: Duration::from_millis(5),
        ..SupervisorConfig::default()
    };
    let supervisor = Supervisor::start(sh("read _x"), config).expect("start children");
    wait_for("both children up", || supervisor.status().alive == 2);
    let before = supervisor.status();
    let pid0 = before.pids[0];
    assert!(pid0.is_some());

    // SIGKILL slot 0 — the crash lever the chaos harness uses.
    assert!(supervisor.kill_child(0), "slot 0 had a child to kill");
    wait_for("slot 0 to be respawned", || {
        let status = supervisor.status();
        status.restarts >= 1 && status.alive == 2 && status.pids[0].is_some()
    });

    let after = supervisor.status();
    assert_ne!(after.pids[0], pid0, "restart must produce a fresh process");
    assert_eq!(after.pids[1], before.pids[1], "the healthy sibling is untouched");
    assert!(!after.breaker_open, "one crash must not open the breaker");
    assert_eq!(supervisor.shutdown(), 0);
}

#[test]
fn restart_storm_opens_the_breaker_and_reports_failure() {
    let config = SupervisorConfig {
        children: 1,
        backoff_base: Duration::from_millis(2),
        backoff_max: Duration::from_millis(10),
        max_restarts: 3,
        restart_window: Duration::from_secs(30),
        poll: Duration::from_millis(2),
        ..SupervisorConfig::default()
    };
    // A child that always exits immediately: restarts are pure churn,
    // so the rate breaker must give up rather than loop forever.
    let supervisor = Supervisor::start(sh("exit 7"), config).expect("start child");
    wait_for("the breaker to open", || supervisor.done());

    let status = supervisor.status();
    assert!(status.breaker_open);
    assert_eq!(status.alive, 0, "an open breaker kills every child");
    assert_eq!(supervisor.shutdown(), 1, "breaker trip is a failing exit code");
}

#[test]
fn shutdown_drains_children_via_stdin_eof() {
    let config = SupervisorConfig {
        children: 2,
        grace: Duration::from_secs(5),
        poll: Duration::from_millis(5),
        ..SupervisorConfig::default()
    };
    let supervisor = Supervisor::start(sh("read _x"), config).expect("start children");
    wait_for("both children up", || supervisor.status().alive == 2);

    // `read _x` only returns at stdin EOF, so a prompt exit proves the
    // children drained on the pipe-close signal — the grace-period
    // kill (5s) never fired.
    let start = Instant::now();
    assert_eq!(supervisor.shutdown(), 0);
    assert!(start.elapsed() < Duration::from_secs(2), "drain took {:?}", start.elapsed());
}
