//! Integration tests for the crash-safe model registry and hot-swap
//! lifecycle over real loopback sockets: admin swaps change what every
//! response reports *and computes*, bad candidates are rejected or
//! rolled back, registry state survives a restart, and a hammer run
//! proves responses are never torn across concurrent swaps.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::Arc;
use std::time::{Duration, Instant};

use comet_isa::Microarch;
use comet_models::{CostModel, CrudeModel};
use comet_serve::{ModelKind, ServeConfig, Server};
use serde_json::Value;

/// One HTTP exchange over a fresh connection; returns (status, body).
fn one_shot(addr: SocketAddr, raw: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    stream.write_all(raw.as_bytes()).expect("write request");
    let mut reader = BufReader::new(&stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 =
        status_line.split_whitespace().nth(1).expect("status code").parse().expect("numeric");
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().expect("content-length");
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (status, String::from_utf8(body).expect("utf8 body"))
}

fn post(path: &str, body: &str) -> String {
    format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
}

fn get(path: &str) -> String {
    format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
}

fn json(body: &str) -> Value {
    serde_json::from_str(body).unwrap_or_else(|e| panic!("bad json ({e}): {body}"))
}

/// A scratch registry directory; best-effort removed on drop.
struct Scratch(std::path::PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("comet-swaptest-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn path(&self) -> String {
        self.0.to_string_lossy().into_owned()
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn start(registry_dir: Option<String>, probation_requests: u64) -> Server {
    Server::start(
        ModelKind::CrudeHaswell,
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_depth: 32,
            registry_dir,
            probation_requests,
            ..ServeConfig::default()
        },
    )
    .expect("bind loopback")
}

/// Poll `check` until it passes or ~5s elapse.
fn wait_for(what: &str, mut check: impl FnMut() -> bool) {
    let start = Instant::now();
    while !check() {
        assert!(start.elapsed() < Duration::from_secs(5), "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

// A block whose cost actually differs between the two crude
// microarchitectures (FP divide throughput differs on HSW vs SKL).
const BLOCK: &str = "vdivss xmm0, xmm0, xmm6\nadd rcx, rax";

/// The bitwise-exact prediction the serving stack must produce for
/// `BLOCK` under each crude microarchitecture (the cache and the
/// resilience wrapper forward values unchanged, and the JSON encoder
/// round-trips f64 exactly).
fn expected(uarch: Microarch) -> f64 {
    CrudeModel::new(uarch).predict(&comet_isa::parse_block(BLOCK).unwrap())
}

fn predict(addr: SocketAddr) -> (u16, Value) {
    let body = format!(r#"{{"v":1,"block":"{}"}}"#, BLOCK.replace('\n', "\\n"));
    let (status, body) = one_shot(addr, &post("/v1/predict", &body));
    (status, json(&body))
}

#[test]
fn swap_changes_version_and_predictions_bitwise() {
    let scratch = Scratch::new("swap");
    let server = start(Some(scratch.path()), 0);
    let addr = server.addr();

    // Boot adopted the CLI model as registry v1.
    let (status, body) = one_shot(addr, &get("/admin/model"));
    assert_eq!(status, 200, "{body}");
    let resp = json(&body);
    assert_eq!(resp["action"].as_str(), Some("status"));
    assert_eq!(resp["active_version"].as_u64(), Some(1));
    assert_eq!(resp["active_kind"].as_str(), Some("crude-haswell"));
    assert_eq!(resp["last_good_version"].as_u64(), Some(1));

    // Every predict names its epoch and computes with exactly it.
    let (status, resp) = predict(addr);
    assert_eq!(status, 200);
    assert_eq!(resp["model_version"].as_u64(), Some(1));
    assert_eq!(resp["prediction"].as_f64(), Some(expected(Microarch::Haswell)), "{resp}");

    // Readiness reports the serving version too.
    let (status, body) = one_shot(addr, &get("/readyz"));
    assert_eq!(status, 200, "{body}");
    assert_eq!(json(&body)["model_version"].as_u64(), Some(1));

    // Hot-swap to Skylake: stage → validate → publish (probation off).
    let (status, body) = one_shot(
        addr,
        &post("/admin/model", r#"{"v":1,"kind":"crude-skylake","note":"uarch bump"}"#),
    );
    assert_eq!(status, 200, "{body}");
    let resp = json(&body);
    assert_eq!(resp["action"].as_str(), Some("promoted"));
    assert_eq!(resp["active_version"].as_u64(), Some(2));
    assert_eq!(resp["staged_version"].as_u64(), Some(2));
    assert_eq!(resp["shadow"]["passed"].as_bool(), Some(true), "{resp}");
    assert_eq!(resp["last_good_version"].as_u64(), Some(2), "probation off settles at once");

    // The same block now computes with the new model — proof the
    // prediction cache cannot leak values across versions.
    let (status, resp) = predict(addr);
    assert_eq!(status, 200);
    assert_eq!(resp["model_version"].as_u64(), Some(2));
    assert_eq!(resp["prediction"].as_f64(), Some(expected(Microarch::Skylake)), "{resp}");
    assert_ne!(expected(Microarch::Haswell), expected(Microarch::Skylake));

    // Explains carry the version as well.
    let (status, body) =
        one_shot(addr, &post("/v1/explain", r#"{"v":1,"block":"add rcx, rax","seed":7}"#));
    assert_eq!(status, 200, "{body}");
    assert_eq!(json(&body)["model_version"].as_u64(), Some(2));

    // And the swap shows up on /metrics.
    let (status, text) = one_shot(addr, &get("/metrics"));
    assert_eq!(status, 200);
    assert!(text.contains("comet_model_version 2"), "{text}");
    assert!(text.contains("comet_model_swaps_total 1"), "{text}");
    assert!(text.contains("comet_model_rollbacks_total 0"), "{text}");

    server.shutdown();
}

#[test]
fn bad_candidate_is_rejected_with_409_and_dry_run_only_stages() {
    let server = start(None, 0);
    let addr = server.addr();

    // A candidate predicting 50× off fails the shadow MAPE gate.
    let (status, body) = one_shot(
        addr,
        &post("/admin/model", r#"{"v":1,"kind":"crude-haswell","chaos_scale":50.0}"#),
    );
    assert_eq!(status, 409, "{body}");
    let resp = json(&body);
    assert_eq!(resp["action"].as_str(), Some("rejected"));
    assert_eq!(resp["active_version"].as_u64(), Some(1), "a rejected candidate must not serve");
    assert_eq!(resp["shadow"]["passed"].as_bool(), Some(false));
    assert!(
        resp["shadow"]["failures"].as_array().is_some_and(|f| !f.is_empty()),
        "rejection must say why: {resp}"
    );

    // Dry run: validate a good candidate without swapping.
    let (status, body) =
        one_shot(addr, &post("/admin/model", r#"{"v":1,"kind":"crude-skylake","dry_run":true}"#));
    assert_eq!(status, 200, "{body}");
    let resp = json(&body);
    assert_eq!(resp["action"].as_str(), Some("dry-run"));
    assert_eq!(resp["active_version"].as_u64(), Some(1));
    assert_eq!(resp["shadow"]["passed"].as_bool(), Some(true));

    // Traffic never saw either candidate.
    let (status, resp) = predict(addr);
    assert_eq!(status, 200);
    assert_eq!(resp["model_version"].as_u64(), Some(1));
    assert_eq!(resp["prediction"].as_f64(), Some(expected(Microarch::Haswell)));

    // rollback + kind is a caller error.
    let (status, body) =
        one_shot(addr, &post("/admin/model", r#"{"v":1,"kind":"crude-skylake","rollback":true}"#));
    assert_eq!(status, 400, "{body}");

    server.shutdown();
}

#[test]
fn forced_failing_model_rolls_back_automatically() {
    let scratch = Scratch::new("rollback");
    let server = start(Some(scratch.path()), 32);
    let addr = server.addr();

    // Force a model whose every prediction errors past the (failing)
    // shadow gates and onto probation.
    let (status, body) = one_shot(
        addr,
        &post("/admin/model", r#"{"v":1,"kind":"crude-haswell","chaos_fail":true,"force":true}"#),
    );
    assert_eq!(status, 200, "{body}");
    let resp = json(&body);
    assert_eq!(resp["action"].as_str(), Some("promoted"));
    assert_eq!(resp["active_version"].as_u64(), Some(2));
    assert_eq!(resp["shadow"]["passed"].as_bool(), Some(false), "forced past a failing report");
    assert_eq!(resp["last_good_version"].as_u64(), Some(1), "not yet durably promoted");
    assert!(resp["probation_remaining"].as_u64().unwrap() > 0);

    // Real traffic fails; the probation failure-rate trip fires once
    // enough samples accrue and the server swaps itself back to v1.
    let mut failures = 0;
    for _ in 0..32 {
        let (status, resp) = predict(addr);
        if status == 200 && resp["model_version"].as_u64() == Some(1) {
            break; // rolled back mid-loop
        }
        assert_eq!(status, 500, "probation traffic against the failing model: {resp}");
        failures += 1;
    }
    assert!(failures >= 8, "the trip needs a minimum sample count, got {failures}");

    wait_for("automatic rollback", || {
        let (_, body) = one_shot(addr, &get("/admin/model"));
        json(&body)["rollbacks"].as_u64() == Some(1)
    });
    let (status, body) = one_shot(addr, &get("/admin/model"));
    assert_eq!(status, 200);
    let resp = json(&body);
    assert_eq!(resp["active_version"].as_u64(), Some(1), "serving last-known-good again");
    assert_eq!(resp["last_good_version"].as_u64(), Some(1));
    assert_eq!(resp["probation_remaining"].as_u64(), Some(0));
    let reason = resp["last_rollback"].as_str().expect("rollback reason recorded");
    assert!(reason.contains("failure rate"), "{reason}");

    // Service is healthy on the rolled-back epoch, warm cache and all.
    let (status, resp) = predict(addr);
    assert_eq!(status, 200);
    assert_eq!(resp["model_version"].as_u64(), Some(1));
    assert_eq!(resp["prediction"].as_f64(), Some(expected(Microarch::Haswell)));

    // The manifest never moved: a crash during the bad epoch would have
    // recovered to v1 as well. The failed candidate stays on disk.
    let (_, body) = one_shot(addr, &get("/metrics"));
    assert!(body.contains("comet_model_rollbacks_total 1"), "{body}");

    server.shutdown();
}

#[test]
fn registry_state_survives_restart() {
    let scratch = Scratch::new("restart");

    // First life: swap to Skylake and settle it as last-known-good.
    {
        let server = start(Some(scratch.path()), 0);
        let (status, body) = one_shot(
            server.addr(),
            &post("/admin/model", r#"{"v":1,"kind":"crude-skylake","note":"durable"}"#),
        );
        assert_eq!(status, 200, "{body}");
        assert_eq!(json(&body)["last_good_version"].as_u64(), Some(2));
        server.shutdown();
    }

    // Second life boots with a *Haswell* CLI default, but the registry's
    // last-known-good (Skylake, v2) overrides it.
    let server = start(Some(scratch.path()), 0);
    let addr = server.addr();
    let (status, body) = one_shot(addr, &get("/admin/model"));
    assert_eq!(status, 200, "{body}");
    let resp = json(&body);
    assert_eq!(resp["active_version"].as_u64(), Some(2));
    assert_eq!(resp["active_kind"].as_str(), Some("crude-skylake"));
    assert_eq!(
        resp["registry_versions"].as_array().map(|v| v.len()),
        Some(2),
        "both snapshots intact on disk: {resp}"
    );

    let (status, resp) = predict(addr);
    assert_eq!(status, 200);
    assert_eq!(resp["model_version"].as_u64(), Some(2));
    assert_eq!(resp["prediction"].as_f64(), Some(expected(Microarch::Skylake)));

    server.shutdown();
}

/// The acceptance hammer: traffic threads assert every single response
/// is internally consistent — the prediction is bitwise-equal to what
/// the model named by the response's own `model_version` computes —
/// while an admin thread swaps models continuously. A torn read
/// (version from one epoch, prediction from another, or a stale cache
/// hit across versions) fails immediately.
#[test]
fn hammer_predictions_match_reported_version_during_continuous_swaps() {
    const SWAPS: u64 = 24;
    const CLIENTS: usize = 4;

    let server = start(None, 0);
    let addr = server.addr();

    // Version parity encodes the kind: boot v1 is Haswell, and the
    // admin thread alternates starting with Skylake (v2), so even
    // versions are Skylake and odd versions are Haswell.
    let want_haswell = expected(Microarch::Haswell);
    let want_skylake = expected(Microarch::Skylake);
    assert_ne!(want_haswell, want_skylake);

    let stop = Arc::new(AtomicBool::new(false));
    let clients: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut checked = 0u64;
                while !stop.load(Relaxed) {
                    let (status, resp) = predict(addr);
                    assert_eq!(status, 200, "{resp}");
                    let version = resp["model_version"].as_u64().expect("version on wire");
                    let prediction = resp["prediction"].as_f64().expect("prediction on wire");
                    let want = if version % 2 == 0 { want_skylake } else { want_haswell };
                    assert_eq!(
                        prediction.to_bits(),
                        want.to_bits(),
                        "torn response: v{version} reported {prediction}, epoch computes {want}"
                    );
                    checked += 1;
                }
                checked
            })
        })
        .collect();

    for i in 0..SWAPS {
        let kind = if i % 2 == 0 { "crude-skylake" } else { "crude-haswell" };
        let (status, body) = one_shot(
            addr,
            &post("/admin/model", &format!(r#"{{"v":1,"kind":"{kind}","force":true}}"#)),
        );
        assert_eq!(status, 200, "swap {i}: {body}");
        assert_eq!(json(&body)["action"].as_str(), Some("promoted"), "swap {i}: {body}");
    }
    stop.store(true, Relaxed);

    let checked: u64 = clients.into_iter().map(|c| c.join().expect("client thread")).sum();
    assert!(checked > 0, "hammer made no requests");

    let (_, body) = one_shot(addr, &get("/admin/model"));
    let resp = json(&body);
    assert_eq!(resp["active_version"].as_u64(), Some(1 + SWAPS));
    assert_eq!(resp["swaps"].as_u64(), Some(SWAPS));
    assert_eq!(resp["rollbacks"].as_u64(), Some(0));

    server.shutdown();
}
