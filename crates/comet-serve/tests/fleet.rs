//! Fleet integration: a real `Router` in front of two real sharded
//! `Server`s, all over loopback TCP. Exercises key-stable routing
//! (router and shard agree on ownership), the shard-side 409 fence
//! against misrouted keys, aggregated `/metrics` and `/readyz`, and
//! partial degradation when one shard dies (its slice 503s, the
//! survivor keeps answering).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use comet_serve::route::ShardSpec;
use comet_serve::{ModelKind, Router, RouterConfig, ServeConfig, Server};

fn one_shot(addr: SocketAddr, raw: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    stream.write_all(raw.as_bytes()).expect("write request");
    let mut reader = BufReader::new(&stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line.split_whitespace().nth(1).unwrap().parse().unwrap();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().unwrap();
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (status, String::from_utf8(body).expect("utf8"))
}

fn post(path: &str, body: &str) -> String {
    format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
}

fn get(path: &str) -> String {
    format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
}

fn predict_body(block: &str) -> String {
    format!(r#"{{"v":1,"block":"{block}"}}"#)
}

struct Fleet {
    shards: Vec<Server>,
    router: Router,
}

fn start_fleet(count: u32) -> Fleet {
    let shards: Vec<Server> = (0..count)
        .map(|index| {
            Server::start(
                ModelKind::CrudeHaswell,
                ServeConfig {
                    addr: "127.0.0.1:0".into(),
                    workers: 2,
                    shard: Some(ShardSpec { index, count }),
                    ..ServeConfig::default()
                },
            )
            .expect("bind shard")
        })
        .collect();
    let router = Router::start(RouterConfig {
        shards: shards.iter().map(|s| s.addr().to_string()).collect(),
        workers: 2,
        ..RouterConfig::default()
    })
    .expect("bind router");
    Fleet { shards, router }
}

/// One parseable block per shard slot, found by asking the router's
/// own ring (unparseable blocks 400 before the shard fence, so the
/// probes must be real instructions).
fn blocks_per_shard(router: &Router, count: u32) -> Vec<String> {
    let candidates = [
        "add rcx, rax",
        "mov rdx, rcx",
        "pop rbx",
        "div rcx",
        "imul rax, rcx",
        "nop",
        "add rax, rbx",
        "mov rax, rdx",
        "push rbp",
        "sub rax, rcx",
        "xor rax, rax",
        "inc rcx",
    ];
    (0..count)
        .map(|shard| {
            candidates
                .iter()
                .find(|b| router.owner_of_block(b) == shard)
                .unwrap_or_else(|| panic!("no candidate block hashes to shard {shard}"))
                .to_string()
        })
        .collect()
}

#[test]
fn routing_is_key_stable_and_shards_fence_misroutes() {
    let fleet = start_fleet(2);
    let blocks = blocks_per_shard(&fleet.router, 2);

    for (shard, block) in blocks.iter().enumerate() {
        let request = post("/v1/predict", &predict_body(block));

        // Through the router: always 200.
        let (status, via_router) = one_shot(fleet.router.addr(), &request);
        assert_eq!(status, 200, "shard {shard} via router: {via_router}");

        // Straight at the owning shard: identical answer.
        let (status, direct) = one_shot(fleet.shards[shard].addr(), &request);
        assert_eq!(status, 200);
        assert_eq!(direct, via_router, "router must forward the shard's bytes verbatim");

        // Straight at the wrong shard: fenced with a 409 naming the owner.
        let other = 1 - shard;
        let (status, body) = one_shot(fleet.shards[other].addr(), &request);
        assert_eq!(status, 409, "misroute must be refused: {body}");
        assert!(body.contains("owned by shard"), "{body}");
        assert!(body.contains(&format!("owned by shard {shard}")), "{body}");
    }

    for server in fleet.shards {
        server.shutdown();
    }
    fleet.router.shutdown();
}

#[test]
fn router_aggregates_metrics_and_readyz_across_shards() {
    let fleet = start_fleet(2);
    let blocks = blocks_per_shard(&fleet.router, 2);

    // Traffic to both slices so per-shard counters are nonzero.
    for block in &blocks {
        let (status, _) = one_shot(fleet.router.addr(), &post("/v1/predict", &predict_body(block)));
        assert_eq!(status, 200);
    }

    // /readyz: aggregated verdict with one entry per shard.
    let (status, body) = one_shot(fleet.router.addr(), &get("/readyz"));
    assert_eq!(status, 200, "{body}");
    assert!(body.contains(r#""ready":true"#), "{body}");
    assert!(body.contains(r#""router":true"#), "{body}");
    assert!(body.contains(r#""index":0"#) && body.contains(r#""index":1"#), "{body}");

    // /metrics: per-shard up gauges, router counters, and shard
    // counters summed into a single exposition.
    let (status, text) = one_shot(fleet.router.addr(), &get("/metrics"));
    assert_eq!(status, 200);
    assert!(text.contains("comet_shard_up{shard=\"0\"} 1"), "{text}");
    assert!(text.contains("comet_shard_up{shard=\"1\"} 1"), "{text}");
    assert!(text.contains("comet_router_requests_total"), "{text}");
    let predict_total: f64 = text
        .lines()
        .filter(|l| l.starts_with("comet_requests_total{") && l.contains("endpoint=\"predict\""))
        .filter_map(|l| l.rsplit_once(' ').and_then(|(_, v)| v.parse::<f64>().ok()))
        .sum();
    assert!(predict_total >= 2.0, "summed predict counter across shards: {predict_total}\n{text}");

    // /healthz is answered by the router itself, without fan-out.
    let (status, body) = one_shot(fleet.router.addr(), &get("/healthz"));
    assert_eq!(status, 200);
    assert!(body.contains(r#""router":true"#), "{body}");
    assert!(body.contains(r#""shards":2"#), "{body}");

    for server in fleet.shards {
        server.shutdown();
    }
    fleet.router.shutdown();
}

#[test]
fn dead_shard_degrades_only_its_slice() {
    let fleet = start_fleet(2);
    let blocks = blocks_per_shard(&fleet.router, 2);

    // Warm both slices, then kill shard 1.
    for block in &blocks {
        let (status, _) = one_shot(fleet.router.addr(), &post("/v1/predict", &predict_body(block)));
        assert_eq!(status, 200);
    }
    let mut shards = fleet.shards;
    shards.remove(1).shutdown();

    // Shard 1's slice: 503 naming the dead shard, not a hang or a
    // misrouted answer.
    let (status, body) =
        one_shot(fleet.router.addr(), &post("/v1/predict", &predict_body(&blocks[1])));
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("shard 1 unavailable"), "{body}");

    // Shard 0's slice keeps answering.
    let (status, body) =
        one_shot(fleet.router.addr(), &post("/v1/predict", &predict_body(&blocks[0])));
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("prediction"), "{body}");

    // Aggregated readyz turns 503 and pins the blame on shard 1.
    let (status, body) = one_shot(fleet.router.addr(), &get("/readyz"));
    assert_eq!(status, 503, "{body}");
    assert!(body.contains(r#""ready":false"#), "{body}");

    // The up gauge for shard 1 drops to 0; shard 0 stays 1.
    let (status, text) = one_shot(fleet.router.addr(), &get("/metrics"));
    assert_eq!(status, 200);
    assert!(text.contains("comet_shard_up{shard=\"0\"} 1"), "{text}");
    assert!(text.contains("comet_shard_up{shard=\"1\"} 0"), "{text}");

    for server in shards {
        server.shutdown();
    }
    fleet.router.shutdown();
}
