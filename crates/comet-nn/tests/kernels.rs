//! Cross-variant kernel agreement: the executable form of the
//! determinism policy in `comet-nn/src/kernel.rs`.
//!
//! * `matvec` / `matvec_lanes` must be **bitwise identical** between
//!   `scalar-v1` and `avx2-v1` on every shape — including the odd ones
//!   (`cols % 8 != 0`, single rows, an empty lane list) where the AVX2
//!   remainder handling differs from its main loop.
//! * `sigmoid_slice` / `tanh_slice` use polynomial transcendentals
//!   under AVX2; agreement with libm is ULP-bounded, not bitwise.
//! * Each variant's predictions must be bitwise batch-size-invariant:
//!   a block predicted alone and the same block inside any batch give
//!   the same bits.
//! * Across variants, whole-network predictions agree to a tested
//!   relative bound.
//!
//! AVX2 cases skip silently on hardware without AVX2+FMA; the scalar
//! invariants still run everywhere.

use comet_nn::kernel::{self, Kernel};
use comet_nn::{BatchScratch, HierarchicalRegressor, InferScratch, TokenizedBlock};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Distance in units-in-the-last-place between two finite doubles,
/// via the order-preserving integer mapping of IEEE-754 bit patterns.
fn ulp_distance(a: f64, b: f64) -> u64 {
    assert!(a.is_finite() && b.is_finite(), "non-finite kernel output: {a} vs {b}");
    fn key(x: f64) -> i64 {
        let bits = x.to_bits() as i64;
        if bits < 0 {
            i64::MIN - bits
        } else {
            bits
        }
    }
    key(a).abs_diff(key(b))
}

fn avx2_or_skip() -> Option<&'static Kernel> {
    let kernel = kernel::avx2();
    if kernel.is_none() {
        eprintln!("skipping: CPU lacks AVX2+FMA, nothing to compare against scalar");
    }
    kernel
}

proptest! {
    /// `matvec` is bitwise identical across variants on arbitrary
    /// shapes, including `rows == 1` and `cols` not a multiple of the
    /// vector width.
    #[test]
    fn matvec_bitwise_identical_across_variants(
        rows in 1usize..12,
        cols in 1usize..20,
        seed in any::<u64>(),
    ) {
        let Some(avx2) = kernel::avx2() else { return Ok(()) };
        let scalar = kernel::scalar();
        let w = pseudo_values(rows * cols, seed);
        let x = pseudo_values(cols, seed ^ 0x9E37);
        let mut y_scalar = vec![f64::NAN; rows];
        let mut y_avx2 = vec![f64::NAN; rows];
        (scalar.matvec)(&w, rows, cols, &x, &mut y_scalar);
        (avx2.matvec)(&w, rows, cols, &x, &mut y_avx2);
        for (r, (a, b)) in y_scalar.iter().zip(&y_avx2).enumerate() {
            prop_assert_eq!(
                a.to_bits(), b.to_bits(),
                "row {} of {}x{}: scalar {} vs avx2 {}", r, rows, cols, a, b
            );
        }
    }

    /// `matvec_lanes` is bitwise identical across variants for every
    /// lane subset — empty, sparse, and full — and leaves unlisted
    /// lanes untouched.
    #[test]
    fn matvec_lanes_bitwise_identical_across_variants(
        rows in 1usize..10,
        cols in 1usize..18,
        present in prop::collection::vec(any::<bool>(), 0..8),
        seed in any::<u64>(),
    ) {
        let Some(avx2) = kernel::avx2() else { return Ok(()) };
        let scalar = kernel::scalar();
        let n_lanes = present.len().max(1);
        let lanes: Vec<usize> =
            present.iter().enumerate().filter(|(_, &p)| p).map(|(b, _)| b).collect();
        let w = pseudo_values(rows * cols, seed);
        let xs = pseudo_values(n_lanes * cols, seed ^ 0x517C);
        // NaN sentinel: unlisted lanes must keep it, bit for bit.
        let mut ys_scalar = vec![f64::NAN; n_lanes * rows];
        let mut ys_avx2 = ys_scalar.clone();
        (scalar.matvec_lanes)(&w, rows, cols, &xs, &mut ys_scalar, &lanes);
        (avx2.matvec_lanes)(&w, rows, cols, &xs, &mut ys_avx2, &lanes);
        for (i, (a, b)) in ys_scalar.iter().zip(&ys_avx2).enumerate() {
            prop_assert_eq!(
                a.to_bits(), b.to_bits(),
                "entry {} ({}x{}, lanes {:?}): scalar {} vs avx2 {}", i, rows, cols, &lanes, a, b
            );
        }
    }

    /// Polynomial sigmoid agrees with libm within a small ULP bound
    /// across the full useful input range. In the saturated tail the
    /// two can land on different subnormals (libm underflows to zero
    /// where the clamped polynomial keeps ~1e-317) — ULP distance is
    /// meaningless there, so a subnormal-scale absolute bound covers
    /// it.
    #[test]
    fn sigmoid_slice_agreement_is_ulp_bounded(
        values in prop::collection::vec(-750.0f64..750.0, 1..64),
    ) {
        let Some(avx2) = kernel::avx2() else { return Ok(()) };
        let scalar = kernel::scalar();
        let mut via_scalar = values.clone();
        let mut via_avx2 = values.clone();
        (scalar.sigmoid_slice)(&mut via_scalar);
        (avx2.sigmoid_slice)(&mut via_avx2);
        for ((x, a), b) in values.iter().zip(&via_scalar).zip(&via_avx2) {
            let ok =
                ulp_distance(*a, *b) <= SIGMOID_ULP_BOUND || (a - b).abs() <= SIGMOID_ABS_BOUND;
            prop_assert!(
                ok,
                "sigmoid({}) diverges: scalar {} vs avx2 {} ({} ulps)",
                x, a, b, ulp_distance(*a, *b)
            );
        }
    }

    /// Polynomial tanh agrees with libm within the tested bound. Near
    /// zero the identity `tanh(x) = 2 sigmoid(2x) - 1` loses absolute
    /// (not relative) precision, hence the small absolute escape hatch.
    #[test]
    fn tanh_slice_agreement_is_ulp_bounded(
        values in prop::collection::vec(-400.0f64..400.0, 1..64),
    ) {
        let Some(avx2) = kernel::avx2() else { return Ok(()) };
        let scalar = kernel::scalar();
        let mut via_scalar = values.clone();
        let mut via_avx2 = values.clone();
        (scalar.tanh_slice)(&mut via_scalar);
        (avx2.tanh_slice)(&mut via_avx2);
        for ((x, a), b) in values.iter().zip(&via_scalar).zip(&via_avx2) {
            let ok = ulp_distance(*a, *b) <= TANH_ULP_BOUND || (a - b).abs() <= TANH_ABS_BOUND;
            prop_assert!(
                ok,
                "tanh({}) diverges: scalar {} vs avx2 {} ({} ulps, |diff| {})",
                x, a, b, ulp_distance(*a, *b), (a - b).abs()
            );
        }
    }
}

/// Tested agreement bounds between libm and the polynomial kernels.
const SIGMOID_ULP_BOUND: u64 = 8;
const SIGMOID_ABS_BOUND: f64 = 1e-300;
const TANH_ULP_BOUND: u64 = 8;
const TANH_ABS_BOUND: f64 = 2e-16;

/// Deterministic pseudo-random values in roughly [-2, 2] from a
/// splitmix-style hash — keeps proptest cases reproducible without
/// threading an RNG through every strategy.
fn pseudo_values(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed ^ 0xD6E8_FEB8_6659_FD93;
    (0..n)
        .map(|_| {
            state = state.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mantissa = (state >> 11) as f64 / (1u64 << 53) as f64;
            4.0 * mantissa - 2.0
        })
        .collect()
}

/// A model and a shape-diverse block set shared by the whole-network
/// tests: single-instruction blocks, long blocks, repeated tokens —
/// the shapes that stress packed-lane grouping and remainder paths.
fn model_and_blocks() -> (HierarchicalRegressor, Vec<TokenizedBlock>) {
    let mut rng = StdRng::seed_from_u64(0xC0DE);
    let model = HierarchicalRegressor::new(48, 24, 40, &mut rng);
    let blocks: Vec<TokenizedBlock> = vec![
        vec![vec![1, 2, 3]],
        vec![vec![4], vec![5, 6], vec![7, 8, 9, 10]],
        vec![vec![11, 12]; 7],
        vec![vec![0]],
        vec![vec![13, 14, 15], vec![16, 17], vec![18], vec![19, 20, 21, 22, 23]],
        vec![vec![2, 2, 2], vec![2, 2, 2]],
        vec![vec![30, 31, 32, 33, 34, 35, 36, 37]],
        vec![vec![40, 41], vec![42, 43], vec![44, 45], vec![46, 47], vec![1, 3]],
        vec![vec![5, 10, 15], vec![20, 25]],
    ];
    (model, blocks)
}

/// Every batch width must reproduce the single-block bits, per variant.
fn assert_batch_size_invariant(kernel: &Kernel) {
    let (model, blocks) = model_and_blocks();
    let mut infer = InferScratch::new();
    let singles: Vec<u64> = blocks
        .iter()
        .map(|block| model.predict_with_kernel(block, &mut infer, kernel).to_bits())
        .collect();

    let mut scratch = BatchScratch::new();
    for width in [1usize, 2, 3, 4, 8, blocks.len()] {
        let mut outs = vec![0.0; blocks.len()];
        for (chunk_index, chunk) in blocks.chunks(width).enumerate() {
            let outs = &mut outs[chunk_index * width..chunk_index * width + chunk.len()];
            model.predict_batch_with_kernel(chunk, &mut scratch, outs, kernel);
        }
        for (b, (single, batched)) in singles.iter().zip(&outs).enumerate() {
            assert_eq!(
                *single,
                batched.to_bits(),
                "{}: block {b} at batch width {width}: single {} vs batched {}",
                kernel.name,
                f64::from_bits(*single),
                batched
            );
        }
    }
}

#[test]
fn scalar_predictions_are_batch_size_invariant() {
    assert_batch_size_invariant(kernel::scalar());
}

#[test]
fn avx2_predictions_are_batch_size_invariant() {
    if let Some(avx2) = avx2_or_skip() {
        assert_batch_size_invariant(avx2);
    }
}

/// Whole-network predictions across variants: reassociated sums and
/// polynomial transcendentals compound through 40-wide LSTM steps, so
/// the bound is relative, with generous headroom over the measured
/// worst case.
#[test]
fn scalar_and_avx2_predictions_agree() {
    let Some(avx2) = avx2_or_skip() else { return };
    let scalar = kernel::scalar();
    let (model, blocks) = model_and_blocks();
    let mut infer = InferScratch::new();
    for (b, block) in blocks.iter().enumerate() {
        let via_scalar = model.predict_with_kernel(block, &mut infer, scalar);
        let via_avx2 = model.predict_with_kernel(block, &mut infer, avx2);
        let rel = (via_scalar - via_avx2).abs() / via_scalar.abs().max(1e-12);
        assert!(
            rel <= 1e-10,
            "block {b}: scalar {via_scalar} vs avx2 {via_avx2} (relative diff {rel:e})"
        );
    }
}

/// The active-kernel dispatch hands batched predictions to the same
/// variant as single ones: the public `predict` / `predict_batch` pair
/// must agree bitwise whatever variant resolution picked.
#[test]
fn public_predict_paths_agree_bitwise() {
    let (model, blocks) = model_and_blocks();
    let batched = model.predict_batch(&blocks);
    for (b, (block, batch_out)) in blocks.iter().zip(&batched).enumerate() {
        assert_eq!(
            model.predict(block).to_bits(),
            batch_out.to_bits(),
            "block {b} under {}",
            kernel::active().name
        );
    }
}
