//! Finite-difference gradient verification through the *entire*
//! hierarchical regressor (embedding → token LSTM → instruction LSTM →
//! head), complementing the per-layer checks in the unit tests.

use comet_nn::{HierarchicalRegressor, Loss};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn loss_of(model: &HierarchicalRegressor, block: &[Vec<usize>], target: f64) -> f64 {
    let pred = model.predict(&block.to_vec());
    (pred - target) * (pred - target)
}

#[test]
fn full_model_gradients_match_finite_differences() {
    let mut rng = StdRng::seed_from_u64(1234);
    let mut model = HierarchicalRegressor::new(12, 5, 6, &mut rng);
    let block = vec![vec![0usize, 3, 7], vec![1, 4], vec![2, 5, 9, 11]];
    let target = 2.5;

    // Analytic gradients.
    model.train_example(&block, target, 1.0, Loss::Squared);
    let analytic: Vec<Vec<f64>> = model.params_mut().iter().map(|p| p.grad.clone()).collect();
    for p in model.params_mut() {
        p.zero_grad();
    }

    // Numeric gradients by central differences, spot-checked across
    // every parameter tensor.
    let eps = 1e-6;
    let num_params = analytic.len();
    // Indexing both `analytic` and `model.params_mut()` by `pi`; an
    // iterator over one would fight the mutable borrow of the other.
    #[allow(clippy::needless_range_loop)]
    for pi in 0..num_params {
        let len = model.params_mut()[pi].len();
        let step = (len / 11).max(1);
        for idx in (0..len).step_by(step) {
            let orig = model.params_mut()[pi].value[idx];
            model.params_mut()[pi].value[idx] = orig + eps;
            let plus = loss_of(&model, &block, target);
            model.params_mut()[pi].value[idx] = orig - eps;
            let minus = loss_of(&model, &block, target);
            model.params_mut()[pi].value[idx] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            let a = analytic[pi][idx];
            assert!(
                (a - numeric).abs() < 1e-4 * (1.0 + numeric.abs()),
                "param {pi}[{idx}]: analytic {a} vs numeric {numeric}"
            );
        }
    }
}

#[test]
fn relative_loss_gradients_match_finite_differences() {
    let mut rng = StdRng::seed_from_u64(77);
    let mut model = HierarchicalRegressor::new(8, 4, 5, &mut rng);
    let block = vec![vec![0usize, 1], vec![2, 3]];
    let target = 8.0;

    model.train_example(&block, target, 1.0, Loss::Relative);
    let analytic: Vec<Vec<f64>> = model.params_mut().iter().map(|p| p.grad.clone()).collect();
    for p in model.params_mut() {
        p.zero_grad();
    }

    let rel_loss = |m: &HierarchicalRegressor| {
        let pred = m.predict(&block);
        let err = (pred - target) / target.max(1.0);
        err * err
    };
    let eps = 1e-6;
    #[allow(clippy::needless_range_loop)]
    for pi in 0..analytic.len() {
        let len = model.params_mut()[pi].len();
        for idx in (0..len).step_by((len / 7).max(1)) {
            let orig = model.params_mut()[pi].value[idx];
            model.params_mut()[pi].value[idx] = orig + eps;
            let plus = rel_loss(&model);
            model.params_mut()[pi].value[idx] = orig - eps;
            let minus = rel_loss(&model);
            model.params_mut()[pi].value[idx] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            let a = analytic[pi][idx];
            assert!(
                (a - numeric).abs() < 1e-4 * (1.0 + numeric.abs()),
                "param {pi}[{idx}]: analytic {a} vs numeric {numeric}"
            );
        }
    }
}
