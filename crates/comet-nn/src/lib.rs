//! # comet-nn
//!
//! A minimal, dependency-light deep-learning library sufficient to
//! implement the Ithemal cost-model architecture from scratch: dense
//! linear algebra, embeddings, LSTM cells with hand-derived
//! backpropagation-through-time, Adam with gradient clipping, and the
//! hierarchical token → instruction → block regressor itself.
//!
//! This crate is deliberately small and CPU-only: the reproduction's
//! Ithemal surrogate needs thousands — not billions — of parameters.
//!
//! # Examples
//!
//! ```
//! use comet_nn::{AdamConfig, HierarchicalRegressor, Trainer};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut model = HierarchicalRegressor::new(16, 8, 16, &mut rng);
//! // Learn that every block costs 2.0.
//! let data = vec![(vec![vec![0, 1], vec![2]], 2.0)];
//! let config = AdamConfig { lr: 0.05, ..AdamConfig::default() };
//! let mut trainer = Trainer::new(config, 1, 200);
//! trainer.fit(&mut model, &data, &mut rng);
//! let pred = model.predict(&vec![vec![0, 1], vec![2]]);
//! assert!((pred - 2.0).abs() < 0.5);
//! ```

#![warn(missing_docs)]

mod ithemal;
pub mod kernel;
mod layers;
mod lstm;
pub mod ops;
mod packed;
mod param;
#[cfg(target_arch = "x86_64")]
mod simd;

pub use ithemal::{
    BatchScratch, HierarchicalRegressor, InferScratch, Loss, TokenizedBlock, Trainer,
};
pub use layers::{Embedding, Linear};
pub use lstm::{Lstm, LstmBatchScratch, LstmCache, LstmScratch};
pub use param::{adam_step_all, AdamConfig, Param};
