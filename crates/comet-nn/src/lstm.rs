//! A long short-term memory recurrence with explicit forward caches and
//! hand-derived backpropagation-through-time.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::ops::{add_assign, matvec, matvec_lanes, matvec_transpose_acc, outer_acc, sigmoid};
use crate::param::Param;

/// An LSTM layer processing sequences of `input`-dimensional vectors
/// into a final `hidden`-dimensional state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Lstm {
    /// Input-to-gates weights, `(4*hidden) x input`, gate order i,f,g,o.
    pub wx: Param,
    /// Hidden-to-gates weights, `(4*hidden) x hidden`.
    pub wh: Param,
    /// Gate biases, `4*hidden` (forget-gate bias initialized to 1).
    pub b: Param,
    input: usize,
    hidden: usize,
}

/// Forward-pass activations retained for backpropagation.
#[derive(Debug, Clone)]
pub struct LstmCache {
    xs: Vec<Vec<f64>>,
    /// `hs[t]` is the hidden state *after* step t; index 0 is h_{-1}=0.
    hs: Vec<Vec<f64>>,
    /// `cs[t]` analogous for the cell state.
    cs: Vec<Vec<f64>>,
    /// Post-activation gates per step: `[i, f, g, o]` concatenated.
    gates: Vec<Vec<f64>>,
}

impl LstmCache {
    /// The hidden state after the final step.
    pub fn final_hidden(&self) -> &[f64] {
        self.hs.last().expect("cache from non-empty sequence")
    }

    /// Sequence length.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the cached sequence was empty.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }
}

/// Reusable state for the allocation-free inference path
/// ([`Lstm::begin`] / [`Lstm::step`]).
///
/// One scratch serves any number of sequences (and any number of
/// `Lstm` instances — `begin` re-sizes the buffers, which is free once
/// their capacity has grown to the largest layer seen). Inference
/// through a scratch is bitwise identical to [`Lstm::forward`]: both
/// paths run the same [`matvec`] and the same gate arithmetic in the
/// same order; the only difference is where the intermediate state
/// lives.
#[derive(Debug, Default, Clone)]
pub struct LstmScratch {
    /// Gate pre-activations, `4*hidden`.
    z: Vec<f64>,
    /// Hidden-to-gates product, `4*hidden`.
    zh: Vec<f64>,
    /// Current hidden state, `hidden`.
    h: Vec<f64>,
    /// Current cell state, `hidden`.
    c: Vec<f64>,
}

impl LstmScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> LstmScratch {
        LstmScratch::default()
    }

    /// The hidden state after the steps taken so far.
    pub fn hidden_state(&self) -> &[f64] {
        &self.h
    }
}

/// Reusable lane-major state for the batched inference path
/// ([`Lstm::begin_batch`] / [`Lstm::step_lanes`]).
///
/// Holds `B` independent recurrences side by side: lane `b`'s input
/// lives at `x[b*input..]`, its hidden/cell state at `h[b*hidden..]` /
/// `c[b*hidden..]`. Stepping a set of lanes shares one traversal of
/// the weight matrices across all of them (see
/// [`matvec_lanes`]); per lane the arithmetic — and hence the final
/// hidden state — is bitwise identical to the scalar
/// [`Lstm::step`] path.
#[derive(Debug, Default, Clone)]
pub struct LstmBatchScratch {
    /// Staged inputs, `lanes x input`, lane-major.
    x: Vec<f64>,
    /// Gate pre-activations, `lanes x 4*hidden`, lane-major.
    z: Vec<f64>,
    /// Hidden-to-gates products, `lanes x 4*hidden`, lane-major.
    zh: Vec<f64>,
    /// Hidden states, `lanes x hidden`, lane-major.
    h: Vec<f64>,
    /// Cell states, `lanes x hidden`, lane-major.
    c: Vec<f64>,
    /// Layer input width the scratch is currently sized for.
    input: usize,
    /// Layer hidden width the scratch is currently sized for.
    hidden: usize,
}

impl LstmBatchScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> LstmBatchScratch {
        LstmBatchScratch::default()
    }

    /// The staging slot for lane `b`'s next input vector.
    pub fn input_lane_mut(&mut self, b: usize) -> &mut [f64] {
        &mut self.x[b * self.input..(b + 1) * self.input]
    }

    /// Lane `b`'s hidden state after the steps taken so far.
    pub fn hidden_lane(&self, b: usize) -> &[f64] {
        &self.h[b * self.hidden..(b + 1) * self.hidden]
    }
}

impl Lstm {
    /// A freshly initialized LSTM with fan-in-scaled uniform weights.
    pub fn new<R: Rng>(input: usize, hidden: usize, rng: &mut R) -> Lstm {
        let scale_x = (1.0 / input as f64).sqrt();
        let scale_h = (1.0 / hidden as f64).sqrt();
        let mut b = Param::zeros(4 * hidden);
        // Standard trick: bias the forget gate open at initialization.
        for v in &mut b.value[hidden..2 * hidden] {
            *v = 1.0;
        }
        Lstm {
            wx: Param::uniform(4 * hidden * input, scale_x, rng),
            wh: Param::uniform(4 * hidden * hidden, scale_h, rng),
            b,
            input,
            hidden,
        }
    }

    /// Hidden-state dimensionality.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Input dimensionality.
    pub fn input(&self) -> usize {
        self.input
    }

    /// Run the recurrence over `xs`, returning the cache whose
    /// [`LstmCache::final_hidden`] is the sequence embedding.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or an element has the wrong width.
    pub fn forward(&self, xs: &[Vec<f64>]) -> LstmCache {
        assert!(!xs.is_empty(), "LSTM sequence must be non-empty");
        let h = self.hidden;
        let mut cache = LstmCache {
            xs: xs.to_vec(),
            hs: vec![vec![0.0; h]],
            cs: vec![vec![0.0; h]],
            gates: Vec::with_capacity(xs.len()),
        };
        let mut z = vec![0.0; 4 * h];
        let mut zh = vec![0.0; 4 * h];
        for x in xs {
            assert_eq!(x.len(), self.input, "LSTM input width mismatch");
            let h_prev = cache.hs.last().unwrap().clone();
            let c_prev = cache.cs.last().unwrap().clone();
            matvec(&self.wx.value, 4 * h, self.input, x, &mut z);
            matvec(&self.wh.value, 4 * h, h, &h_prev, &mut zh);
            add_assign(&mut z, &zh);
            add_assign(&mut z, &self.b.value);
            let mut gates = vec![0.0; 4 * h];
            let mut c = vec![0.0; h];
            let mut hidden = vec![0.0; h];
            for k in 0..h {
                let i = sigmoid(z[k]);
                let f = sigmoid(z[h + k]);
                let g = z[2 * h + k].tanh();
                let o = sigmoid(z[3 * h + k]);
                gates[k] = i;
                gates[h + k] = f;
                gates[2 * h + k] = g;
                gates[3 * h + k] = o;
                c[k] = f * c_prev[k] + i * g;
                hidden[k] = o * c[k].tanh();
            }
            cache.gates.push(gates);
            cache.cs.push(c);
            cache.hs.push(hidden);
        }
        cache
    }

    /// Reset `scratch` for a new sequence through this layer: zero
    /// state, buffers sized to this layer's dimensions. Allocation-free
    /// once the scratch has served a layer at least this large.
    pub fn begin(&self, scratch: &mut LstmScratch) {
        let h = self.hidden;
        scratch.z.clear();
        scratch.z.resize(4 * h, 0.0);
        scratch.zh.clear();
        scratch.zh.resize(4 * h, 0.0);
        scratch.h.clear();
        scratch.h.resize(h, 0.0);
        scratch.c.clear();
        scratch.c.resize(h, 0.0);
    }

    /// Advance the recurrence one step on input `x`, updating the
    /// hidden/cell state in `scratch` in place. Performs the exact
    /// per-step computation of [`forward`](Lstm::forward) with zero
    /// heap traffic and no cache retention (inference only).
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong width (debug: also if `scratch` was
    /// not [`begun`](Lstm::begin) for this layer).
    pub fn step(&self, x: &[f64], scratch: &mut LstmScratch) {
        assert_eq!(x.len(), self.input, "LSTM input width mismatch");
        let h = self.hidden;
        debug_assert_eq!(scratch.h.len(), h, "scratch not begun for this layer");
        matvec(&self.wx.value, 4 * h, self.input, x, &mut scratch.z);
        matvec(&self.wh.value, 4 * h, h, &scratch.h, &mut scratch.zh);
        add_assign(&mut scratch.z, &scratch.zh);
        add_assign(&mut scratch.z, &self.b.value);
        // `c` and `h` can be updated in place: entry k of either reads
        // only entry k of the previous state, and the h_prev matvec
        // above has already consumed the old hidden state.
        for k in 0..h {
            let i = sigmoid(scratch.z[k]);
            let f = sigmoid(scratch.z[h + k]);
            let g = scratch.z[2 * h + k].tanh();
            let o = sigmoid(scratch.z[3 * h + k]);
            scratch.c[k] = f * scratch.c[k] + i * g;
            scratch.h[k] = o * scratch.c[k].tanh();
        }
    }

    /// Size `scratch` for `lanes` side-by-side recurrences through this
    /// layer and zero every lane's state. Allocation-free once the
    /// scratch has served a batch at least this large through a layer
    /// at least this wide.
    pub fn begin_batch(&self, lanes: usize, scratch: &mut LstmBatchScratch) {
        let h = self.hidden;
        scratch.input = self.input;
        scratch.hidden = h;
        scratch.x.clear();
        scratch.x.resize(lanes * self.input, 0.0);
        scratch.z.clear();
        scratch.z.resize(lanes * 4 * h, 0.0);
        scratch.zh.clear();
        scratch.zh.resize(lanes * 4 * h, 0.0);
        scratch.h.clear();
        scratch.h.resize(lanes * h, 0.0);
        scratch.c.clear();
        scratch.c.resize(lanes * h, 0.0);
    }

    /// Zero the hidden/cell state of the given lanes only, starting
    /// fresh sequences in those lanes while the others keep theirs.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `scratch` was not
    /// [`begun`](Lstm::begin_batch) for this layer.
    pub fn begin_lanes(&self, lanes: &[usize], scratch: &mut LstmBatchScratch) {
        let h = self.hidden;
        debug_assert_eq!(scratch.hidden, h, "scratch not begun for this layer");
        for &b in lanes {
            scratch.h[b * h..(b + 1) * h].fill(0.0);
            scratch.c[b * h..(b + 1) * h].fill(0.0);
        }
    }

    /// Advance the recurrence one step in every named lane, reading
    /// each lane's staged input ([`LstmBatchScratch::input_lane_mut`])
    /// and updating its hidden/cell state in place. Lanes not named are
    /// untouched. Per lane, this performs the exact arithmetic of the
    /// scalar [`step`](Lstm::step) — the batching only shares the
    /// weight-matrix traversal across lanes.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `scratch` was not
    /// [`begun`](Lstm::begin_batch) for this layer or a lane index is
    /// out of range.
    pub fn step_lanes(&self, scratch: &mut LstmBatchScratch, lanes: &[usize]) {
        let h = self.hidden;
        debug_assert_eq!(scratch.hidden, h, "scratch not begun for this layer");
        debug_assert_eq!(scratch.input, self.input, "scratch not begun for this layer");
        matvec_lanes(&self.wx.value, 4 * h, self.input, &scratch.x, &mut scratch.z, lanes);
        matvec_lanes(&self.wh.value, 4 * h, h, &scratch.h, &mut scratch.zh, lanes);
        for &b in lanes {
            let z = &mut scratch.z[b * 4 * h..(b + 1) * 4 * h];
            add_assign(z, &scratch.zh[b * 4 * h..(b + 1) * 4 * h]);
            add_assign(z, &self.b.value);
            let c = &mut scratch.c[b * h..(b + 1) * h];
            let hidden = &mut scratch.h[b * h..(b + 1) * h];
            for k in 0..h {
                let i = sigmoid(z[k]);
                let f = sigmoid(z[h + k]);
                let g = z[2 * h + k].tanh();
                let o = sigmoid(z[3 * h + k]);
                c[k] = f * c[k] + i * g;
                hidden[k] = o * c[k].tanh();
            }
        }
    }

    /// Backpropagate `d_final` (gradient w.r.t. the final hidden state)
    /// through the cached forward pass, accumulating weight gradients
    /// and returning the gradients w.r.t. each input vector.
    pub fn backward(&mut self, cache: &LstmCache, d_final: &[f64]) -> Vec<Vec<f64>> {
        let h = self.hidden;
        let steps = cache.len();
        let mut dxs = vec![vec![0.0; self.input]; steps];
        let mut dh = d_final.to_vec();
        let mut dc = vec![0.0; h];
        for t in (0..steps).rev() {
            let gates = &cache.gates[t];
            let c = &cache.cs[t + 1];
            let c_prev = &cache.cs[t];
            let h_prev = &cache.hs[t];
            let x = &cache.xs[t];
            let mut dz = vec![0.0; 4 * h];
            let mut dc_prev = vec![0.0; h];
            for k in 0..h {
                let i = gates[k];
                let f = gates[h + k];
                let g = gates[2 * h + k];
                let o = gates[3 * h + k];
                let tanh_c = c[k].tanh();
                let d_o = dh[k] * tanh_c;
                let d_c = dh[k] * o * (1.0 - tanh_c * tanh_c) + dc[k];
                let d_i = d_c * g;
                let d_f = d_c * c_prev[k];
                let d_g = d_c * i;
                dc_prev[k] = d_c * f;
                dz[k] = d_i * i * (1.0 - i);
                dz[h + k] = d_f * f * (1.0 - f);
                dz[2 * h + k] = d_g * (1.0 - g * g);
                dz[3 * h + k] = d_o * o * (1.0 - o);
            }
            outer_acc(&mut self.wx.grad, &dz, x);
            outer_acc(&mut self.wh.grad, &dz, h_prev);
            add_assign(&mut self.b.grad, &dz);
            matvec_transpose_acc(&self.wx.value, 4 * h, self.input, &dz, &mut dxs[t]);
            let mut dh_prev = vec![0.0; h];
            matvec_transpose_acc(&self.wh.value, 4 * h, h, &dz, &mut dh_prev);
            dh = dh_prev;
            dc = dc_prev;
        }
        dxs
    }

    /// Mutable references to the trainable parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.wx, &mut self.wh, &mut self.b]
    }

    /// Shared references to the trainable parameters.
    pub fn params(&self) -> Vec<&Param> {
        vec![&self.wx, &self.wh, &self.b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Finite-difference gradient check on a tiny LSTM: perturb every
    /// weight and compare the numeric gradient of a scalar loss with the
    /// analytic one from `backward`.
    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut lstm = Lstm::new(3, 4, &mut rng);
        let xs: Vec<Vec<f64>> =
            (0..5).map(|t| (0..3).map(|k| ((t * 3 + k) as f64 * 0.37).sin()).collect()).collect();
        // Loss: sum of final hidden state.
        let loss = |l: &Lstm| -> f64 { l.forward(&xs).final_hidden().iter().sum() };

        let cache = lstm.forward(&xs);
        let d_final = vec![1.0; 4];
        let dxs = lstm.backward(&cache, &d_final);

        let eps = 1e-6;
        for (pi, name) in [(0, "wx"), (1, "wh"), (2, "b")] {
            let len = lstm.params_mut()[pi].len();
            for idx in (0..len).step_by(7) {
                let analytic = lstm.params_mut()[pi].grad[idx];
                let orig = lstm.params_mut()[pi].value[idx];
                lstm.params_mut()[pi].value[idx] = orig + eps;
                let plus = loss(&lstm);
                lstm.params_mut()[pi].value[idx] = orig - eps;
                let minus = loss(&lstm);
                lstm.params_mut()[pi].value[idx] = orig;
                let numeric = (plus - minus) / (2.0 * eps);
                assert!(
                    (analytic - numeric).abs() < 1e-5 * (1.0 + numeric.abs()),
                    "{name}[{idx}]: analytic {analytic} vs numeric {numeric}"
                );
            }
        }

        // Input gradients too.
        let analytic_dx = dxs[2][1];
        let mut xs2 = xs.clone();
        xs2[2][1] += eps;
        let plus = lstm.forward(&xs2).final_hidden().iter().sum::<f64>();
        xs2[2][1] -= 2.0 * eps;
        let minus = lstm.forward(&xs2).final_hidden().iter().sum::<f64>();
        let numeric_dx = (plus - minus) / (2.0 * eps);
        assert!((analytic_dx - numeric_dx).abs() < 1e-5);
    }

    #[test]
    fn forward_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(1);
        let lstm = Lstm::new(2, 3, &mut rng);
        let xs = vec![vec![0.5, -0.5], vec![1.0, 0.0]];
        let a = lstm.forward(&xs).final_hidden().to_vec();
        let b = lstm.forward(&xs).final_hidden().to_vec();
        assert_eq!(a, b);
    }

    /// The scratch-buffer inference path must agree with the training
    /// forward pass bit for bit — they share the same kernels.
    #[test]
    fn scratch_steps_match_forward_bitwise() {
        let mut rng = StdRng::seed_from_u64(17);
        let lstm = Lstm::new(5, 7, &mut rng);
        let xs: Vec<Vec<f64>> =
            (0..9).map(|t| (0..5).map(|k| ((t * 5 + k) as f64 * 0.83).cos()).collect()).collect();
        let reference = lstm.forward(&xs);
        let mut scratch = LstmScratch::new();
        lstm.begin(&mut scratch);
        for x in &xs {
            lstm.step(x, &mut scratch);
        }
        assert_eq!(scratch.hidden_state(), reference.final_hidden());

        // A reused scratch (even one sized by a different layer) gives
        // the same answer again.
        let other = Lstm::new(3, 11, &mut rng);
        other.begin(&mut scratch);
        other.step(&[0.1, 0.2, 0.3], &mut scratch);
        lstm.begin(&mut scratch);
        for x in &xs {
            lstm.step(x, &mut scratch);
        }
        assert_eq!(scratch.hidden_state(), reference.final_hidden());
    }

    /// Batched lanes — with staggered sequence lengths, so some steps
    /// run a strict subset of lanes — must reproduce the scalar path
    /// bit for bit in every lane.
    #[test]
    fn batched_lanes_match_scalar_steps_bitwise() {
        let mut rng = StdRng::seed_from_u64(29);
        let lstm = Lstm::new(5, 7, &mut rng);
        // Lane b runs a sequence of length 2 + 3*b.
        let seqs: Vec<Vec<Vec<f64>>> = (0..4)
            .map(|b| {
                (0..2 + 3 * b)
                    .map(|t| (0..5).map(|k| ((b * 31 + t * 5 + k) as f64 * 0.61).sin()).collect())
                    .collect()
            })
            .collect();
        let mut batch = LstmBatchScratch::new();
        lstm.begin_batch(seqs.len(), &mut batch);
        let longest = seqs.iter().map(Vec::len).max().unwrap();
        let mut active = Vec::new();
        for t in 0..longest {
            active.clear();
            for (b, seq) in seqs.iter().enumerate() {
                if let Some(x) = seq.get(t) {
                    batch.input_lane_mut(b).copy_from_slice(x);
                    active.push(b);
                }
            }
            lstm.step_lanes(&mut batch, &active);
        }
        let mut scratch = LstmScratch::new();
        for (b, seq) in seqs.iter().enumerate() {
            lstm.begin(&mut scratch);
            for x in seq {
                lstm.step(x, &mut scratch);
            }
            assert_eq!(batch.hidden_lane(b), scratch.hidden_state(), "lane {b}");
        }

        // begin_lanes restarts a single lane without disturbing others.
        let kept = batch.hidden_lane(3).to_vec();
        lstm.begin_lanes(&[0], &mut batch);
        batch.input_lane_mut(0).copy_from_slice(&seqs[1][0]);
        lstm.step_lanes(&mut batch, &[0]);
        lstm.begin(&mut scratch);
        lstm.step(&seqs[1][0], &mut scratch);
        assert_eq!(batch.hidden_lane(0), scratch.hidden_state());
        assert_eq!(batch.hidden_lane(3), &kept[..]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_sequence_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let lstm = Lstm::new(2, 3, &mut rng);
        let _ = lstm.forward(&[]);
    }
}
