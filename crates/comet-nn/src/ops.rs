//! Dense linear-algebra primitives used by the network layers.
//!
//! All matrices are row-major `Vec<f64>` buffers with explicit
//! dimensions; the layers pass raw slices to keep the hot loops free of
//! bounds-check overhead beyond what the optimizer removes.

/// `y = W x`, where `W` is `rows x cols` row-major and `x` has `cols`
/// elements.
///
/// The dot product runs four independent accumulators over
/// 4-element blocks so the scalar FP adds don't serialize on one
/// dependency chain (f64 adds can't be reordered by the compiler).
/// Both the training forward pass and the scratch-buffer inference
/// path call this one implementation, so their summation order — and
/// hence every prediction — is bitwise identical.
///
/// # Panics
///
/// Panics (in debug builds) if the dimensions disagree.
pub fn matvec(w: &[f64], rows: usize, cols: usize, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(w.len(), rows * cols);
    debug_assert_eq!(x.len(), cols);
    debug_assert_eq!(y.len(), rows);
    for (r, yr) in y.iter_mut().enumerate() {
        let row = &w[r * cols..(r + 1) * cols];
        let mut lanes = [0.0f64; 4];
        let mut row_blocks = row.chunks_exact(4);
        let mut x_blocks = x.chunks_exact(4);
        for (a, b) in row_blocks.by_ref().zip(x_blocks.by_ref()) {
            lanes[0] += a[0] * b[0];
            lanes[1] += a[1] * b[1];
            lanes[2] += a[2] * b[2];
            lanes[3] += a[3] * b[3];
        }
        let mut acc = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
        for (a, b) in row_blocks.remainder().iter().zip(x_blocks.remainder()) {
            acc += a * b;
        }
        *yr = acc;
    }
}

/// Batched `y_b = W x_b` over the given lanes of lane-major buffers,
/// sharing one traversal of `W`'s rows across the whole batch.
///
/// `xs` holds one `cols`-wide input per lane at `xs[b*cols..]`, `ys`
/// one `rows`-wide output per lane at `ys[b*rows..]`; only the lanes
/// named in `lanes` are read or written. The kernel is row-outer /
/// lane-inner: each weight row is streamed from memory once and dotted
/// against every active lane while it is hot in cache — this is the
/// matrix–matrix lift of [`matvec`] that batched inference buys its
/// arithmetic-intensity win from.
///
/// Per lane, the dot product runs the *exact* accumulation of
/// [`matvec`] (four lanes over 4-element blocks, `(l0+l1)+(l2+l3)`,
/// then the remainder), so a batched forward is bitwise identical to
/// the scalar forwards it replaces.
///
/// # Panics
///
/// Panics (in debug builds) if the dimensions disagree or a lane index
/// is out of range.
pub fn matvec_lanes(
    w: &[f64],
    rows: usize,
    cols: usize,
    xs: &[f64],
    ys: &mut [f64],
    lanes: &[usize],
) {
    debug_assert_eq!(w.len(), rows * cols);
    debug_assert_eq!(xs.len() % cols.max(1), 0);
    debug_assert_eq!(ys.len() % rows.max(1), 0);
    for r in 0..rows {
        let row = &w[r * cols..(r + 1) * cols];
        for &b in lanes {
            let x = &xs[b * cols..(b + 1) * cols];
            let mut lanes4 = [0.0f64; 4];
            let mut row_blocks = row.chunks_exact(4);
            let mut x_blocks = x.chunks_exact(4);
            for (a, v) in row_blocks.by_ref().zip(x_blocks.by_ref()) {
                lanes4[0] += a[0] * v[0];
                lanes4[1] += a[1] * v[1];
                lanes4[2] += a[2] * v[2];
                lanes4[3] += a[3] * v[3];
            }
            let mut acc = (lanes4[0] + lanes4[1]) + (lanes4[2] + lanes4[3]);
            for (a, v) in row_blocks.remainder().iter().zip(x_blocks.remainder()) {
                acc += a * v;
            }
            ys[b * rows + r] = acc;
        }
    }
}

/// `y += W^T g`: accumulate the transpose product, used to propagate
/// gradients to a layer's input.
pub fn matvec_transpose_acc(w: &[f64], rows: usize, cols: usize, g: &[f64], y: &mut [f64]) {
    debug_assert_eq!(w.len(), rows * cols);
    debug_assert_eq!(g.len(), rows);
    debug_assert_eq!(y.len(), cols);
    for (r, gr) in g.iter().enumerate() {
        let row = &w[r * cols..(r + 1) * cols];
        for (yc, wc) in y.iter_mut().zip(row) {
            *yc += wc * gr;
        }
    }
}

/// `dW += g ⊗ x` (outer product), used to accumulate weight gradients.
pub fn outer_acc(dw: &mut [f64], g: &[f64], x: &[f64]) {
    debug_assert_eq!(dw.len(), g.len() * x.len());
    for (r, gr) in g.iter().enumerate() {
        let row = &mut dw[r * x.len()..(r + 1) * x.len()];
        for (wc, xc) in row.iter_mut().zip(x) {
            *wc += gr * xc;
        }
    }
}

/// Element-wise `y += x`.
pub fn add_assign(y: &mut [f64], x: &[f64]) {
    debug_assert_eq!(y.len(), x.len());
    for (a, b) in y.iter_mut().zip(x) {
        *a += b;
    }
}

/// Logistic sigmoid.
pub fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_matches_hand_computation() {
        // W = [[1,2],[3,4],[5,6]], x = [1,-1]
        let w = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let x = [1.0, -1.0];
        let mut y = [0.0; 3];
        matvec(&w, 3, 2, &x, &mut y);
        assert_eq!(y, [-1.0, -1.0, -1.0]);
    }

    #[test]
    fn matvec_lanes_matches_matvec_bitwise() {
        // Awkward width (10 = 2 full blocks + remainder of 2) so both
        // the lane accumulators and the remainder path are exercised.
        let rows = 7;
        let cols = 10;
        let w: Vec<f64> = (0..rows * cols).map(|i| ((i as f64) * 0.731).sin()).collect();
        let nlanes = 5;
        let xs: Vec<f64> = (0..nlanes * cols).map(|i| ((i as f64) * 0.917).cos()).collect();
        let mut ys = vec![f64::NAN; nlanes * rows];
        // Skip lane 2: untouched lanes must stay untouched.
        matvec_lanes(&w, rows, cols, &xs, &mut ys, &[0, 1, 3, 4]);
        for b in 0..nlanes {
            if b == 2 {
                assert!(ys[b * rows..(b + 1) * rows].iter().all(|v| v.is_nan()));
                continue;
            }
            let mut reference = vec![0.0; rows];
            matvec(&w, rows, cols, &xs[b * cols..(b + 1) * cols], &mut reference);
            assert_eq!(&ys[b * rows..(b + 1) * rows], &reference[..], "lane {b}");
        }
    }

    #[test]
    fn transpose_accumulates() {
        let w = [1.0, 2.0, 3.0, 4.0]; // 2x2
        let g = [1.0, 1.0];
        let mut y = [1.0, 0.0];
        matvec_transpose_acc(&w, 2, 2, &g, &mut y);
        assert_eq!(y, [5.0, 6.0]); // [1+1+3, 0+2+4]
    }

    #[test]
    fn outer_product_accumulates() {
        let mut dw = [0.0; 4];
        outer_acc(&mut dw, &[1.0, 2.0], &[3.0, 4.0]);
        assert_eq!(dw, [3.0, 4.0, 6.0, 8.0]);
        outer_acc(&mut dw, &[1.0, 0.0], &[1.0, 1.0]);
        assert_eq!(dw, [4.0, 5.0, 6.0, 8.0]);
    }

    #[test]
    fn sigmoid_bounds() {
        assert!(sigmoid(100.0) > 0.999);
        assert!(sigmoid(-100.0) < 0.001);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
    }
}
