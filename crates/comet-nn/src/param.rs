//! Trainable parameter buffers with Adam state.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A flat trainable tensor: values, accumulated gradient, and Adam
/// moment estimates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Param {
    /// Current values.
    pub value: Vec<f64>,
    /// Gradient accumulator, zeroed by [`Param::zero_grad`].
    pub grad: Vec<f64>,
    m: Vec<f64>,
    v: Vec<f64>,
}

impl Param {
    /// A zero-initialized parameter of `len` elements.
    pub fn zeros(len: usize) -> Param {
        Param { value: vec![0.0; len], grad: vec![0.0; len], m: vec![0.0; len], v: vec![0.0; len] }
    }

    /// Uniform(-scale, scale) initialization (the classic
    /// Glorot-style fan-in scaling is chosen by the caller).
    pub fn uniform<R: Rng>(len: usize, scale: f64, rng: &mut R) -> Param {
        let mut p = Param::zeros(len);
        for v in &mut p.value {
            *v = rng.gen_range(-scale..scale);
        }
        p
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Fold this parameter's *values* (not optimizer state) into a
    /// running 64-bit FNV-1a hash over their IEEE-754 bit patterns.
    /// Two parameters hash equal iff their weights are bitwise equal,
    /// which is what model-registry fingerprints need: optimizer
    /// moments may differ between a trained model and its snapshot
    /// round-trip without changing what the model predicts.
    pub fn fold_fnv(&self, mut hash: u64) -> u64 {
        for &v in &self.value {
            for b in v.to_bits().to_le_bytes() {
                hash = (hash ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        hash
    }

    /// Whether the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Reset the gradient accumulator.
    pub fn zero_grad(&mut self) {
        self.grad.iter_mut().for_each(|g| *g = 0.0);
    }

    /// L2 norm of the gradient (for clipping).
    pub fn grad_norm_sq(&self) -> f64 {
        self.grad.iter().map(|g| g * g).sum()
    }

    /// Scale the gradient in place.
    pub fn scale_grad(&mut self, factor: f64) {
        self.grad.iter_mut().for_each(|g| *g *= factor);
    }

    /// One Adam update with the given hyperparameters.
    ///
    /// `t` is the 1-based global step used for bias correction.
    pub fn adam_step(&mut self, lr: f64, beta1: f64, beta2: f64, eps: f64, t: u64) {
        let bc1 = 1.0 - beta1.powi(t as i32);
        let bc2 = 1.0 - beta2.powi(t as i32);
        for i in 0..self.value.len() {
            let g = self.grad[i];
            self.m[i] = beta1 * self.m[i] + (1.0 - beta1) * g;
            self.v[i] = beta2 * self.v[i] + (1.0 - beta2) * g * g;
            let mhat = self.m[i] / bc1;
            let vhat = self.v[i] / bc2;
            self.value[i] -= lr * mhat / (vhat.sqrt() + eps);
        }
    }
}

/// Adam optimizer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdamConfig {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical-stability epsilon.
    pub eps: f64,
    /// Global gradient-norm clip (0 disables clipping).
    pub clip: f64,
}

impl Default for AdamConfig {
    fn default() -> AdamConfig {
        AdamConfig { lr: 1e-3, beta1: 0.9, beta2: 0.999, eps: 1e-8, clip: 5.0 }
    }
}

/// Apply one Adam step to a set of parameters with optional global
/// gradient clipping, then zero the gradients.
pub fn adam_step_all(params: &mut [&mut Param], config: AdamConfig, t: u64) {
    if config.clip > 0.0 {
        let norm: f64 = params.iter().map(|p| p.grad_norm_sq()).sum::<f64>().sqrt();
        if norm > config.clip {
            let factor = config.clip / norm;
            for p in params.iter_mut() {
                p.scale_grad(factor);
            }
        }
    }
    for p in params.iter_mut() {
        p.adam_step(config.lr, config.beta1, config.beta2, config.eps, t);
        p.zero_grad();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn adam_descends_a_quadratic() {
        // Minimize f(x) = (x - 3)^2 with Adam.
        let mut p = Param::zeros(1);
        let config = AdamConfig { lr: 0.1, ..AdamConfig::default() };
        for t in 1..=500 {
            p.grad[0] = 2.0 * (p.value[0] - 3.0);
            adam_step_all(&mut [&mut p], config, t);
        }
        assert!((p.value[0] - 3.0).abs() < 1e-2, "got {}", p.value[0]);
    }

    #[test]
    fn clipping_bounds_gradient_norm() {
        let mut p = Param::zeros(2);
        p.grad = vec![30.0, 40.0]; // norm 50
        let config = AdamConfig { clip: 5.0, lr: 0.0, ..AdamConfig::default() };
        // lr 0: only clipping + zeroing happens; verify via scale_grad math.
        let norm = p.grad_norm_sq().sqrt();
        assert!((norm - 50.0).abs() < 1e-12);
        adam_step_all(&mut [&mut p], config, 1);
        assert!(p.grad.iter().all(|g| *g == 0.0));
    }

    #[test]
    fn uniform_init_within_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = Param::uniform(1000, 0.1, &mut rng);
        assert!(p.value.iter().all(|v| v.abs() < 0.1));
        assert!(p.value.iter().any(|v| v.abs() > 1e-4));
    }
}
