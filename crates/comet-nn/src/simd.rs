//! AVX2+FMA inference kernels (`avx2-v1`), x86-64 only.
//!
//! Two families live here, with different determinism contracts:
//!
//! * **Scalar-exact primitives** ([`matvec`], [`matvec_lanes`]): SIMD
//!   reimplementations of [`crate::ops`] that reproduce the scalar
//!   accumulation order *exactly* — four independent lane accumulators
//!   over 4-element blocks (multiply then add, no FMA contraction),
//!   horizontal sum `(l0+l1)+(l2+l3)`, scalar remainder — so their
//!   results are bitwise identical to the scalar kernel on every
//!   input. These back the vtable entries and the linear head.
//!
//! * **Packed lane kernels** ([`wmat_acc_g2`], [`gates_group`], the
//!   `exp`/`sigmoid`/`tanh` vector math): the data-parallel LSTM step.
//!   Weights stay row-major and are broadcast against lane-interleaved
//!   activation panels (`xt[c*lp + lane]`), accumulating each output
//!   element as one FMA chain in ascending column order. The chain of
//!   any element depends only on its own lane's values — never on the
//!   number of lanes, the group tiling, or which other lanes are
//!   active — which is what makes `avx2-v1` predictions bitwise
//!   *batch-size-invariant* by construction. Relative to `scalar-v1`
//!   the sums are reassociated (FMA, different summation tree) and the
//!   transcendentals are polynomial rather than libm, so cross-variant
//!   agreement is ULP-bounded, not bitwise (tested in
//!   `tests::packed_matvec_error_bound` and the sigmoid/tanh bounds).
//!
//! Every function is `unsafe` with `#[target_feature(enable = "avx2",
//! enable = "fma")]`: callers must have verified CPU support (the
//! [`crate::kernel`] resolver does).

#![allow(unsafe_op_in_unsafe_fn)]

use std::arch::x86_64::*;

/// Per-lane store masks for `_mm256_maskstore_pd`, indexed by a 4-bit
/// lane bitmask (bit `j` = lane `j` active; all-ones sign bit enables
/// the store).
const STORE_MASKS: [[i64; 4]; 16] = {
    let mut masks = [[0i64; 4]; 16];
    let mut m = 0;
    while m < 16 {
        let mut j = 0;
        while j < 4 {
            if m & (1 << j) != 0 {
                masks[m][j] = -1;
            }
            j += 1;
        }
        m += 1;
    }
    masks
};

/// `y = W x`, bitwise identical to [`crate::ops::matvec`].
///
/// # Safety
///
/// The CPU must support AVX2 and FMA. Slice dimensions must agree as
/// for the scalar kernel (debug-asserted).
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn matvec(w: &[f64], rows: usize, cols: usize, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(w.len(), rows * cols);
    debug_assert_eq!(x.len(), cols);
    debug_assert_eq!(y.len(), rows);
    for (r, yr) in y.iter_mut().enumerate() {
        *yr = dot_scalar_order(w.as_ptr().add(r * cols), x.as_ptr(), cols);
    }
}

/// Batched `y_b = W x_b` over the named lanes of lane-major buffers,
/// bitwise identical to [`crate::ops::matvec_lanes`].
///
/// # Safety
///
/// The CPU must support AVX2 and FMA. Dimensions and lane indices must
/// agree as for the scalar kernel (debug-asserted).
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn matvec_lanes(
    w: &[f64],
    rows: usize,
    cols: usize,
    xs: &[f64],
    ys: &mut [f64],
    lanes: &[usize],
) {
    debug_assert_eq!(w.len(), rows * cols);
    debug_assert_eq!(xs.len() % cols.max(1), 0);
    debug_assert_eq!(ys.len() % rows.max(1), 0);
    for r in 0..rows {
        let row = w.as_ptr().add(r * cols);
        for &b in lanes {
            debug_assert!((b + 1) * cols <= xs.len());
            ys[b * rows + r] = dot_scalar_order(row, xs.as_ptr().add(b * cols), cols);
        }
    }
}

/// One dot product in the scalar kernel's exact accumulation order:
/// one vector accumulator whose four lanes are the scalar kernel's
/// `lanes[0..4]` (multiply, then add — FMA would change the rounding),
/// horizontal `(l0+l1)+(l2+l3)`, plain scalar remainder.
#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn dot_scalar_order(a: *const f64, b: *const f64, n: usize) -> f64 {
    let blocks = n / 4;
    let mut acc = _mm256_setzero_pd();
    for k in 0..blocks {
        let va = _mm256_loadu_pd(a.add(4 * k));
        let vb = _mm256_loadu_pd(b.add(4 * k));
        acc = _mm256_add_pd(acc, _mm256_mul_pd(va, vb));
    }
    let mut lanes = [0.0f64; 4];
    _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
    let mut sum = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
    for k in 4 * blocks..n {
        sum += *a.add(k) * *b.add(k);
    }
    sum
}

/// `zt[r][lane] += Σ_c w[r][c] · xt[c][lane]` for the eight lanes of
/// groups `g` and `g+1`, tiled four rows × two groups so the FMA ports
/// stay saturated (per column: two panel loads + four broadcasts feed
/// eight FMAs). Every output element accumulates as a single FMA chain
/// in ascending `c` from its prior `zt` value — the element's value is
/// independent of the tiling and of every other lane.
///
/// `lp` is the panel stride (lanes rounded up to 4); `xt` is
/// `cols x lp`, `zt` is `rows x lp`, both lane-interleaved.
///
/// # Safety
///
/// The CPU must support AVX2 and FMA; `(g + 2) * 4 <= lp`,
/// `w.len() == rows * cols`, `xt.len() >= cols * lp`,
/// `zt.len() >= rows * lp` (debug-asserted).
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn wmat_acc_g2(
    w: &[f64],
    rows: usize,
    cols: usize,
    xt: &[f64],
    lp: usize,
    zt: &mut [f64],
    g: usize,
) {
    debug_assert_eq!(w.len(), rows * cols);
    debug_assert!(xt.len() >= cols * lp);
    debug_assert!(zt.len() >= rows * lp);
    debug_assert!((g + 2) * 4 <= lp);
    let wp = w.as_ptr();
    let xp = xt.as_ptr().add(g * 4);
    let zp = zt.as_mut_ptr().add(g * 4);
    let mut r = 0;
    while r + 4 <= rows {
        let mut acc00 = _mm256_loadu_pd(zp.add(r * lp));
        let mut acc01 = _mm256_loadu_pd(zp.add(r * lp + 4));
        let mut acc10 = _mm256_loadu_pd(zp.add((r + 1) * lp));
        let mut acc11 = _mm256_loadu_pd(zp.add((r + 1) * lp + 4));
        let mut acc20 = _mm256_loadu_pd(zp.add((r + 2) * lp));
        let mut acc21 = _mm256_loadu_pd(zp.add((r + 2) * lp + 4));
        let mut acc30 = _mm256_loadu_pd(zp.add((r + 3) * lp));
        let mut acc31 = _mm256_loadu_pd(zp.add((r + 3) * lp + 4));
        for c in 0..cols {
            let x0 = _mm256_loadu_pd(xp.add(c * lp));
            let x1 = _mm256_loadu_pd(xp.add(c * lp + 4));
            let w0 = _mm256_broadcast_sd(&*wp.add(r * cols + c));
            acc00 = _mm256_fmadd_pd(x0, w0, acc00);
            acc01 = _mm256_fmadd_pd(x1, w0, acc01);
            let w1 = _mm256_broadcast_sd(&*wp.add((r + 1) * cols + c));
            acc10 = _mm256_fmadd_pd(x0, w1, acc10);
            acc11 = _mm256_fmadd_pd(x1, w1, acc11);
            let w2 = _mm256_broadcast_sd(&*wp.add((r + 2) * cols + c));
            acc20 = _mm256_fmadd_pd(x0, w2, acc20);
            acc21 = _mm256_fmadd_pd(x1, w2, acc21);
            let w3 = _mm256_broadcast_sd(&*wp.add((r + 3) * cols + c));
            acc30 = _mm256_fmadd_pd(x0, w3, acc30);
            acc31 = _mm256_fmadd_pd(x1, w3, acc31);
        }
        _mm256_storeu_pd(zp.add(r * lp), acc00);
        _mm256_storeu_pd(zp.add(r * lp + 4), acc01);
        _mm256_storeu_pd(zp.add((r + 1) * lp), acc10);
        _mm256_storeu_pd(zp.add((r + 1) * lp + 4), acc11);
        _mm256_storeu_pd(zp.add((r + 2) * lp), acc20);
        _mm256_storeu_pd(zp.add((r + 2) * lp + 4), acc21);
        _mm256_storeu_pd(zp.add((r + 3) * lp), acc30);
        _mm256_storeu_pd(zp.add((r + 3) * lp + 4), acc31);
        r += 4;
    }
    while r < rows {
        let mut acc0 = _mm256_loadu_pd(zp.add(r * lp));
        let mut acc1 = _mm256_loadu_pd(zp.add(r * lp + 4));
        for c in 0..cols {
            let wv = _mm256_broadcast_sd(&*wp.add(r * cols + c));
            acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(xp.add(c * lp)), wv, acc0);
            acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(xp.add(c * lp + 4)), wv, acc1);
        }
        _mm256_storeu_pd(zp.add(r * lp), acc0);
        _mm256_storeu_pd(zp.add(r * lp + 4), acc1);
        r += 1;
    }
}

/// Single-group variant of [`wmat_acc_g2`] (eight rows × one group),
/// with the identical per-element FMA chain. Eight accumulator rows —
/// not four — because a lone group only carries one FMA chain per row;
/// eight independent chains are what the FMA ports need to stay
/// saturated when there is no second group to pair with.
///
/// # Safety
///
/// As [`wmat_acc_g2`], with `(g + 1) * 4 <= lp`.
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn wmat_acc_g1(
    w: &[f64],
    rows: usize,
    cols: usize,
    xt: &[f64],
    lp: usize,
    zt: &mut [f64],
    g: usize,
) {
    debug_assert_eq!(w.len(), rows * cols);
    debug_assert!(xt.len() >= cols * lp);
    debug_assert!(zt.len() >= rows * lp);
    debug_assert!((g + 1) * 4 <= lp);
    let wp = w.as_ptr();
    let xp = xt.as_ptr().add(g * 4);
    let zp = zt.as_mut_ptr().add(g * 4);
    let mut r = 0;
    while r + 8 <= rows {
        let mut acc0 = _mm256_loadu_pd(zp.add(r * lp));
        let mut acc1 = _mm256_loadu_pd(zp.add((r + 1) * lp));
        let mut acc2 = _mm256_loadu_pd(zp.add((r + 2) * lp));
        let mut acc3 = _mm256_loadu_pd(zp.add((r + 3) * lp));
        let mut acc4 = _mm256_loadu_pd(zp.add((r + 4) * lp));
        let mut acc5 = _mm256_loadu_pd(zp.add((r + 5) * lp));
        let mut acc6 = _mm256_loadu_pd(zp.add((r + 6) * lp));
        let mut acc7 = _mm256_loadu_pd(zp.add((r + 7) * lp));
        for c in 0..cols {
            let x0 = _mm256_loadu_pd(xp.add(c * lp));
            acc0 = _mm256_fmadd_pd(x0, _mm256_broadcast_sd(&*wp.add(r * cols + c)), acc0);
            acc1 = _mm256_fmadd_pd(x0, _mm256_broadcast_sd(&*wp.add((r + 1) * cols + c)), acc1);
            acc2 = _mm256_fmadd_pd(x0, _mm256_broadcast_sd(&*wp.add((r + 2) * cols + c)), acc2);
            acc3 = _mm256_fmadd_pd(x0, _mm256_broadcast_sd(&*wp.add((r + 3) * cols + c)), acc3);
            acc4 = _mm256_fmadd_pd(x0, _mm256_broadcast_sd(&*wp.add((r + 4) * cols + c)), acc4);
            acc5 = _mm256_fmadd_pd(x0, _mm256_broadcast_sd(&*wp.add((r + 5) * cols + c)), acc5);
            acc6 = _mm256_fmadd_pd(x0, _mm256_broadcast_sd(&*wp.add((r + 6) * cols + c)), acc6);
            acc7 = _mm256_fmadd_pd(x0, _mm256_broadcast_sd(&*wp.add((r + 7) * cols + c)), acc7);
        }
        _mm256_storeu_pd(zp.add(r * lp), acc0);
        _mm256_storeu_pd(zp.add((r + 1) * lp), acc1);
        _mm256_storeu_pd(zp.add((r + 2) * lp), acc2);
        _mm256_storeu_pd(zp.add((r + 3) * lp), acc3);
        _mm256_storeu_pd(zp.add((r + 4) * lp), acc4);
        _mm256_storeu_pd(zp.add((r + 5) * lp), acc5);
        _mm256_storeu_pd(zp.add((r + 6) * lp), acc6);
        _mm256_storeu_pd(zp.add((r + 7) * lp), acc7);
        r += 8;
    }
    while r + 4 <= rows {
        let mut acc0 = _mm256_loadu_pd(zp.add(r * lp));
        let mut acc1 = _mm256_loadu_pd(zp.add((r + 1) * lp));
        let mut acc2 = _mm256_loadu_pd(zp.add((r + 2) * lp));
        let mut acc3 = _mm256_loadu_pd(zp.add((r + 3) * lp));
        for c in 0..cols {
            let x0 = _mm256_loadu_pd(xp.add(c * lp));
            acc0 = _mm256_fmadd_pd(x0, _mm256_broadcast_sd(&*wp.add(r * cols + c)), acc0);
            acc1 = _mm256_fmadd_pd(x0, _mm256_broadcast_sd(&*wp.add((r + 1) * cols + c)), acc1);
            acc2 = _mm256_fmadd_pd(x0, _mm256_broadcast_sd(&*wp.add((r + 2) * cols + c)), acc2);
            acc3 = _mm256_fmadd_pd(x0, _mm256_broadcast_sd(&*wp.add((r + 3) * cols + c)), acc3);
        }
        _mm256_storeu_pd(zp.add(r * lp), acc0);
        _mm256_storeu_pd(zp.add((r + 1) * lp), acc1);
        _mm256_storeu_pd(zp.add((r + 2) * lp), acc2);
        _mm256_storeu_pd(zp.add((r + 3) * lp), acc3);
        r += 4;
    }
    while r < rows {
        let mut acc = _mm256_loadu_pd(zp.add(r * lp));
        for c in 0..cols {
            let x0 = _mm256_loadu_pd(xp.add(c * lp));
            acc = _mm256_fmadd_pd(x0, _mm256_broadcast_sd(&*wp.add(r * cols + c)), acc);
        }
        _mm256_storeu_pd(zp.add(r * lp), acc);
        r += 1;
    }
}

/// Fused LSTM gate step for the four lanes of group `g`: reads the
/// gate pre-activations `zt` (`4*hidden x lp`, gate order i,f,g,o),
/// updates cell/hidden panels `ct`/`ht` (`hidden x lp`) in place as
///
/// ```text
/// c = fma(σ(z_f), c, σ(z_i) · tanh(z_g));   h = σ(z_o) · tanh(c)
/// ```
///
/// Only the lanes set in the 4-bit `mask` are written back; the
/// arithmetic runs for all four lanes (masked lanes compute finite
/// garbage that is discarded), so an element's value never depends on
/// which other lanes are active.
///
/// # Safety
///
/// The CPU must support AVX2 and FMA; `(g + 1) * 4 <= lp`, `zt` at
/// least `4*hidden x lp`, `ct`/`ht` at least `hidden x lp`
/// (debug-asserted); `mask < 16`.
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn gates_group(
    zt: &[f64],
    hidden: usize,
    lp: usize,
    ct: &mut [f64],
    ht: &mut [f64],
    g: usize,
    mask: u8,
) {
    debug_assert!(zt.len() >= 4 * hidden * lp);
    debug_assert!(ct.len() >= hidden * lp);
    debug_assert!(ht.len() >= hidden * lp);
    debug_assert!((g + 1) * 4 <= lp);
    debug_assert!(mask < 16);
    let zp = zt.as_ptr().add(g * 4);
    let cp = ct.as_mut_ptr().add(g * 4);
    let hp = ht.as_mut_ptr().add(g * 4);
    let full = mask == 0b1111;
    let store_mask = _mm256_loadu_si256(STORE_MASKS[mask as usize].as_ptr() as *const __m256i);
    // Chunked two-pass evaluation. Pass one computes the input-side
    // gates — their four exps are independent, so they run in lockstep
    // through `exp4x4` — and the new cell row, stashing `c` and `σ(z_o)`
    // in small stack panels. Pass two then evaluates the dependent
    // `tanh(c)` four rows at a time, again in lockstep. Splitting the
    // passes breaks the per-row serial chain exp → div → fma → exp →
    // div → mul whose latency (not port throughput) otherwise bounds
    // the loop. Every value is bitwise what the naive
    // `sigmoid4`/`tanh4` composition produces — only evaluation
    // ordering changes.
    const CHUNK: usize = 16;
    let mut c_buf = [0.0f64; CHUNK * 4];
    let mut o_buf = [0.0f64; CHUNK * 4];
    let one = _mm256_set1_pd(1.0);
    let two = _mm256_set1_pd(2.0);
    let neg_one = _mm256_set1_pd(-1.0);
    let nsign = _mm256_set1_pd(-0.0);
    let mut k0 = 0;
    while k0 < hidden {
        let m = CHUNK.min(hidden - k0);
        for dk in 0..m {
            let k = k0 + dk;
            let zi = _mm256_loadu_pd(zp.add(k * lp));
            let zf = _mm256_loadu_pd(zp.add((hidden + k) * lp));
            let zg = _mm256_loadu_pd(zp.add((2 * hidden + k) * lp));
            let zo = _mm256_loadu_pd(zp.add((3 * hidden + k) * lp));
            let (ei, ef, eg, eo) = exp4x4(
                _mm256_xor_pd(zi, nsign),
                _mm256_xor_pd(zf, nsign),
                _mm256_xor_pd(_mm256_add_pd(zg, zg), nsign),
                _mm256_xor_pd(zo, nsign),
            );
            let i = _mm256_div_pd(one, _mm256_add_pd(one, ei));
            let f = _mm256_div_pd(one, _mm256_add_pd(one, ef));
            let sg = _mm256_div_pd(one, _mm256_add_pd(one, eg));
            let gg = _mm256_fmadd_pd(two, sg, neg_one);
            let o = _mm256_div_pd(one, _mm256_add_pd(one, eo));
            let c_old = _mm256_loadu_pd(cp.add(k * lp));
            let c_new = _mm256_fmadd_pd(f, c_old, _mm256_mul_pd(i, gg));
            _mm256_storeu_pd(c_buf.as_mut_ptr().add(dk * 4), c_new);
            _mm256_storeu_pd(o_buf.as_mut_ptr().add(dk * 4), o);
            if full {
                _mm256_storeu_pd(cp.add(k * lp), c_new);
            } else {
                _mm256_maskstore_pd(cp.add(k * lp), store_mask, c_new);
            }
        }
        let mut dk = 0;
        while dk + 4 <= m {
            let c0 = _mm256_loadu_pd(c_buf.as_ptr().add(dk * 4));
            let c1 = _mm256_loadu_pd(c_buf.as_ptr().add((dk + 1) * 4));
            let c2 = _mm256_loadu_pd(c_buf.as_ptr().add((dk + 2) * 4));
            let c3 = _mm256_loadu_pd(c_buf.as_ptr().add((dk + 3) * 4));
            let (e0, e1, e2, e3) = exp4x4(
                _mm256_xor_pd(_mm256_add_pd(c0, c0), nsign),
                _mm256_xor_pd(_mm256_add_pd(c1, c1), nsign),
                _mm256_xor_pd(_mm256_add_pd(c2, c2), nsign),
                _mm256_xor_pd(_mm256_add_pd(c3, c3), nsign),
            );
            let t0 = _mm256_fmadd_pd(two, _mm256_div_pd(one, _mm256_add_pd(one, e0)), neg_one);
            let t1 = _mm256_fmadd_pd(two, _mm256_div_pd(one, _mm256_add_pd(one, e1)), neg_one);
            let t2 = _mm256_fmadd_pd(two, _mm256_div_pd(one, _mm256_add_pd(one, e2)), neg_one);
            let t3 = _mm256_fmadd_pd(two, _mm256_div_pd(one, _mm256_add_pd(one, e3)), neg_one);
            for (dj, t) in [t0, t1, t2, t3].into_iter().enumerate() {
                let k = k0 + dk + dj;
                let o = _mm256_loadu_pd(o_buf.as_ptr().add((dk + dj) * 4));
                let h_new = _mm256_mul_pd(o, t);
                if full {
                    _mm256_storeu_pd(hp.add(k * lp), h_new);
                } else {
                    _mm256_maskstore_pd(hp.add(k * lp), store_mask, h_new);
                }
            }
            dk += 4;
        }
        while dk < m {
            let k = k0 + dk;
            let c = _mm256_loadu_pd(c_buf.as_ptr().add(dk * 4));
            let o = _mm256_loadu_pd(o_buf.as_ptr().add(dk * 4));
            let h_new = _mm256_mul_pd(o, tanh4(c));
            if full {
                _mm256_storeu_pd(hp.add(k * lp), h_new);
            } else {
                _mm256_maskstore_pd(hp.add(k * lp), store_mask, h_new);
            }
            dk += 1;
        }
        k0 += m;
    }
}

/// Scatter up to four `row_len`-wide table rows into the lane columns
/// of group `g` of `zt`: `zt[r][g*4 + j] = table[ids[j] * row_len + r]`
/// for every lane `j` set in the 4-bit `mask`, via 4×4 in-register
/// transposes with masked stores; unset lanes' columns are left
/// untouched. A pure data movement — the staged values are bitwise the
/// table's. Unset lanes' `ids` entries are still read (callers pass
/// id 0), so they only need to be in bounds.
///
/// # Safety
///
/// The CPU must support AVX2 and FMA; every `ids[j] * row_len +
/// row_len` must be in bounds of `table`, `(g + 1) * 4 <= lp`, and
/// `zt.len() >= row_len * lp` (debug-asserted); `mask < 16`.
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn stage_rows_group(
    table: &[f64],
    row_len: usize,
    ids: [usize; 4],
    zt: &mut [f64],
    lp: usize,
    g: usize,
    mask: u8,
) {
    debug_assert!(ids.iter().all(|&id| (id + 1) * row_len <= table.len()));
    debug_assert!(zt.len() >= row_len * lp);
    debug_assert!((g + 1) * 4 <= lp);
    debug_assert!(mask < 16);
    let full = mask == 0b1111;
    let store_mask = _mm256_loadu_si256(STORE_MASKS[mask as usize].as_ptr() as *const __m256i);
    let tp = table.as_ptr();
    let zp = zt.as_mut_ptr().add(g * 4);
    let p0 = tp.add(ids[0] * row_len);
    let p1 = tp.add(ids[1] * row_len);
    let p2 = tp.add(ids[2] * row_len);
    let p3 = tp.add(ids[3] * row_len);
    let blocks = row_len / 4;
    for b in 0..blocks {
        let a = _mm256_loadu_pd(p0.add(4 * b));
        let bv = _mm256_loadu_pd(p1.add(4 * b));
        let c = _mm256_loadu_pd(p2.add(4 * b));
        let d = _mm256_loadu_pd(p3.add(4 * b));
        let t0 = _mm256_unpacklo_pd(a, bv); // a0 b0 a2 b2
        let t1 = _mm256_unpackhi_pd(a, bv); // a1 b1 a3 b3
        let t2 = _mm256_unpacklo_pd(c, d); // c0 d0 c2 d2
        let t3 = _mm256_unpackhi_pd(c, d); // c1 d1 c3 d3
        let r0 = _mm256_permute2f128_pd(t0, t2, 0x20); // a0 b0 c0 d0
        let r1 = _mm256_permute2f128_pd(t1, t3, 0x20);
        let r2 = _mm256_permute2f128_pd(t0, t2, 0x31);
        let r3 = _mm256_permute2f128_pd(t1, t3, 0x31);
        if full {
            _mm256_storeu_pd(zp.add((4 * b) * lp), r0);
            _mm256_storeu_pd(zp.add((4 * b + 1) * lp), r1);
            _mm256_storeu_pd(zp.add((4 * b + 2) * lp), r2);
            _mm256_storeu_pd(zp.add((4 * b + 3) * lp), r3);
        } else {
            _mm256_maskstore_pd(zp.add((4 * b) * lp), store_mask, r0);
            _mm256_maskstore_pd(zp.add((4 * b + 1) * lp), store_mask, r1);
            _mm256_maskstore_pd(zp.add((4 * b + 2) * lp), store_mask, r2);
            _mm256_maskstore_pd(zp.add((4 * b + 3) * lp), store_mask, r3);
        }
    }
    for r in 4 * blocks..row_len {
        if mask & 1 != 0 {
            *zp.add(r * lp) = *p0.add(r);
        }
        if mask & 2 != 0 {
            *zp.add(r * lp + 1) = *p1.add(r);
        }
        if mask & 4 != 0 {
            *zp.add(r * lp + 2) = *p2.add(r);
        }
        if mask & 8 != 0 {
            *zp.add(r * lp + 3) = *p3.add(r);
        }
    }
}

/// Broadcast a bias vector across the first `groups` lane groups:
/// `zt[r][lane] = src[r]` for every lane of groups `0..groups`.
///
/// # Safety
///
/// The CPU must support AVX2 and FMA; `groups * 4 <= lp` and
/// `zt.len() >= src.len() * lp` (debug-asserted).
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn broadcast_rows(src: &[f64], zt: &mut [f64], lp: usize, groups: usize) {
    debug_assert!(groups * 4 <= lp);
    debug_assert!(zt.len() >= src.len() * lp);
    let zp = zt.as_mut_ptr();
    for (r, &v) in src.iter().enumerate() {
        let vv = _mm256_set1_pd(v);
        for g in 0..groups {
            _mm256_storeu_pd(zp.add(r * lp + g * 4), vv);
        }
    }
}

// ---------------------------------------------------------------------
// Vector transcendentals.
// ---------------------------------------------------------------------

/// Clamp range for `exp4`: inputs below −708 underflow toward zero and
/// inputs above +709 would overflow the 2^n scale; both ends round to
/// finite values after clamping, so saturated gates stay finite.
const EXP_LO: f64 = -708.0;
const EXP_HI: f64 = 709.0;

/// Cody–Waite split of ln 2: `r = x − n·LN2_HI − n·LN2_LO` keeps the
/// reduced argument exact to well below the f64 ulp for |n| ≤ 1024.
/// The extra decimal digits pin the intended (non-nearest) f64 values.
#[allow(clippy::excessive_precision)]
const LN2_HI: f64 = 6.931_471_803_691_238_164_9e-1;
#[allow(clippy::excessive_precision)]
const LN2_LO: f64 = 1.908_214_929_270_587_700_02e-10;

/// exp(x) for four lanes: range reduction x = n·ln2 + r with
/// |r| ≤ ln2/2, degree-13 Taylor polynomial in r (truncation error
/// ~1e-17 relative), exact 2^n scaling through the exponent field.
/// NaN propagates (the clamp's operand order keeps NaN as src2).
#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn exp4(x: __m256d) -> __m256d {
    let x = _mm256_min_pd(_mm256_set1_pd(EXP_HI), _mm256_max_pd(_mm256_set1_pd(EXP_LO), x));
    let n_real = _mm256_round_pd(
        _mm256_mul_pd(x, _mm256_set1_pd(std::f64::consts::LOG2_E)),
        _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC,
    );
    let r = _mm256_fnmadd_pd(n_real, _mm256_set1_pd(LN2_HI), x);
    let r = _mm256_fnmadd_pd(n_real, _mm256_set1_pd(LN2_LO), r);
    // Horner evaluation of Σ r^k / k!, k = 0..=13.
    let mut p = _mm256_set1_pd(1.0 / 6_227_020_800.0); // 1/13!
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 479_001_600.0));
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 39_916_800.0));
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 3_628_800.0));
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 362_880.0));
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 40_320.0));
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 5_040.0));
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 720.0));
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 120.0));
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 24.0));
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0 / 6.0));
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(0.5));
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0));
    p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(1.0));
    // 2^n via the exponent field: n is integral and within ±1023 after
    // the clamp, so the biased exponent stays in (0, 2047).
    let n_i64 = _mm256_cvtepi32_epi64(_mm256_cvtpd_epi32(n_real));
    let scale = _mm256_castsi256_pd(_mm256_slli_epi64::<52>(_mm256_add_epi64(
        n_i64,
        _mm256_set1_epi64x(1023),
    )));
    _mm256_mul_pd(p, scale)
}

/// Four independent `exp` evaluations in lockstep, bitwise identical
/// to four [`exp4`] calls. The lockstep form exists purely for
/// throughput: each Horner coefficient is materialized once and feeds
/// four FMAs (instead of one broadcast load per FMA), and the four
/// dependency chains overlap — [`gates_group`] is latency- and
/// load-bound on its transcendentals otherwise.
#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn exp4x4(
    x0: __m256d,
    x1: __m256d,
    x2: __m256d,
    x3: __m256d,
) -> (__m256d, __m256d, __m256d, __m256d) {
    let hi = _mm256_set1_pd(EXP_HI);
    let lo = _mm256_set1_pd(EXP_LO);
    let x0 = _mm256_min_pd(hi, _mm256_max_pd(lo, x0));
    let x1 = _mm256_min_pd(hi, _mm256_max_pd(lo, x1));
    let x2 = _mm256_min_pd(hi, _mm256_max_pd(lo, x2));
    let x3 = _mm256_min_pd(hi, _mm256_max_pd(lo, x3));
    let log2e = _mm256_set1_pd(std::f64::consts::LOG2_E);
    const RN: i32 = _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC;
    let n0 = _mm256_round_pd::<RN>(_mm256_mul_pd(x0, log2e));
    let n1 = _mm256_round_pd::<RN>(_mm256_mul_pd(x1, log2e));
    let n2 = _mm256_round_pd::<RN>(_mm256_mul_pd(x2, log2e));
    let n3 = _mm256_round_pd::<RN>(_mm256_mul_pd(x3, log2e));
    let ln2_hi = _mm256_set1_pd(LN2_HI);
    let r0 = _mm256_fnmadd_pd(n0, ln2_hi, x0);
    let r1 = _mm256_fnmadd_pd(n1, ln2_hi, x1);
    let r2 = _mm256_fnmadd_pd(n2, ln2_hi, x2);
    let r3 = _mm256_fnmadd_pd(n3, ln2_hi, x3);
    let ln2_lo = _mm256_set1_pd(LN2_LO);
    let r0 = _mm256_fnmadd_pd(n0, ln2_lo, r0);
    let r1 = _mm256_fnmadd_pd(n1, ln2_lo, r1);
    let r2 = _mm256_fnmadd_pd(n2, ln2_lo, r2);
    let r3 = _mm256_fnmadd_pd(n3, ln2_lo, r3);
    // Same degree-13 Taylor series as `exp4`, four chains in lockstep.
    const COEFFS: [f64; 13] = [
        1.0 / 479_001_600.0,
        1.0 / 39_916_800.0,
        1.0 / 3_628_800.0,
        1.0 / 362_880.0,
        1.0 / 40_320.0,
        1.0 / 5_040.0,
        1.0 / 720.0,
        1.0 / 120.0,
        1.0 / 24.0,
        1.0 / 6.0,
        0.5,
        1.0,
        1.0,
    ];
    let mut p0 = _mm256_set1_pd(1.0 / 6_227_020_800.0); // 1/13!
    let mut p1 = p0;
    let mut p2 = p0;
    let mut p3 = p0;
    for &c in &COEFFS {
        let cv = _mm256_set1_pd(c);
        p0 = _mm256_fmadd_pd(p0, r0, cv);
        p1 = _mm256_fmadd_pd(p1, r1, cv);
        p2 = _mm256_fmadd_pd(p2, r2, cv);
        p3 = _mm256_fmadd_pd(p3, r3, cv);
    }
    let bias = _mm256_set1_epi64x(1023);
    let scale = |n: __m256d| {
        let n_i64 = _mm256_cvtepi32_epi64(_mm256_cvtpd_epi32(n));
        _mm256_castsi256_pd(_mm256_slli_epi64::<52>(_mm256_add_epi64(n_i64, bias)))
    };
    (
        _mm256_mul_pd(p0, scale(n0)),
        _mm256_mul_pd(p1, scale(n1)),
        _mm256_mul_pd(p2, scale(n2)),
        _mm256_mul_pd(p3, scale(n3)),
    )
}

/// Logistic sigmoid for four lanes: `1 / (1 + exp(−x))`.
#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn sigmoid4(x: __m256d) -> __m256d {
    let one = _mm256_set1_pd(1.0);
    let neg_x = _mm256_xor_pd(x, _mm256_set1_pd(-0.0));
    _mm256_div_pd(one, _mm256_add_pd(one, exp4(neg_x)))
}

/// tanh for four lanes as `2·σ(2x) − 1` in one FMA: the doubling and
/// the final fused multiply-add are exact, so the relative accuracy of
/// `sigmoid4` carries over — including near zero, where the naive
/// `2σ−1` subtraction would cancel.
#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn tanh4(x: __m256d) -> __m256d {
    let s = sigmoid4(_mm256_add_pd(x, x));
    _mm256_fmadd_pd(_mm256_set1_pd(2.0), s, _mm256_set1_pd(-1.0))
}

/// In-place vector sigmoid over a slice (vtable entry).
///
/// # Safety
///
/// The CPU must support AVX2 and FMA.
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn sigmoid_slice(xs: &mut [f64]) {
    let n = xs.len();
    let p = xs.as_mut_ptr();
    let blocks = n / 4;
    for k in 0..blocks {
        let v = _mm256_loadu_pd(p.add(4 * k));
        _mm256_storeu_pd(p.add(4 * k), sigmoid4(v));
    }
    if !n.is_multiple_of(4) {
        let mut pad = [0.0f64; 4];
        pad[..n - 4 * blocks].copy_from_slice(&xs[4 * blocks..]);
        let v = sigmoid4(_mm256_loadu_pd(pad.as_ptr()));
        _mm256_storeu_pd(pad.as_mut_ptr(), v);
        xs[4 * blocks..].copy_from_slice(&pad[..n - 4 * blocks]);
    }
}

/// In-place vector tanh over a slice (vtable entry).
///
/// # Safety
///
/// The CPU must support AVX2 and FMA.
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn tanh_slice(xs: &mut [f64]) {
    let n = xs.len();
    let p = xs.as_mut_ptr();
    let blocks = n / 4;
    for k in 0..blocks {
        let v = _mm256_loadu_pd(p.add(4 * k));
        _mm256_storeu_pd(p.add(4 * k), tanh4(v));
    }
    if !n.is_multiple_of(4) {
        let mut pad = [0.0f64; 4];
        pad[..n - 4 * blocks].copy_from_slice(&xs[4 * blocks..]);
        let v = tanh4(_mm256_loadu_pd(pad.as_ptr()));
        _mm256_storeu_pd(pad.as_mut_ptr(), v);
        xs[4 * blocks..].copy_from_slice(&pad[..n - 4 * blocks]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn have_avx2() -> bool {
        is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
    }

    fn ulp_of(x: f64) -> f64 {
        let a = x.abs().max(f64::MIN_POSITIVE);
        f64::from_bits(a.to_bits() + 1) - a
    }

    /// The scalar-exact primitives must be *bitwise* equal to the
    /// scalar kernel, including on awkward shapes: cols % 8 ≠ 0 (both
    /// a partial 4-block and a remainder), a single row, zero cols.
    #[test]
    fn matvec_is_bitwise_scalar() {
        if !have_avx2() {
            return;
        }
        for (rows, cols) in [(7, 10), (1, 13), (5, 3), (160, 24), (3, 0), (1, 1)] {
            let w: Vec<f64> = (0..rows * cols).map(|i| ((i as f64) * 0.731).sin() * 3.0).collect();
            let x: Vec<f64> = (0..cols).map(|i| ((i as f64) * 0.917).cos() * 2.0).collect();
            let mut want = vec![0.0; rows];
            crate::ops::matvec(&w, rows, cols, &x, &mut want);
            let mut got = vec![0.0; rows];
            unsafe { matvec(&w, rows, cols, &x, &mut got) };
            assert_eq!(got, want, "{rows}x{cols}");
        }
    }

    #[test]
    fn matvec_lanes_is_bitwise_scalar_and_skips_lanes() {
        if !have_avx2() {
            return;
        }
        let (rows, cols, nlanes) = (7, 10, 5);
        let w: Vec<f64> = (0..rows * cols).map(|i| ((i as f64) * 0.31).sin()).collect();
        let xs: Vec<f64> = (0..nlanes * cols).map(|i| ((i as f64) * 0.17).cos()).collect();
        let lanes = [0usize, 1, 3, 4];
        let mut want = vec![f64::NAN; nlanes * rows];
        crate::ops::matvec_lanes(&w, rows, cols, &xs, &mut want, &lanes);
        let mut got = vec![f64::NAN; nlanes * rows];
        unsafe { matvec_lanes(&w, rows, cols, &xs, &mut got, &lanes) };
        for b in 0..nlanes {
            if b == 2 {
                assert!(got[b * rows..(b + 1) * rows].iter().all(|v| v.is_nan()));
            } else {
                assert_eq!(&got[b * rows..(b + 1) * rows], &want[b * rows..(b + 1) * rows]);
            }
        }
    }

    /// The packed FMA accumulation reassociates the sum, so it is not
    /// bitwise scalar — but each element is one FMA chain over `cols`
    /// products, whose error against the exactly-rounded dot product
    /// is classically bounded by ~n·ε·Σ|terms|. Check against a
    /// generous version of that bound.
    #[test]
    fn packed_matvec_error_bound() {
        if !have_avx2() {
            return;
        }
        for (rows, cols, lanes) in
            [(160usize, 24usize, 8usize), (160, 40, 12), (6, 5, 4), (9, 7, 5)]
        {
            let lp = lanes.div_ceil(4) * 4;
            let w: Vec<f64> = (0..rows * cols).map(|i| ((i as f64) * 0.61).sin()).collect();
            let xt: Vec<f64> = (0..cols * lp).map(|i| ((i as f64) * 0.43).cos()).collect();
            let mut zt = vec![0.25f64; rows * lp];
            let groups = lp / 4;
            let mut g = 0;
            while g + 2 <= groups {
                unsafe { wmat_acc_g2(&w, rows, cols, &xt, lp, &mut zt, g) };
                g += 2;
            }
            if g < groups {
                unsafe { wmat_acc_g1(&w, rows, cols, &xt, lp, &mut zt, g) };
            }
            for r in 0..rows {
                for b in 0..lanes {
                    let mut reference = 0.25f64;
                    let mut magnitude = 0.25f64;
                    for c in 0..cols {
                        let term = w[r * cols + c] * xt[c * lp + b];
                        reference += term;
                        magnitude += term.abs();
                    }
                    let got = zt[r * lp + b];
                    let bound =
                        ((cols + 4) as f64) * f64::EPSILON * magnitude + 4.0 * ulp_of(reference);
                    assert!(
                        (got - reference).abs() <= bound,
                        "rows {rows} cols {cols} r {r} b {b}: {got} vs {reference}"
                    );
                }
            }
        }
    }

    /// Per-element independence: the FMA chain of a lane must not see
    /// the other lanes — running one group of a 2-group panel and
    /// running both must produce bitwise identical values for that
    /// group's lanes.
    #[test]
    fn packed_matvec_lane_chains_are_independent() {
        if !have_avx2() {
            return;
        }
        let (rows, cols, lp) = (12, 9, 8);
        let w: Vec<f64> = (0..rows * cols).map(|i| ((i as f64) * 0.29).sin()).collect();
        let xt: Vec<f64> = (0..cols * lp).map(|i| ((i as f64) * 0.83).cos()).collect();
        let mut both = vec![0.5f64; rows * lp];
        unsafe { wmat_acc_g2(&w, rows, cols, &xt, lp, &mut both, 0) };
        let mut solo = vec![0.5f64; rows * lp];
        unsafe { wmat_acc_g1(&w, rows, cols, &xt, lp, &mut solo, 0) };
        for r in 0..rows {
            assert_eq!(&both[r * lp..r * lp + 4], &solo[r * lp..r * lp + 4], "row {r}");
        }
    }

    #[test]
    fn vector_sigmoid_matches_libm_within_ulps() {
        if !have_avx2() {
            return;
        }
        let xs: Vec<f64> = (-4000..4000)
            .map(|i| i as f64 * 0.01)
            .chain([0.0, -0.0, 1e-18, -1e-18, 700.0, -700.0, 1e9, -1e9])
            .collect();
        let mut got = xs.clone();
        unsafe { sigmoid_slice(&mut got) };
        for (&x, &s) in xs.iter().zip(&got) {
            let want = 1.0 / (1.0 + (-x).exp());
            // The EXP_LO/EXP_HI clamp makes deeply saturated outputs
            // bottom out near the smallest normal instead of exactly 0.
            let tolerance = (8.0 * ulp_of(want)).max(1.5e-308);
            assert!(
                (s - want).abs() <= tolerance,
                "sigmoid({x}): {s} vs {want} (diff {})",
                (s - want).abs()
            );
        }
    }

    #[test]
    fn vector_tanh_matches_libm_within_bound() {
        if !have_avx2() {
            return;
        }
        let xs: Vec<f64> = (-4000..4000)
            .map(|i| i as f64 * 0.005)
            .chain([0.0, -0.0, 1e-18, -1e-12, 350.0, -350.0, 1e9, -1e9])
            .collect();
        let mut got = xs.clone();
        unsafe { tanh_slice(&mut got) };
        for (&x, &t) in xs.iter().zip(&got) {
            let want = x.tanh();
            // Relative where tanh is well-scaled, absolute through the
            // 2σ(2x)−1 cancellation regime.
            let tolerance = (8.0 * ulp_of(want)).max(2e-16);
            assert!(
                (t - want).abs() <= tolerance,
                "tanh({x}): {t} vs {want} (diff {})",
                (t - want).abs()
            );
        }
    }

    #[test]
    fn transcendental_tails_handle_odd_lengths() {
        if !have_avx2() {
            return;
        }
        for n in [0usize, 1, 2, 3, 5, 7] {
            let xs: Vec<f64> = (0..n).map(|i| i as f64 - 2.0).collect();
            let mut got = xs.clone();
            unsafe { sigmoid_slice(&mut got) };
            let mut whole = xs.clone();
            whole.resize(8, 0.0);
            unsafe { sigmoid_slice(&mut whole) };
            assert_eq!(&got[..], &whole[..n], "n={n}");
        }
    }

    #[test]
    fn stage_and_broadcast_are_exact_copies() {
        if !have_avx2() {
            return;
        }
        let row_len = 10; // exercises the transpose tail (10 % 4 != 0)
        let table: Vec<f64> = (0..6 * row_len).map(|i| i as f64 * 0.5).collect();
        let lp = 8;
        let mut zt = vec![f64::NAN; row_len * lp];
        unsafe { stage_rows_group(&table, row_len, [3, 0, 5, 1], &mut zt, lp, 1, 0b1111) };
        for r in 0..row_len {
            for (j, id) in [3usize, 0, 5, 1].into_iter().enumerate() {
                assert_eq!(zt[r * lp + 4 + j].to_bits(), table[id * row_len + r].to_bits());
            }
            // Group 0 untouched.
            assert!(zt[r * lp..r * lp + 4].iter().all(|v| v.is_nan()));
        }
        // Partial mask: only the set lanes' columns are written.
        let mut zt_m = vec![f64::NAN; row_len * lp];
        unsafe { stage_rows_group(&table, row_len, [3, 0, 5, 1], &mut zt_m, lp, 1, 0b0101) };
        for r in 0..row_len {
            for (j, id) in [3usize, 0, 5, 1].into_iter().enumerate() {
                if 0b0101 & (1 << j) != 0 {
                    assert_eq!(zt_m[r * lp + 4 + j].to_bits(), table[id * row_len + r].to_bits());
                } else {
                    assert!(zt_m[r * lp + 4 + j].is_nan());
                }
            }
        }
        let bias: Vec<f64> = (0..5).map(|i| i as f64 - 1.5).collect();
        let mut panel = vec![f64::NAN; 5 * lp];
        unsafe { broadcast_rows(&bias, &mut panel, lp, 2) };
        for r in 0..5 {
            for lane in 0..8 {
                assert_eq!(panel[r * lp + lane], bias[r]);
            }
        }
    }

    #[test]
    fn exp_clamp_keeps_saturated_gates_finite() {
        if !have_avx2() {
            return;
        }
        let mut xs = [-1e308, 1e308, -750.0, 750.0, 709.0, -708.0, 0.0, 1.0];
        unsafe { sigmoid_slice(&mut xs) };
        for (i, v) in xs.iter().enumerate() {
            assert!(v.is_finite(), "slot {i} not finite: {v}");
            assert!((0.0..=1.0).contains(v), "slot {i} out of range: {v}");
        }
        assert!(xs[0] < 1e-300 && xs[1] == 1.0);
    }
}
