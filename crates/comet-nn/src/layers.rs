//! Embedding and linear layers.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::ops::{add_assign, matvec, matvec_transpose_acc, outer_acc};
use crate::param::Param;

/// A token-embedding table mapping vocabulary ids to dense vectors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Embedding {
    /// `vocab x dim` row-major table.
    pub table: Param,
    vocab: usize,
    dim: usize,
}

impl Embedding {
    /// A freshly initialized table.
    pub fn new<R: Rng>(vocab: usize, dim: usize, rng: &mut R) -> Embedding {
        let scale = (1.0 / dim as f64).sqrt();
        Embedding { table: Param::uniform(vocab * dim, scale, rng), vocab, dim }
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Look up the embedding of a token id.
    ///
    /// # Panics
    ///
    /// Panics if `id >= vocab`.
    pub fn lookup(&self, id: usize) -> Vec<f64> {
        self.row(id).to_vec()
    }

    /// Borrow the embedding row of a token id without copying — the
    /// inference path feeds this straight into the token LSTM.
    ///
    /// # Panics
    ///
    /// Panics if `id >= vocab`.
    pub fn row(&self, id: usize) -> &[f64] {
        assert!(id < self.vocab, "token id {id} out of range {}", self.vocab);
        &self.table.value[id * self.dim..(id + 1) * self.dim]
    }

    /// Accumulate the gradient for a looked-up token.
    pub fn backward(&mut self, id: usize, grad: &[f64]) {
        let row = &mut self.table.grad[id * self.dim..(id + 1) * self.dim];
        add_assign(row, grad);
    }

    /// Mutable references to the trainable parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.table]
    }

    /// Shared references to the trainable parameters.
    pub fn params(&self) -> Vec<&Param> {
        vec![&self.table]
    }
}

/// A fully connected layer `y = W x + b`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    /// Weights, `out x in` row-major.
    pub w: Param,
    /// Bias, `out` elements.
    pub b: Param,
    input: usize,
    output: usize,
}

impl Linear {
    /// A freshly initialized layer.
    pub fn new<R: Rng>(input: usize, output: usize, rng: &mut R) -> Linear {
        let scale = (1.0 / input as f64).sqrt();
        Linear {
            w: Param::uniform(output * input, scale, rng),
            b: Param::zeros(output),
            input,
            output,
        }
    }

    /// Forward pass.
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.output];
        self.forward_into(x, &mut y);
        y
    }

    /// Forward pass into a caller-provided output buffer (the
    /// allocation-free inference path).
    pub fn forward_into(&self, x: &[f64], y: &mut [f64]) {
        matvec(&self.w.value, self.output, self.input, x, y);
        add_assign(y, &self.b.value);
    }

    /// Input dimensionality.
    pub fn input(&self) -> usize {
        self.input
    }

    /// Output dimensionality.
    pub fn output(&self) -> usize {
        self.output
    }

    /// Accumulate gradients for output-gradient `dy` at input `x`,
    /// returning the gradient w.r.t. `x`.
    pub fn backward(&mut self, x: &[f64], dy: &[f64]) -> Vec<f64> {
        outer_acc(&mut self.w.grad, dy, x);
        add_assign(&mut self.b.grad, dy);
        let mut dx = vec![0.0; self.input];
        matvec_transpose_acc(&self.w.value, self.output, self.input, dy, &mut dx);
        dx
    }

    /// Mutable references to the trainable parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.b]
    }

    /// Shared references to the trainable parameters.
    pub fn params(&self) -> Vec<&Param> {
        vec![&self.w, &self.b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_gradcheck() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut layer = Linear::new(4, 2, &mut rng);
        let x: Vec<f64> = (0..4).map(|i| (i as f64 + 1.0) * 0.3).collect();
        let loss = |l: &Linear| l.forward(&x).iter().sum::<f64>();
        let dy = vec![1.0, 1.0];
        let dx = layer.backward(&x, &dy);

        let eps = 1e-6;
        for idx in 0..8 {
            let analytic = layer.w.grad[idx];
            let orig = layer.w.value[idx];
            layer.w.value[idx] = orig + eps;
            let plus = loss(&layer);
            layer.w.value[idx] = orig - eps;
            let minus = loss(&layer);
            layer.w.value[idx] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            assert!((analytic - numeric).abs() < 1e-6, "w[{idx}]");
        }
        // dx check.
        let mut x2 = x.clone();
        x2[1] += eps;
        let plus = layer.forward(&x2).iter().sum::<f64>();
        x2[1] -= 2.0 * eps;
        let minus = layer.forward(&x2).iter().sum::<f64>();
        let numeric = (plus - minus) / (2.0 * eps);
        assert!((dx[1] - numeric).abs() < 1e-6);
    }

    #[test]
    fn embedding_lookup_and_grad() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut emb = Embedding::new(10, 3, &mut rng);
        let v = emb.lookup(7);
        assert_eq!(v.len(), 3);
        emb.backward(7, &[1.0, 2.0, 3.0]);
        emb.backward(7, &[1.0, 0.0, 0.0]);
        assert_eq!(&emb.table.grad[21..24], &[2.0, 2.0, 3.0]);
        // Other rows untouched.
        assert!(emb.table.grad[..21].iter().all(|g| *g == 0.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn embedding_rejects_bad_id() {
        let mut rng = StdRng::seed_from_u64(5);
        let emb = Embedding::new(4, 2, &mut rng);
        let _ = emb.lookup(4);
    }
}
