//! Prepacked weight layouts for the `avx2-v1` kernel variant.
//!
//! The packed forward replaces the per-token `Wx · embed[id]` matvec
//! (the dominant cost of the token recurrence) with a table lookup:
//! at pack time every vocabulary id gets a precomputed gate
//! pre-activation row `table[id] = b_tok + Wx_tok · embed[id]`, so a
//! token step only has to stage that row into the lane panel and
//! accumulate the recurrent `Wh_tok · h` term.
//!
//! Activations live in *lane-interleaved panels*: a buffer of logical
//! shape `rows x lp` stores element `(r, lane)` at `r * lp + lane`,
//! where `lp` is the batch width rounded up to a multiple of 4 (one
//! AVX2 f64 vector per *lane group*). Weights stay row-major and are
//! broadcast, so every lane's accumulation is one FMA chain in
//! ascending column order — the foundation of the variant's bitwise
//! batch-size invariance (see [`crate::simd`]). A single-block
//! prediction is just the same forward with one active lane.
//!
//! The pack is cached per weight epoch in [`PackCache`] — an
//! interior-mutability cell invalidated by
//! [`crate::HierarchicalRegressor::params_mut`], the only gate through
//! which weights change.

use std::sync::OnceLock;

use crate::layers::Embedding;
use crate::lstm::Lstm;
use crate::ops;

/// Upper bound on the packed token table, in bytes. `Vocab::standard`
/// needs well under 1 MiB; a model whose vocabulary would blow this cap
/// simply runs unpacked (scalar fallback), trading speed for memory.
const MAX_TABLE_BYTES: usize = 8 * 1024 * 1024;

/// Weight data precomputed once per weight epoch for the packed
/// forward.
#[derive(Debug)]
pub(crate) struct PackedModel {
    /// `vocab x row_len`, row `id` = `b_tok + Wx_tok · embed[id]`.
    pub(crate) tok_table: Vec<f64>,
    /// Gate row width: `4 * hidden`.
    pub(crate) row_len: usize,
    /// Hidden width of both LSTM levels.
    pub(crate) hidden: usize,
}

/// Build the packed representation, or `None` when the token table
/// would exceed [`MAX_TABLE_BYTES`].
///
/// Uses the scalar [`ops::matvec`] kernel, so packing is deterministic
/// and target-independent; the staged values reach the gate math
/// bitwise however the table was produced.
fn pack(embedding: &Embedding, token_lstm: &Lstm) -> Option<PackedModel> {
    let hidden = token_lstm.hidden();
    let row_len = 4 * hidden;
    let vocab = embedding.vocab();
    if vocab * row_len * std::mem::size_of::<f64>() > MAX_TABLE_BYTES {
        return None;
    }
    let mut tok_table = vec![0.0; vocab * row_len];
    for id in 0..vocab {
        let row = &mut tok_table[id * row_len..(id + 1) * row_len];
        ops::matvec(&token_lstm.wx.value, row_len, embedding.dim(), embedding.row(id), row);
        ops::add_assign(row, &token_lstm.b.value);
    }
    Some(PackedModel { tok_table, row_len, hidden })
}

/// Lazily packed weights, cached until the next weight mutation.
///
/// Serde skips this field (a deserialized model repacks on first use)
/// and `Clone` produces an *empty* cache for the same reason: the cache
/// is pure acceleration state, never identity.
#[derive(Debug, Default)]
pub(crate) struct PackCache(OnceLock<Option<PackedModel>>);

impl Clone for PackCache {
    fn clone(&self) -> Self {
        PackCache::default()
    }
}

impl PackCache {
    /// The packed model for the current weights, packing on first use.
    /// `None` means the model declined to pack (table cap); callers
    /// fall back to the scalar path.
    pub(crate) fn get_or_pack(
        &self,
        embedding: &Embedding,
        token_lstm: &Lstm,
    ) -> Option<&PackedModel> {
        self.0.get_or_init(|| pack(embedding, token_lstm)).as_ref()
    }

    /// Drop any cached pack; the next prediction repacks from the
    /// then-current weights.
    pub(crate) fn invalidate(&mut self) {
        self.0 = OnceLock::new();
    }
}

/// Reusable lane-panel buffers for the packed forward; embedded in
/// [`crate::InferScratch`] and [`crate::BatchScratch`]. All buffers
/// grow to the largest `(hidden, batch)` seen and are then reused, so
/// the packed path is heap-silent in steady state.
#[derive(Debug, Default, Clone)]
pub(crate) struct PackedScratch {
    /// Slot → original block index, sorted for prefix-active lanes.
    order: Vec<usize>,
    /// Per-group 4-bit lane-active masks for the current kernel call.
    masks: Vec<u8>,
    /// Gate pre-activation panel, `4*hidden x lp`.
    zt: Vec<f64>,
    /// Token-level hidden/cell panels, `hidden x lp`.
    tok_h: Vec<f64>,
    tok_c: Vec<f64>,
    /// Instruction-level hidden/cell panels, `hidden x lp`.
    ins_h: Vec<f64>,
    ins_c: Vec<f64>,
    /// One lane's block embedding, gathered contiguous for the head.
    head_in: Vec<f64>,
    /// Head output buffer (width 1).
    out: Vec<f64>,
}

/// Accumulate `zt += W · xt` over every lane group with at least one
/// active lane, pairing adjacent active groups for the wide tile.
#[cfg(target_arch = "x86_64")]
fn run_wmat(
    w: &[f64],
    rows: usize,
    cols: usize,
    xt: &[f64],
    lp: usize,
    zt: &mut [f64],
    masks: &[u8],
) {
    // Safety: only reached from `forward_packed`, which the regressor
    // enters exclusively for the AVX2 kernel variant — handed out only
    // after runtime AVX2+FMA detection.
    let mut g = 0;
    while g < masks.len() {
        if masks[g] == 0 {
            g += 1;
        } else if g + 1 < masks.len() && masks[g + 1] != 0 {
            unsafe { crate::simd::wmat_acc_g2(w, rows, cols, xt, lp, zt, g) };
            g += 2;
        } else {
            unsafe { crate::simd::wmat_acc_g1(w, rows, cols, xt, lp, zt, g) };
            g += 1;
        }
    }
}

/// The packed batched forward: predict every block of `blocks`,
/// writing block `b`'s cost to `outs[b]`.
///
/// Blocks are assigned to panel lanes sorted by descending
/// (instruction count, token count), so at every instruction index the
/// active lanes are a prefix of the slots and partial activity is
/// confined to the last lane group. Masked gate stores keep inactive
/// lanes' state untouched; whatever the arithmetic computes for them
/// is finite garbage that is never observed. Per lane the computation
/// — and therefore the prediction — is independent of the batch
/// width, the lane assignment, and the other blocks (bitwise).
///
/// Panics mirror the scalar path: empty block, empty instruction,
/// out-of-vocabulary token id, output width mismatch.
#[cfg(target_arch = "x86_64")]
pub(crate) fn forward_packed(
    packed: &PackedModel,
    token_lstm: &Lstm,
    instr_lstm: &Lstm,
    head: &crate::layers::Linear,
    blocks: &[crate::TokenizedBlock],
    scratch: &mut PackedScratch,
    outs: &mut [f64],
) {
    assert_eq!(outs.len(), blocks.len(), "output slice width mismatch");
    let n = blocks.len();
    if n == 0 {
        return;
    }
    let h = packed.hidden;
    let row_len = packed.row_len;
    let vocab = packed.tok_table.len() / row_len;
    for block in blocks {
        assert!(!block.is_empty(), "cannot predict an empty block");
        for tokens in block {
            assert!(!tokens.is_empty(), "instruction with no tokens");
            for &id in tokens {
                assert!(id < vocab, "token id {id} out of range {vocab}");
            }
        }
    }

    let lp = n.div_ceil(4) * 4;
    scratch.order.clear();
    scratch.order.extend(0..n);
    scratch.order.sort_unstable_by(|&a, &b| {
        blocks[b]
            .len()
            .cmp(&blocks[a].len())
            .then_with(|| {
                let ta: usize = blocks[a].iter().map(Vec::len).sum();
                let tb: usize = blocks[b].iter().map(Vec::len).sum();
                tb.cmp(&ta)
            })
            .then(a.cmp(&b))
    });
    scratch.masks.clear();
    scratch.masks.resize(lp / 4, 0);
    scratch.zt.clear();
    scratch.zt.resize(4 * h * lp, 0.0);
    scratch.tok_h.clear();
    scratch.tok_h.resize(h * lp, 0.0);
    scratch.tok_c.clear();
    scratch.tok_c.resize(h * lp, 0.0);
    scratch.ins_h.clear();
    scratch.ins_h.resize(h * lp, 0.0);
    scratch.ins_c.clear();
    scratch.ins_c.resize(h * lp, 0.0);

    let max_instrs = blocks[scratch.order[0]].len();
    let mut n_j = n;
    for j in 0..max_instrs {
        // Sorted descending by instruction count, so the lanes still
        // holding an instruction shrink to a prefix.
        while n_j > 0 && blocks[scratch.order[n_j - 1]].len() <= j {
            n_j -= 1;
        }
        let groups_j = n_j.div_ceil(4);
        // Fresh token sequences for every lane of the active groups —
        // lanes past the prefix are dead for the rest of the forward,
        // so whole-group zeroing is safe.
        for k in 0..h {
            scratch.tok_h[k * lp..k * lp + groups_j * 4].fill(0.0);
            scratch.tok_c[k * lp..k * lp + groups_j * 4].fill(0.0);
        }
        let max_tokens = (0..n_j).map(|s| blocks[scratch.order[s]][j].len()).max().unwrap_or(0);
        for t in 0..max_tokens {
            // Stage z = b + Wx·embed (the packed table row) for every
            // lane with a token at position t. Lanes whose sequence
            // already ended keep stale z — finite, and their state is
            // never stored back.
            for g in 0..groups_j {
                let mut ids = [0usize; 4];
                let mut mask = 0u8;
                for (l, slot_id) in ids.iter_mut().enumerate() {
                    let s = g * 4 + l;
                    if s < n_j {
                        if let Some(&id) = blocks[scratch.order[s]][j].get(t) {
                            *slot_id = id;
                            mask |= 1 << l;
                        }
                    }
                }
                scratch.masks[g] = mask;
                if mask != 0 {
                    // Safety: AVX2 verified at kernel resolution.
                    unsafe {
                        crate::simd::stage_rows_group(
                            &packed.tok_table,
                            row_len,
                            ids,
                            &mut scratch.zt,
                            lp,
                            g,
                            mask,
                        )
                    };
                }
            }
            run_wmat(
                &token_lstm.wh.value,
                4 * h,
                h,
                &scratch.tok_h,
                lp,
                &mut scratch.zt,
                &scratch.masks[..groups_j],
            );
            for g in 0..groups_j {
                if scratch.masks[g] != 0 {
                    // Safety: AVX2 verified at kernel resolution.
                    unsafe {
                        crate::simd::gates_group(
                            &scratch.zt,
                            h,
                            lp,
                            &mut scratch.tok_c,
                            &mut scratch.tok_h,
                            g,
                            scratch.masks[g],
                        )
                    };
                }
            }
        }
        // Instruction-level step for the active prefix: the token
        // LSTM's final hidden state is already the panel `tok_h`.
        for g in 0..groups_j {
            scratch.masks[g] = if (g + 1) * 4 <= n_j { 0b1111 } else { (1 << (n_j - g * 4)) - 1 };
        }
        // Safety: AVX2 verified at kernel resolution.
        unsafe { crate::simd::broadcast_rows(&instr_lstm.b.value, &mut scratch.zt, lp, groups_j) };
        run_wmat(
            &instr_lstm.wx.value,
            4 * h,
            h,
            &scratch.tok_h,
            lp,
            &mut scratch.zt,
            &scratch.masks[..groups_j],
        );
        run_wmat(
            &instr_lstm.wh.value,
            4 * h,
            h,
            &scratch.ins_h,
            lp,
            &mut scratch.zt,
            &scratch.masks[..groups_j],
        );
        for g in 0..groups_j {
            // Safety: AVX2 verified at kernel resolution.
            unsafe {
                crate::simd::gates_group(
                    &scratch.zt,
                    h,
                    lp,
                    &mut scratch.ins_c,
                    &mut scratch.ins_h,
                    g,
                    scratch.masks[g],
                )
            };
        }
    }

    scratch.head_in.clear();
    scratch.head_in.resize(h, 0.0);
    scratch.out.clear();
    scratch.out.resize(head.output(), 0.0);
    for (s, &b) in scratch.order.iter().enumerate() {
        for k in 0..h {
            scratch.head_in[k] = scratch.ins_h[k * lp + s];
        }
        head.forward_into(&scratch.head_in, &mut scratch.out);
        outs[b] = scratch.out[0];
    }
}
