//! The hierarchical token → instruction → block LSTM regressor — the
//! architecture of the Ithemal cost model (paper §H.2):
//!
//! 1. token embeddings are combined per instruction by a token-level
//!    LSTM into instruction embeddings;
//! 2. an instruction-level LSTM combines those into a block embedding;
//! 3. a linear head regresses the block embedding to a throughput.

use std::cell::RefCell;

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::kernel::{self, Kernel, KernelKind};
use crate::layers::{Embedding, Linear};
use crate::lstm::{Lstm, LstmCache, LstmScratch};
use crate::packed::{PackCache, PackedScratch};
use crate::param::{adam_step_all, AdamConfig, Param};

/// A basic block tokenized for the model: one token-id sequence per
/// instruction.
pub type TokenizedBlock = Vec<Vec<usize>>;

/// Regression loss used for training.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Loss {
    /// Plain mean squared error on raw targets.
    #[default]
    Squared,
    /// Squared *relative* error `((pred - t) / max(t, 1))²` —
    /// appropriate when targets span orders of magnitude and the
    /// evaluation metric is percentage error (MAPE), as for basic-block
    /// throughputs.
    Relative,
}

/// The hierarchical multiscale RNN regressor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HierarchicalRegressor {
    embedding: Embedding,
    token_lstm: Lstm,
    instr_lstm: Lstm,
    head: Linear,
    /// Per-weight-epoch packed layout for the AVX2 kernel; pure
    /// acceleration state (skipped by serde, emptied by `Clone`),
    /// invalidated by [`params_mut`](HierarchicalRegressor::params_mut).
    #[serde(skip)]
    pack: PackCache,
}

struct ForwardCaches {
    token_embeds: Vec<Vec<Vec<f64>>>,
    token_caches: Vec<LstmCache>,
    instr_inputs: Vec<Vec<f64>>,
    instr_cache: LstmCache,
    block_hidden: Vec<f64>,
    prediction: f64,
}

/// Reusable buffers for allocation-free prediction
/// ([`HierarchicalRegressor::predict_with`]).
///
/// The explainer issues up to 25 000 predictions per explanation; the
/// training-style forward pass allocates caches for every one of them
/// even though inference discards everything but the final scalar.
/// This scratch holds the only state inference needs — one LSTM
/// scratch per level and the head's output — so a warmed-up scratch
/// makes prediction heap-silent.
#[derive(Debug, Default, Clone)]
pub struct InferScratch {
    token: LstmScratch,
    instr: LstmScratch,
    output: Vec<f64>,
    packed: PackedScratch,
}

impl InferScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> InferScratch {
        InferScratch::default()
    }
}

/// Reusable buffers for allocation-free *batched* prediction
/// ([`HierarchicalRegressor::predict_batch_with`]).
///
/// One scratch serves any number of batches of any size; buffers grow
/// to the largest batch seen and are then reused, so steady-state
/// batched prediction is heap-silent like the scalar path.
#[derive(Debug, Default, Clone)]
pub struct BatchScratch {
    /// Scalar-path buffers: under the scalar kernel the batch runs
    /// block by block (the lane-staged scalar path never beat it; see
    /// `crates/comet-nn/src/kernel.rs`).
    infer: InferScratch,
    /// Lane-panel buffers for the packed AVX2 forward.
    packed: PackedScratch,
}

impl BatchScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> BatchScratch {
        BatchScratch::default()
    }
}

thread_local! {
    /// Shared inference scratch behind [`HierarchicalRegressor::predict`]:
    /// per-thread so the regressor stays `Sync` with an unchanged API.
    static INFER_SCRATCH: RefCell<InferScratch> = RefCell::new(InferScratch::new());

    /// Shared batch scratch behind
    /// [`HierarchicalRegressor::predict_batch`], per-thread for the
    /// same reason.
    static BATCH_SCRATCH: RefCell<BatchScratch> = RefCell::new(BatchScratch::new());
}

impl HierarchicalRegressor {
    /// A freshly initialized model.
    pub fn new<R: Rng>(vocab: usize, embed_dim: usize, hidden: usize, rng: &mut R) -> Self {
        HierarchicalRegressor {
            embedding: Embedding::new(vocab, embed_dim, rng),
            token_lstm: Lstm::new(embed_dim, hidden, rng),
            instr_lstm: Lstm::new(hidden, hidden, rng),
            head: Linear::new(hidden, 1, rng),
            pack: PackCache::default(),
        }
    }

    /// Vocabulary size the model was built for.
    pub fn vocab(&self) -> usize {
        self.embedding.vocab()
    }

    fn forward(&self, block: &TokenizedBlock) -> ForwardCaches {
        assert!(!block.is_empty(), "cannot predict an empty block");
        let mut token_embeds = Vec::with_capacity(block.len());
        let mut token_caches = Vec::with_capacity(block.len());
        let mut instr_inputs = Vec::with_capacity(block.len());
        for tokens in block {
            assert!(!tokens.is_empty(), "instruction with no tokens");
            let embeds: Vec<Vec<f64>> =
                tokens.iter().map(|&id| self.embedding.lookup(id)).collect();
            let cache = self.token_lstm.forward(&embeds);
            instr_inputs.push(cache.final_hidden().to_vec());
            token_embeds.push(embeds);
            token_caches.push(cache);
        }
        let instr_cache = self.instr_lstm.forward(&instr_inputs);
        let block_hidden = instr_cache.final_hidden().to_vec();
        let prediction = self.head.forward(&block_hidden)[0];
        ForwardCaches {
            token_embeds,
            token_caches,
            instr_inputs,
            instr_cache,
            block_hidden,
            prediction,
        }
    }

    /// Predict the cost of a tokenized block.
    ///
    /// Runs the allocation-free inference path against a per-thread
    /// [`InferScratch`], so steady-state predictions touch the heap
    /// not at all. Dispatches through the process-wide
    /// [`kernel::active`] variant; under `scalar-v1` the result is
    /// bitwise identical to the training forward pass, under `avx2-v1`
    /// it agrees within the tested ULP bound (see [`crate::kernel`]).
    ///
    /// # Panics
    ///
    /// Panics on an empty block, an empty instruction, or an
    /// out-of-vocabulary token id.
    pub fn predict(&self, block: &TokenizedBlock) -> f64 {
        INFER_SCRATCH.with(|cell| self.predict_with(block, &mut cell.borrow_mut()))
    }

    /// Predict using caller-provided scratch buffers, dispatching
    /// through the process-wide [`kernel::active`] variant.
    ///
    /// # Panics
    ///
    /// Panics on an empty block, an empty instruction, or an
    /// out-of-vocabulary token id.
    pub fn predict_with(&self, block: &TokenizedBlock, scratch: &mut InferScratch) -> f64 {
        self.predict_with_kernel(block, scratch, kernel::active())
    }

    /// Predict with an explicitly chosen kernel variant, bypassing the
    /// process-global dispatch — the hook tests use to compare variants
    /// side by side in one process.
    ///
    /// Under [`KernelKind::Scalar`] this is the interleaved two-level
    /// scalar recurrence, bitwise identical to the training forward
    /// pass. Under [`KernelKind::Avx2`] it is the packed lane forward
    /// with a single active lane — the *same* kernel the batched path
    /// runs, which is what makes the variant's predictions bitwise
    /// batch-size-invariant.
    ///
    /// # Panics
    ///
    /// Panics on an empty block, an empty instruction, or an
    /// out-of-vocabulary token id.
    pub fn predict_with_kernel(
        &self,
        block: &TokenizedBlock,
        scratch: &mut InferScratch,
        kernel: &Kernel,
    ) -> f64 {
        match kernel.kind {
            KernelKind::Scalar => self.predict_scalar_with(block, scratch),
            KernelKind::Avx2 => {
                #[cfg(target_arch = "x86_64")]
                if let Some(packed) = self.pack.get_or_pack(&self.embedding, &self.token_lstm) {
                    let mut out = [0.0];
                    crate::packed::forward_packed(
                        packed,
                        &self.token_lstm,
                        &self.instr_lstm,
                        &self.head,
                        std::slice::from_ref(block),
                        &mut scratch.packed,
                        &mut out,
                    );
                    return out[0];
                }
                self.predict_scalar_with(block, scratch)
            }
        }
    }

    /// The interleaved scalar inference recurrence: as soon as an
    /// instruction's token LSTM finishes, its final hidden state is fed
    /// to the instruction LSTM and discarded. Every arithmetic kernel
    /// is the one the training pass uses, so the prediction is bitwise
    /// identical to [`forward`]'s.
    fn predict_scalar_with(&self, block: &TokenizedBlock, scratch: &mut InferScratch) -> f64 {
        assert!(!block.is_empty(), "cannot predict an empty block");
        self.instr_lstm.begin(&mut scratch.instr);
        for tokens in block {
            assert!(!tokens.is_empty(), "instruction with no tokens");
            self.token_lstm.begin(&mut scratch.token);
            for &id in tokens {
                self.token_lstm.step(self.embedding.row(id), &mut scratch.token);
            }
            self.instr_lstm.step(scratch.token.hidden_state(), &mut scratch.instr);
        }
        scratch.output.clear();
        scratch.output.resize(self.head.output(), 0.0);
        self.head.forward_into(scratch.instr.hidden_state(), &mut scratch.output);
        scratch.output[0]
    }

    /// Predict the costs of a batch of tokenized blocks, one output per
    /// block, bitwise identical to calling
    /// [`predict`](HierarchicalRegressor::predict) on each.
    ///
    /// Runs the batched inference path against a per-thread
    /// [`BatchScratch`]; see
    /// [`predict_batch_with`](HierarchicalRegressor::predict_batch_with).
    ///
    /// # Panics
    ///
    /// Panics on an empty block, an empty instruction, or an
    /// out-of-vocabulary token id.
    pub fn predict_batch(&self, blocks: &[TokenizedBlock]) -> Vec<f64> {
        let mut outs = vec![0.0; blocks.len()];
        BATCH_SCRATCH
            .with(|cell| self.predict_batch_with(blocks, &mut cell.borrow_mut(), &mut outs));
        outs
    }

    /// Predict a batch using caller-provided scratch buffers, writing
    /// block `b`'s cost to `outs[b]`; dispatches through the
    /// process-wide [`kernel::active`] variant.
    ///
    /// # Panics
    ///
    /// Panics if `outs.len() != blocks.len()`, on an empty block, an
    /// empty instruction, or an out-of-vocabulary token id.
    pub fn predict_batch_with(
        &self,
        blocks: &[TokenizedBlock],
        scratch: &mut BatchScratch,
        outs: &mut [f64],
    ) {
        self.predict_batch_with_kernel(blocks, scratch, outs, kernel::active());
    }

    /// Predict a batch with an explicitly chosen kernel variant.
    ///
    /// Under [`KernelKind::Avx2`] the blocks run as side-by-side lanes
    /// of the packed panel forward (see `crates/comet-nn/src/packed.rs`)
    /// — each weight row traversed once per step for up to four blocks
    /// per vector. Under [`KernelKind::Scalar`] the batch runs block by
    /// block through the scalar recurrence: the lane-staged scalar path
    /// this replaced was *slower* per block than B=1 (BENCH_explain.json
    /// b8/b32 vs b1), so degrading to the scalar path is exactly the
    /// adaptive fallback — batching can never lose. Either way every
    /// output is bitwise identical to the same-variant single-block
    /// prediction, whatever the batch width.
    ///
    /// # Panics
    ///
    /// Panics if `outs.len() != blocks.len()`, on an empty block, an
    /// empty instruction, or an out-of-vocabulary token id.
    pub fn predict_batch_with_kernel(
        &self,
        blocks: &[TokenizedBlock],
        scratch: &mut BatchScratch,
        outs: &mut [f64],
        kernel: &Kernel,
    ) {
        assert_eq!(outs.len(), blocks.len(), "output slice width mismatch");
        if blocks.is_empty() {
            return;
        }
        if kernel.kind == KernelKind::Avx2 {
            #[cfg(target_arch = "x86_64")]
            if let Some(packed) = self.pack.get_or_pack(&self.embedding, &self.token_lstm) {
                crate::packed::forward_packed(
                    packed,
                    &self.token_lstm,
                    &self.instr_lstm,
                    &self.head,
                    blocks,
                    &mut scratch.packed,
                    outs,
                );
                return;
            }
        }
        for (block, out) in blocks.iter().zip(outs.iter_mut()) {
            *out = self.predict_scalar_with(block, &mut scratch.infer);
        }
    }

    /// One training example: forward, accumulate loss gradients scaled
    /// by `grad_scale` (use `1 / batch_size`), return the loss value.
    pub fn train_example(
        &mut self,
        block: &TokenizedBlock,
        target: f64,
        grad_scale: f64,
        loss: Loss,
    ) -> f64 {
        let caches = self.forward(block);
        let denom = match loss {
            Loss::Squared => 1.0,
            Loss::Relative => target.abs().max(1.0),
        };
        let err = (caches.prediction - target) / denom;
        let dy = vec![2.0 * err * grad_scale / denom];
        let d_block = self.head.backward(&caches.block_hidden, &dy);
        let d_instr_inputs = self.instr_lstm.backward(&caches.instr_cache, &d_block);
        debug_assert_eq!(d_instr_inputs.len(), caches.instr_inputs.len());
        for (i, d_input) in d_instr_inputs.iter().enumerate() {
            let d_embeds = self.token_lstm.backward(&caches.token_caches[i], d_input);
            for (t, d_embed) in d_embeds.iter().enumerate() {
                self.embedding.backward(block[i][t], d_embed);
            }
        }
        let _ = caches.token_embeds;
        err * err
    }

    /// Mutable references to all trainable parameters.
    ///
    /// This is the only gate through which weights change, so it also
    /// invalidates the packed-kernel cache: the next prediction repacks
    /// from the new weights.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.pack.invalidate();
        let mut params = self.embedding.params_mut();
        params.extend(self.token_lstm.params_mut());
        params.extend(self.instr_lstm.params_mut());
        params.extend(self.head.params_mut());
        params
    }

    /// Shared references to all trainable parameters, in the same
    /// order as [`params_mut`](HierarchicalRegressor::params_mut).
    pub fn params(&self) -> Vec<&Param> {
        let mut params = self.embedding.params();
        params.extend(self.token_lstm.params());
        params.extend(self.instr_lstm.params());
        params.extend(self.head.params());
        params
    }

    /// 64-bit FNV-1a fingerprint of every weight's IEEE-754 bit
    /// pattern, in parameter order. Equal fingerprints mean
    /// bitwise-equal weights and therefore bitwise-equal predictions —
    /// the identity the model registry stores with each snapshot so a
    /// recovered model can be proven to be the one that was saved.
    pub fn weights_fingerprint(&self) -> u64 {
        self.params().iter().fold(0xcbf2_9ce4_8422_2325u64, |hash, p| p.fold_fnv(hash))
    }
}

/// Mini-batch Adam trainer for [`HierarchicalRegressor`].
#[derive(Debug, Clone)]
pub struct Trainer {
    /// Optimizer configuration.
    pub config: AdamConfig,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Number of passes over the data.
    pub epochs: usize,
    /// Regression loss.
    pub loss: Loss,
    step: u64,
}

impl Trainer {
    /// A trainer with the given schedule.
    pub fn new(config: AdamConfig, batch_size: usize, epochs: usize) -> Trainer {
        Trainer { config, batch_size, epochs, loss: Loss::Squared, step: 0 }
    }

    /// Use a different regression loss.
    pub fn with_loss(mut self, loss: Loss) -> Trainer {
        self.loss = loss;
        self
    }

    /// Fit the model, returning the mean squared error per epoch.
    pub fn fit<R: Rng>(
        &mut self,
        model: &mut HierarchicalRegressor,
        data: &[(TokenizedBlock, f64)],
        rng: &mut R,
    ) -> Vec<f64> {
        assert!(!data.is_empty(), "training set must be non-empty");
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut epoch_losses = Vec::with_capacity(self.epochs);
        for _ in 0..self.epochs {
            order.shuffle(rng);
            let mut total = 0.0;
            for chunk in order.chunks(self.batch_size) {
                let scale = 1.0 / chunk.len() as f64;
                for &idx in chunk {
                    let (block, target) = &data[idx];
                    total += model.train_example(block, *target, scale, self.loss);
                }
                self.step += 1;
                adam_step_all(&mut model.params_mut(), self.config, self.step);
            }
            epoch_losses.push(total / data.len() as f64);
        }
        epoch_losses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Synthetic task: cost = 1 + number of "expensive" tokens (id 1).
    fn synthetic_data(rng: &mut StdRng, n: usize) -> Vec<(TokenizedBlock, f64)> {
        (0..n)
            .map(|_| {
                let insts = rng.gen_range(1..6);
                let mut block = Vec::new();
                let mut cost = 1.0;
                for _ in 0..insts {
                    let expensive = rng.gen_bool(0.3);
                    if expensive {
                        cost += 3.0;
                    }
                    block.push(vec![if expensive { 1 } else { 0 }, rng.gen_range(2..8)]);
                }
                (block, cost)
            })
            .collect()
    }

    #[test]
    fn learns_a_synthetic_cost_function() {
        let mut rng = StdRng::seed_from_u64(11);
        let data = synthetic_data(&mut rng, 300);
        let mut model = HierarchicalRegressor::new(8, 8, 16, &mut rng);
        let mut trainer = Trainer::new(AdamConfig { lr: 5e-3, ..AdamConfig::default() }, 16, 30);
        let losses = trainer.fit(&mut model, &data, &mut rng);
        let first = losses[0];
        let last = *losses.last().unwrap();
        assert!(last < first * 0.2, "loss did not drop: {first} -> {last}");
        // Spot-check generalization on fresh samples.
        let test = synthetic_data(&mut rng, 50);
        let mse: f64 = test
            .iter()
            .map(|(b, t)| {
                let p = model.predict(b);
                (p - t) * (p - t)
            })
            .sum::<f64>()
            / test.len() as f64;
        assert!(mse < 1.5, "test MSE too high: {mse}");
    }

    /// The scalar-variant inference path and the training forward pass
    /// must produce bitwise-identical predictions. (The AVX2 variant is
    /// only ULP-close to training; its agreement is tested in
    /// `tests/kernels.rs`.)
    #[test]
    fn inference_path_matches_training_forward_bitwise() {
        let mut rng = StdRng::seed_from_u64(23);
        let model = HierarchicalRegressor::new(16, 6, 10, &mut rng);
        let blocks =
            [vec![vec![0, 1]], vec![vec![2, 3, 4], vec![5], vec![6, 7, 8, 9]], vec![vec![15]; 7]];
        let mut scratch = InferScratch::new();
        for block in &blocks {
            let training = model.forward(block).prediction;
            assert_eq!(model.predict_with_kernel(block, &mut scratch, kernel::scalar()), training);
        }
    }

    /// Batched prediction must equal the scalar path bit for bit for
    /// every block, at several batch sizes, with blocks of staggered
    /// instruction counts and token lengths (so lanes drop in and out
    /// of the lock-step loops).
    #[test]
    fn batched_prediction_matches_scalar_bitwise() {
        let mut rng = StdRng::seed_from_u64(31);
        let model = HierarchicalRegressor::new(16, 6, 10, &mut rng);
        let blocks: Vec<TokenizedBlock> = (0..9)
            .map(|b| {
                (0..1 + b % 4)
                    .map(|j| (0..1 + (b + j) % 5).map(|t| (b * 7 + j * 3 + t) % 16).collect())
                    .collect()
            })
            .collect();
        let scalar: Vec<f64> = blocks.iter().map(|b| model.predict(b)).collect();
        let mut scratch = BatchScratch::new();
        for batch_size in [1, 3, 9] {
            for (chunk, expect) in blocks.chunks(batch_size).zip(scalar.chunks(batch_size)) {
                let mut outs = vec![0.0; chunk.len()];
                model.predict_batch_with(chunk, &mut scratch, &mut outs);
                assert_eq!(outs, expect, "batch size {batch_size}");
            }
            assert_eq!(model.predict_batch(&blocks), scalar, "thread-local path");
        }
    }

    #[test]
    fn prediction_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = HierarchicalRegressor::new(8, 4, 8, &mut rng);
        let block = vec![vec![0, 1], vec![2, 3, 4]];
        assert_eq!(model.predict(&block), model.predict(&block));
    }

    #[test]
    #[should_panic(expected = "empty block")]
    fn empty_block_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = HierarchicalRegressor::new(8, 4, 8, &mut rng);
        let _ = model.predict(&vec![]);
    }

    #[test]
    fn longer_blocks_change_prediction() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = HierarchicalRegressor::new(8, 4, 8, &mut rng);
        let short = vec![vec![0, 1]];
        let long = vec![vec![0, 1]; 6];
        assert_ne!(model.predict(&short), model.predict(&long));
    }

    /// The weights fingerprint is stable for a given model, ignores
    /// optimizer state, and moves when any single weight moves.
    #[test]
    fn weights_fingerprint_tracks_weight_identity() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut model = HierarchicalRegressor::new(8, 4, 8, &mut rng);
        let clone = model.clone();
        assert_eq!(model.weights_fingerprint(), clone.weights_fingerprint());
        assert_ne!(
            model.weights_fingerprint(),
            HierarchicalRegressor::new(8, 4, 8, &mut rng).weights_fingerprint(),
            "a differently initialized model must fingerprint differently"
        );
        // Gradient state is not part of the identity…
        model.params_mut()[0].grad[0] += 1.0;
        assert_eq!(model.weights_fingerprint(), clone.weights_fingerprint());
        // …but the smallest possible weight change is.
        let first = &mut model.params_mut()[0].value[0];
        *first = f64::from_bits(first.to_bits() ^ 1);
        assert_ne!(model.weights_fingerprint(), clone.weights_fingerprint());
    }
}
