//! Runtime-dispatched inference kernels.
//!
//! Every prediction runs through one of a small set of *kernel
//! variants*, resolved once per process and cached in a vtable:
//!
//! * `scalar-v1` — the portable kernels in [`crate::ops`], bit-exact
//!   with the training forward pass. Always available.
//! * `avx2-v1` — `std::arch` AVX2+FMA kernels (x86-64 only), selected
//!   when the CPU reports both features at runtime.
//!
//! # Determinism policy
//!
//! Each variant is *internally deterministic and batch-size-invariant*:
//! for a fixed variant, predicting a block returns bitwise-identical
//! results whatever the batch width or worker pool — the invariant the
//! golden tests of `comet-core/tests/batch_golden.rs` lean on. Across
//! variants, predictions differ by reassociated floating-point sums and
//! polynomial (rather than libm) transcendentals; the agreement is
//! bounded and tested (`crates/comet-nn/tests/kernels.rs`), not
//! bitwise. Artifacts that must not silently mix variants — golden
//! tests, evaluation journal fingerprints — are keyed by
//! [`Kernel::name`].
//!
//! # Resolution
//!
//! [`active`] resolves the variant on first use and never changes it
//! afterwards (predictions made by one process must agree with each
//! other). [`force_scalar`] and the `COMET_FORCE_SCALAR` environment
//! variable pin `scalar-v1` if called/read before the first
//! resolution; binaries expose this as `--force-scalar`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Signature of the [`Kernel::matvec`] entry.
pub type MatvecFn = fn(&[f64], usize, usize, &[f64], &mut [f64]);

/// Signature of the [`Kernel::matvec_lanes`] entry.
pub type MatvecLanesFn = fn(&[f64], usize, usize, &[f64], &mut [f64], &[usize]);

/// Which implementation family a [`Kernel`] belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// Portable scalar kernels ([`crate::ops`]).
    Scalar,
    /// AVX2+FMA `std::arch` kernels.
    Avx2,
}

/// A resolved kernel variant: an identity tag plus the function table
/// shared primitives dispatch through. The interesting dispatch — the
/// packed LSTM forward — happens at the prediction level (see
/// [`crate::HierarchicalRegressor::predict_with_kernel`]); the function
/// pointers here cover the primitives that tests and the linear head
/// exercise directly.
#[derive(Debug)]
pub struct Kernel {
    /// Stable variant tag (`"scalar-v1"`, `"avx2-v1"`): the key golden
    /// tests and journal fingerprints use.
    pub name: &'static str,
    /// Implementation family.
    pub kind: KernelKind,
    /// `y = W x` (row-major `rows x cols`). Bitwise identical across
    /// variants: the AVX2 implementation reproduces the scalar
    /// accumulation order exactly.
    pub matvec: MatvecFn,
    /// Lane-major batched `y_b = W x_b` over the named lanes; also
    /// bitwise identical across variants.
    pub matvec_lanes: MatvecLanesFn,
    /// In-place logistic sigmoid over a slice. Variant-specific
    /// rounding (libm vs polynomial); agreement is ULP-bounded.
    pub sigmoid_slice: fn(&mut [f64]),
    /// In-place tanh over a slice. Variant-specific rounding.
    pub tanh_slice: fn(&mut [f64]),
}

fn scalar_matvec(w: &[f64], rows: usize, cols: usize, x: &[f64], y: &mut [f64]) {
    crate::ops::matvec(w, rows, cols, x, y);
}

fn scalar_matvec_lanes(
    w: &[f64],
    rows: usize,
    cols: usize,
    xs: &[f64],
    ys: &mut [f64],
    lanes: &[usize],
) {
    crate::ops::matvec_lanes(w, rows, cols, xs, ys, lanes);
}

fn scalar_sigmoid_slice(xs: &mut [f64]) {
    for x in xs {
        *x = crate::ops::sigmoid(*x);
    }
}

fn scalar_tanh_slice(xs: &mut [f64]) {
    for x in xs {
        *x = x.tanh();
    }
}

static SCALAR: Kernel = Kernel {
    name: "scalar-v1",
    kind: KernelKind::Scalar,
    matvec: scalar_matvec,
    matvec_lanes: scalar_matvec_lanes,
    sigmoid_slice: scalar_sigmoid_slice,
    tanh_slice: scalar_tanh_slice,
};

#[cfg(target_arch = "x86_64")]
mod avx2_entries {
    use super::Kernel;
    use crate::simd;

    // Safety of every wrapper: the AVX2 kernel is only handed out by
    // `avx2()` / `resolve()` after `is_x86_feature_detected!` confirmed
    // AVX2+FMA on this CPU, so the target-feature functions are safe to
    // enter.
    fn matvec(w: &[f64], rows: usize, cols: usize, x: &[f64], y: &mut [f64]) {
        unsafe { simd::matvec(w, rows, cols, x, y) }
    }

    fn matvec_lanes(
        w: &[f64],
        rows: usize,
        cols: usize,
        xs: &[f64],
        ys: &mut [f64],
        lanes: &[usize],
    ) {
        unsafe { simd::matvec_lanes(w, rows, cols, xs, ys, lanes) }
    }

    fn sigmoid_slice(xs: &mut [f64]) {
        unsafe { simd::sigmoid_slice(xs) }
    }

    fn tanh_slice(xs: &mut [f64]) {
        unsafe { simd::tanh_slice(xs) }
    }

    pub(super) static AVX2: Kernel = Kernel {
        name: "avx2-v1",
        kind: super::KernelKind::Avx2,
        matvec,
        matvec_lanes,
        sigmoid_slice,
        tanh_slice,
    };
}

static ACTIVE: OnceLock<&'static Kernel> = OnceLock::new();
static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);

fn env_forces_scalar() -> bool {
    match std::env::var("COMET_FORCE_SCALAR") {
        Ok(value) => !matches!(value.as_str(), "" | "0" | "false" | "no"),
        Err(_) => false,
    }
}

fn resolve() -> &'static Kernel {
    if FORCE_SCALAR.load(Ordering::SeqCst) || env_forces_scalar() {
        return &SCALAR;
    }
    if let Some(kernel) = avx2() {
        return kernel;
    }
    &SCALAR
}

/// The kernel this process predicts with, resolved on first call and
/// fixed for the process lifetime.
pub fn active() -> &'static Kernel {
    ACTIVE.get_or_init(resolve)
}

/// Pin the scalar variant, overriding hardware detection.
///
/// Returns `true` if the pin is (or already was) effective. Returns
/// `false` when a non-scalar kernel has already been resolved — the
/// active kernel never changes mid-process, so call this during
/// startup, before the first prediction.
pub fn force_scalar() -> bool {
    FORCE_SCALAR.store(true, Ordering::SeqCst);
    ACTIVE.get_or_init(resolve).kind == KernelKind::Scalar
}

/// The scalar kernel, unconditionally available. Use with
/// [`crate::HierarchicalRegressor::predict_with_kernel`] to pin a
/// variant without touching process-global state.
pub fn scalar() -> &'static Kernel {
    &SCALAR
}

/// The AVX2 kernel, if this CPU supports AVX2 and FMA; `None`
/// otherwise (including on non-x86-64 targets).
pub fn avx2() -> Option<&'static Kernel> {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
            return Some(&avx2_entries::AVX2);
        }
    }
    None
}

/// Comma-separated list of the SIMD features this process detected —
/// reporting only (the bench-report machine header, /metrics); kernel
/// choice uses exactly AVX2+FMA.
pub fn cpu_features() -> String {
    #[cfg(target_arch = "x86_64")]
    {
        let mut features = Vec::new();
        for (name, present) in [
            ("sse2", is_x86_feature_detected!("sse2")),
            ("sse4.1", is_x86_feature_detected!("sse4.1")),
            ("avx", is_x86_feature_detected!("avx")),
            ("avx2", is_x86_feature_detected!("avx2")),
            ("fma", is_x86_feature_detected!("fma")),
            ("avx512f", is_x86_feature_detected!("avx512f")),
        ] {
            if present {
                features.push(name);
            }
        }
        features.join(",")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        String::from("none")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_kernel_is_always_available() {
        let kernel = scalar();
        assert_eq!(kernel.name, "scalar-v1");
        assert_eq!(kernel.kind, KernelKind::Scalar);
        let w = [1.0, 2.0, 3.0, 4.0];
        let x = [1.0, -1.0];
        let mut y = [0.0; 2];
        (kernel.matvec)(&w, 2, 2, &x, &mut y);
        assert_eq!(y, [-1.0, -1.0]);
    }

    #[test]
    fn active_kernel_is_stable() {
        assert!(std::ptr::eq(active(), active()));
    }

    #[test]
    fn avx2_accessor_matches_detection() {
        #[cfg(target_arch = "x86_64")]
        {
            let expect = is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma");
            assert_eq!(avx2().is_some(), expect);
            if let Some(kernel) = avx2() {
                assert_eq!(kernel.name, "avx2-v1");
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        assert!(avx2().is_none());
    }
}
