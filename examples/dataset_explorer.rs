//! Explore the synthetic BHive-style corpus: category/source
//! composition, throughput distributions, and dependency statistics —
//! the substrate every experiment is built on.
//!
//! ```text
//! cargo run --release --example dataset_explorer [num_blocks]
//! ```

use comet::bhive::{Category, Corpus, GenConfig, Source};
use comet::graph::{BlockGraph, DepKind};
use comet::isa::Microarch;

fn main() {
    let n: usize = std::env::args().nth(1).map_or(300, |s| s.parse().expect("numeric argument"));
    let corpus = Corpus::generate(n, GenConfig::default(), 2024);

    println!("corpus: {} unique blocks (4-10 instructions each)\n", corpus.len());

    println!("by category:");
    for category in Category::ALL {
        let blocks = corpus.by_category(category);
        if blocks.is_empty() {
            println!("  {category:<14} 0 blocks");
            continue;
        }
        let mean_hsw: f64 =
            blocks.iter().map(|b| b.throughput_hsw).sum::<f64>() / blocks.len() as f64;
        println!(
            "  {category:<14} {:>4} blocks, mean HSW throughput {mean_hsw:>6.2} cycles",
            blocks.len(),
        );
    }

    println!("\nby source:");
    for source in Source::ALL {
        println!("  {source:<14} {:>4} blocks", corpus.by_source(source).len());
    }

    let mut raw = 0usize;
    let mut war = 0usize;
    let mut waw = 0usize;
    for entry in &corpus {
        let graph = BlockGraph::build(&entry.block);
        raw += graph.edges_of_kind(DepKind::Raw).count();
        war += graph.edges_of_kind(DepKind::War).count();
        waw += graph.edges_of_kind(DepKind::Waw).count();
    }
    println!("\ndependency edges across the corpus: RAW {raw}, WAR {war}, WAW {waw}");

    let (mut hsw_faster, mut skl_faster) = (0usize, 0usize);
    for entry in &corpus {
        if entry.throughput(Microarch::Haswell) > entry.throughput(Microarch::Skylake) {
            skl_faster += 1;
        } else if entry.throughput(Microarch::Haswell) < entry.throughput(Microarch::Skylake) {
            hsw_faster += 1;
        }
    }
    println!("Skylake faster on {skl_faster} blocks, Haswell on {hsw_faster} (rest tied)");

    println!("\nsample block ({}):", corpus.blocks()[0].category);
    println!("{}", corpus.blocks()[0].block);
}
