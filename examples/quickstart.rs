//! Quickstart: explain the paper's motivating example (Listing 1).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use comet::isa::{parse_block, Microarch};
use comet::models::{CostModel, CrudeModel};
use comet::{ExplainConfig, Explainer};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The motivating example from the paper: `mov rdx, rcx` reads the
    // value `add rcx, rax` just produced — a RAW dependency that
    // serializes the two instructions.
    let block = parse_block(
        "add rcx, rax\n\
         mov rdx, rcx\n\
         pop rbx",
    )?;
    println!("block:\n{block}\n");

    // Any cost model works as long as it answers queries. Here we use
    // the interpretable analytical model C for Haswell.
    let model = CrudeModel::new(Microarch::Haswell);
    println!("{} predicts {:.2} cycles/iteration\n", model.name(), model.predict(&block));

    // Ask COMET which block features the prediction hinges on.
    let explainer = Explainer::new(model, ExplainConfig::for_crude_model());
    let mut rng = StdRng::seed_from_u64(42);
    let explanation = explainer.explain(&block, &mut rng);

    println!("explanation  : {}", explanation.display_features());
    println!("precision    : {:.2} (threshold 0.70)", explanation.precision);
    println!("coverage     : {:.2}", explanation.coverage);
    println!("model queries: {}", explanation.queries);
    Ok(())
}
