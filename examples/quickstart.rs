//! Quickstart: explain the paper's motivating example (Listing 1),
//! using the fault-tolerant query pipeline end to end — fallible
//! predictions, explanation diagnostics, and a resilient wrapper that
//! keeps explanations flowing when the model misbehaves.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use comet::isa::{parse_block, Microarch};
use comet::models::{
    CostModel, CrudeModel, FaultConfig, FaultyModel, ResilientConfig, ResilientModel,
};
use comet::{ExplainConfig, Explainer};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The motivating example from the paper: `mov rdx, rcx` reads the
    // value `add rcx, rax` just produced — a RAW dependency that
    // serializes the two instructions.
    let block = parse_block(
        "add rcx, rax\n\
         mov rdx, rcx\n\
         pop rbx",
    )?;
    println!("block:\n{block}\n");

    // Any cost model works as long as it answers queries. Models are
    // untrusted: `try_predict` is the fallible entry point (the default
    // implementation catches panics and rejects non-finite values).
    let model = CrudeModel::new(Microarch::Haswell);
    let prediction = model.try_predict(&block)?;
    println!("{} predicts {prediction:.2} cycles/iteration\n", model.name());

    // Ask COMET which block features the prediction hinges on.
    // `explain` is fallible too: it errors only if the model fails on
    // the original block; faults on perturbed samples are tolerated.
    let explainer = Explainer::new(model, ExplainConfig::for_crude_model());
    let mut rng = StdRng::seed_from_u64(42);
    let explanation = explainer.explain(&block, &mut rng)?;

    println!("explanation  : {}", explanation.display_features());
    println!("precision    : {:.2} (threshold 0.70)", explanation.precision);
    println!("coverage     : {:.2}", explanation.coverage);
    println!("model queries: {}", explanation.queries);
    println!("faults seen  : {} (degraded: {})\n", explanation.faults, explanation.degraded);

    // Unreliable model? Wrap it. Here a fault injector makes the crude
    // model fail 10% of queries; the resilient decorator retries
    // transient errors and, if the model keeps failing, trips a circuit
    // breaker and degrades to a fallback — the explanation still comes
    // out, flagged as degraded.
    let flaky = FaultyModel::new(
        CrudeModel::new(Microarch::Haswell),
        FaultConfig { nan_rate: 0.05, transient_rate: 0.05, seed: 7, ..Default::default() },
    );
    let resilient = ResilientModel::with_fallback(
        flaky,
        CrudeModel::new(Microarch::Haswell),
        ResilientConfig::default(),
    );
    let explainer = Explainer::new(resilient, ExplainConfig::for_crude_model());
    println!("with a flaky model (10% fault rate behind a resilient wrapper):");
    match explainer.explain(&block, &mut StdRng::seed_from_u64(42)) {
        Ok(explanation) => {
            let report = explainer.model().report();
            println!("explanation  : {}", explanation.display_features());
            println!(
                "resilience   : {} queries, {} failures, {} retries, degraded: {}",
                report.queries, report.failures, report.retries, explanation.degraded
            );
        }
        // Even the original block can fault; the pipeline answers with
        // a typed error instead of a panic.
        Err(error) => println!("explanation unavailable: {error}"),
    }
    Ok(())
}
