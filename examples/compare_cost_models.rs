//! Model-selection workflow (paper §7): compare cost models not only by
//! error but by *what their predictions depend on*. Runs a miniature
//! Figure-2 analysis: MAPE side by side with the fraction of COMET
//! explanations built from coarse (η) vs fine-grained (inst, δ)
//! features.
//!
//! ```text
//! cargo run --release --example compare_cost_models [num_blocks]
//! ```

use comet::bhive::{Corpus, GenConfig};
use comet::core::FeatureKind;
use comet::isa::Microarch;
use comet::models::{mape, CachedModel, CostModel, IthemalConfig, IthemalSurrogate, UicaSurrogate};
use comet::{ExplainConfig, Explainer};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args().nth(1).map_or(20, |s| s.parse().expect("numeric argument"));
    let march = Microarch::Haswell;

    eprintln!("(generating corpora and training the neural model; ~20s in release)");
    let train = Corpus::generate(1_000, GenConfig::default(), 11);
    let test = Corpus::generate(n, GenConfig::default(), 13);
    let labelled = test.training_pairs(march);

    let ithemal =
        IthemalSurrogate::train(march, &train.training_pairs(march), IthemalConfig::default());
    let uica = UicaSurrogate::new(march);

    println!("{:<14} {:>8}  {:>7} {:>7} {:>7}", "model", "MAPE", "% eta", "% inst", "% dep");
    for model in [&ithemal as &dyn CostModel, &uica] {
        let error = mape(&model, &labelled);
        let cached = CachedModel::new(model);
        let explainer = Explainer::new(&cached, ExplainConfig::for_throughput_model());
        let mut rng = StdRng::seed_from_u64(3);
        let explanations: Vec<_> = test
            .iter()
            .map(|entry| explainer.explain(&entry.block, &mut rng))
            .collect::<Result<_, _>>()?;
        let pct = |kind: FeatureKind| {
            100.0
                * explanations
                    .iter()
                    .filter(|e| e.features.iter().any(|f| f.kind() == kind))
                    .count() as f64
                / explanations.len() as f64
        };
        println!(
            "{:<14} {:>7.2}%  {:>6.1}% {:>6.1}% {:>6.1}%",
            model.name(),
            error,
            pct(FeatureKind::Eta),
            pct(FeatureKind::Inst),
            pct(FeatureKind::Dep),
        );
    }
    println!(
        "\nPaper hypothesis (confirmed in its Figure 2): lower-error models depend\n\
         more on fine-grained features (inst, dep) and less on the coarse\n\
         instruction count."
    );
    Ok(())
}
