//! Case-study walkthrough (paper §6.4, Listing 3): a block whose real
//! bottleneck is an expensive `div` plus a RAW dependency chain. We
//! train a small Ithemal-style neural model, compare it with the
//! uiCA-style simulator, and use COMET to see *which features each
//! model actually relies on*.
//!
//! ```text
//! cargo run --release --example explain_div_bottleneck
//! ```

use comet::bhive::{Corpus, GenConfig};
use comet::isa::{parse_block, Microarch};
use comet::models::{
    CachedModel, CostModel, HardwareOracle, IthemalConfig, IthemalSurrogate, UicaSurrogate,
};
use comet::{ExplainConfig, Explainer};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Paper Listing 3. Actual hardware throughput (BHive): 39 cycles.
    let block = parse_block(
        "mov ecx, edx\n\
         xor edx, edx\n\
         lea rax, [rcx + rax - 1]\n\
         div rcx\n\
         mov rdx, rcx\n\
         imul rax, rcx",
    )?;
    println!("block:\n{block}\n");

    let march = Microarch::Haswell;
    let hardware = HardwareOracle::new(march);
    println!("simulated hardware: {:.2} cycles/iteration\n", hardware.predict(&block));

    // Train a small Ithemal surrogate on a simulator-labelled corpus.
    eprintln!("(training the Ithemal surrogate on 800 blocks; ~15s in release)");
    let corpus = Corpus::generate(800, GenConfig::default(), 7);
    let ithemal =
        IthemalSurrogate::train(march, &corpus.training_pairs(march), IthemalConfig::default());
    let uica = UicaSurrogate::new(march);

    let config = ExplainConfig::for_throughput_model();
    let mut rng = StdRng::seed_from_u64(1);
    for model in [&ithemal as &dyn CostModel, &uica] {
        let cached = CachedModel::new(model);
        let prediction = cached.predict(&block);
        let explainer = Explainer::new(&cached, config);
        let explanation = explainer.explain(&block, &mut rng)?;
        println!(
            "{:<14} prediction {:>6.2} cycles  explanation {}",
            model.name(),
            prediction,
            explanation.display_features(),
        );
    }
    println!(
        "\nThe paper's diagnosis: when the neural model's explanation collapses to\n\
         eta(num_insts) while the simulator's names the div and its dependency,\n\
         the neural model is under-weighting fine-grained features — a likely\n\
         source of its larger error on blocks like this."
    );
    Ok(())
}
