//! Model selection by explanation comparison (paper §7): given two
//! cost models with similar headline error, pick the one whose
//! predictions rest on fine-grained block features. Uses the
//! `compare_models` API to find the blocks where the two models
//! disagree about feature granularity.
//!
//! ```text
//! cargo run --release --example model_selection [num_blocks]
//! ```

use comet::bhive::{Corpus, GenConfig};
use comet::core::compare_models;
use comet::isa::Microarch;
use comet::models::{CoarseBaselineModel, UicaSurrogate};
use comet::ExplainConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args().nth(1).map_or(12, |s| s.parse().expect("numeric argument"));
    let corpus = Corpus::generate(n, GenConfig::default(), 17);
    let blocks: Vec<_> = corpus.iter().map(|e| e.block.clone()).collect();

    // Two very different models: a coarse-feature analytical baseline
    // and the fine-grained pipeline simulator.
    let coarse = CoarseBaselineModel::new();
    let uica = UicaSurrogate::new(Microarch::Haswell);

    let config = ExplainConfig { coverage_samples: 500, ..ExplainConfig::for_throughput_model() };
    let mut rng = StdRng::seed_from_u64(0);
    let report = compare_models(&coarse, &uica, &blocks, config, &mut rng)?;

    println!(
        "compared `{}` vs `{}` on {} blocks",
        report.model_a,
        report.model_b,
        report.blocks.len()
    );
    println!("mean explanation agreement (Jaccard): {:.2}\n", report.mean_agreement());

    let disagreements: Vec<_> = report.granularity_disagreements().collect();
    println!(
        "{} block(s) where one model explains with coarse features only:",
        disagreements.len()
    );
    for comparison in disagreements.iter().take(3) {
        println!("---\n{}", comparison.block);
        println!(
            "  {:<16} {:>7.2} cycles  {}",
            report.model_a,
            comparison.prediction_a,
            comparison.explanation_a.display_features()
        );
        println!(
            "  {:<16} {:>7.2} cycles  {}",
            report.model_b,
            comparison.prediction_b,
            comparison.explanation_b.display_features()
        );
    }
    println!(
        "\nA model whose explanations repeatedly collapse to eta(num_insts) is\n\
         ignoring instruction identity and dependencies — exactly the failure\n\
         mode the paper diagnoses in under-trained neural cost models."
    );
    Ok(())
}
