//! Offline vendored stand-in for `serde`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace patches `serde` to this crate. The COMET workspace only
//! ever uses serde through `#[derive(Serialize, Deserialize)]` and
//! `serde_json`, so instead of serde's full `Serializer`/`Deserializer`
//! visitor machinery this stub uses a single JSON-shaped intermediate
//! value, [`Content`]:
//!
//! * [`Serialize`] turns a value into a [`Content`] tree;
//! * [`Deserialize`] rebuilds a value from a [`Content`] tree;
//! * the vendored `serde_json` renders/parses `Content` as JSON text.
//!
//! Field order is preserved (maps are association lists), so struct
//! serialization order matches declaration order exactly as with real
//! `serde_json`. The only serde attribute honoured is
//! `#[serde(default)]` — the only one the workspace uses.

pub use serde_derive::{Deserialize, Serialize};

/// JSON-shaped intermediate representation for (de)serialization.
///
/// Numbers keep their integer-ness: `u64`/`i64` values round-trip
/// exactly (important for 64-bit seeds, which do not fit in an `f64`).
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    /// Association list: preserves insertion (declaration) order.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Look up a key in a `Map`.
    pub fn get_field(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization failure: a human-readable path/reason.
pub type DeError = String;

/// Serialize into the [`Content`] intermediate representation.
pub trait Serialize {
    fn serialize_content(&self) -> Content;
}

/// Deserialize from the [`Content`] intermediate representation.
pub trait Deserialize: Sized {
    fn deserialize_content(content: &Content) -> Result<Self, DeError>;
}

/// Marker alias used by generic code written against real serde.
pub trait DeserializeOwned: Deserialize {}
impl<T: Deserialize> DeserializeOwned for T {}

fn type_err<T>(expected: &str, got: &Content) -> Result<T, DeError> {
    Err(format!("expected {expected}, got {got:?}"))
}

// ---- primitive impls -------------------------------------------------

impl Serialize for bool {
    fn serialize_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_content(c: &Content) -> Result<bool, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => type_err("bool", other),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_content(c: &Content) -> Result<$t, DeError> {
                match c {
                    Content::U64(v) => <$t>::try_from(*v).map_err(|_| format!("{v} out of range")),
                    Content::I64(v) => <$t>::try_from(*v).map_err(|_| format!("{v} out of range")),
                    other => type_err("unsigned integer", other),
                }
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 { Content::U64(v as u64) } else { Content::I64(v) }
            }
        }
        impl Deserialize for $t {
            fn deserialize_content(c: &Content) -> Result<$t, DeError> {
                match c {
                    Content::U64(v) => <$t>::try_from(*v).map_err(|_| format!("{v} out of range")),
                    Content::I64(v) => <$t>::try_from(*v).map_err(|_| format!("{v} out of range")),
                    other => type_err("integer", other),
                }
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize_content(c: &Content) -> Result<f64, DeError> {
        match c {
            Content::F64(v) => Ok(*v),
            Content::U64(v) => Ok(*v as f64),
            Content::I64(v) => Ok(*v as f64),
            other => type_err("number", other),
        }
    }
}

impl Serialize for f32 {
    fn serialize_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn deserialize_content(c: &Content) -> Result<f32, DeError> {
        f64::deserialize_content(c).map(|v| v as f32)
    }
}

impl Serialize for String {
    fn serialize_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_content(c: &Content) -> Result<String, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => type_err("string", other),
        }
    }
}

impl Serialize for str {
    fn serialize_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize_content(c: &Content) -> Result<char, DeError> {
        match c {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => type_err("single-char string", other),
        }
    }
}

// ---- container impls -------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_content(&self) -> Content {
        (**self).serialize_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_content(&self) -> Content {
        (**self).serialize_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_content(c: &Content) -> Result<Box<T>, DeError> {
        T::deserialize_content(c).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.serialize_content(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_content(c: &Content) -> Result<Option<T>, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::deserialize_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_content(c: &Content) -> Result<Vec<T>, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::deserialize_content).collect(),
            other => type_err("array", other),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn deserialize_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::deserialize_content).collect(),
            other => type_err("array", other),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn serialize_content(&self) -> Content {
        Content::Map(self.iter().map(|(k, v)| (k.clone(), v.serialize_content())).collect())
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn deserialize_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| V::deserialize_content(v).map(|v| (k.clone(), v)))
                .collect(),
            other => type_err("object", other),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.serialize_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_content(c: &Content) -> Result<Self, DeError> {
                match c {
                    Content::Seq(items) => {
                        let mut it = items.iter();
                        Ok(($( {
                            let _ = stringify!($name);
                            $name::deserialize_content(
                                it.next().ok_or("tuple too short")?,
                            )?
                        },)+))
                    }
                    other => type_err("tuple array", other),
                }
            }
        }
    )*};
}
impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}
