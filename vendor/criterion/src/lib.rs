//! Offline vendored stand-in for `criterion`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace patches `criterion` to this crate. It provides the same
//! bench-authoring surface (`criterion_group!`/`criterion_main!`,
//! `Criterion::bench_function`, groups, `iter`/`iter_batched`,
//! `black_box`) with a simple measurement loop: a short warm-up, then
//! timed batches, reporting the median ns/iteration on stdout. No
//! statistics engine, no HTML reports — benchmarks stay runnable and
//! comparable, which is all the workspace needs (the real gating
//! numbers come from `comet-bench`'s own `bench-report` harness).
//!
//! Honors `--bench` / `--test` CLI args passed by `cargo bench`
//! / `cargo test --benches`; `--test` runs each benchmark once.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup; ignored by this stub.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Passed to bench closures; runs and times the measured routine.
pub struct Bencher {
    /// Total measured time and iteration count for the last run.
    elapsed: Duration,
    iters: u64,
    /// When true (cargo test --benches) run the routine exactly once.
    smoke: bool,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.smoke {
            black_box(routine());
            self.elapsed = Duration::from_nanos(1);
            self.iters = 1;
            return;
        }
        // Warm-up: estimate per-iteration cost.
        let mut n = 1u64;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let t = start.elapsed();
            if t > Duration::from_millis(5) || n > 1 << 20 {
                break t.as_nanos().max(1) / n as u128;
            }
            n *= 2;
        };
        // Measure: aim for ~100ms total.
        let target = Duration::from_millis(100).as_nanos();
        let iters = (target / per_iter.max(1)).clamp(1, 1 << 24) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        if self.smoke {
            black_box(routine(setup()));
            self.elapsed = Duration::from_nanos(1);
            self.iters = 1;
            return;
        }
        let mut n = 1u64;
        let per_iter = loop {
            let inputs: Vec<I> = (0..n).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let t = start.elapsed();
            if t > Duration::from_millis(5) || n > 1 << 16 {
                break t.as_nanos().max(1) / n as u128;
            }
            n *= 2;
        };
        let target = Duration::from_millis(100).as_nanos();
        let iters = (target / per_iter.max(1)).clamp(1, 1 << 20) as u64;
        let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs {
            black_box(routine(input));
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }
}

fn report(id: &str, bencher: &Bencher) {
    if bencher.smoke {
        println!("{id}: ok (smoke)");
    } else {
        let ns = bencher.elapsed.as_nanos() as f64 / bencher.iters.max(1) as f64;
        println!("{id}: {ns:.1} ns/iter ({} iters)", bencher.iters);
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    smoke: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let args: Vec<String> = std::env::args().collect();
        // `cargo bench` passes `--bench`; `cargo test --benches` passes
        // `--test`, which we treat as smoke mode (run once, fast).
        let smoke = args.iter().any(|a| a == "--test");
        let filter = args.iter().skip(1).find(|a| !a.starts_with('-') && !a.is_empty()).cloned();
        Criterion { smoke, filter }
    }
}

impl Criterion {
    /// Criterion's statistical sample count; ignored by this stub.
    pub fn sample_size(self, _n: usize) -> Criterion {
        self
    }

    pub fn measurement_time(self, _d: Duration) -> Criterion {
        self
    }

    pub fn warm_up_time(self, _d: Duration) -> Criterion {
        self
    }

    fn wants(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Criterion {
        let id = id.as_ref();
        if self.wants(id) {
            let mut bencher = Bencher { elapsed: Duration::ZERO, iters: 0, smoke: self.smoke };
            f(&mut bencher);
            report(id, &bencher);
        }
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.as_ref());
        if self.criterion.wants(&full) {
            let mut bencher =
                Bencher { elapsed: Duration::ZERO, iters: 0, smoke: self.criterion.smoke };
            f(&mut bencher);
            report(&full, &bencher);
        }
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
