//! Offline vendored `#[derive(Serialize, Deserialize)]` for the
//! vendored `serde` stub.
//!
//! Implemented directly on `proc_macro::TokenTree` (no `syn`/`quote`,
//! which are unavailable offline). Supports exactly the shapes the
//! COMET workspace derives on:
//!
//! * structs with named fields (honouring `#[serde(default)]`,
//!   `#[serde(skip)]`, and the container-level
//!   `#[serde(deny_unknown_fields)]`);
//! * tuple structs — one field is treated as a transparent newtype
//!   (serde's behaviour), more fields serialize as a sequence;
//! * enums with unit variants (`"Name"`), newtype variants
//!   (`{"Name": value}`), tuple variants (`{"Name": [..]}`) and struct
//!   variants (`{"Name": {..}}`) — serde's default "external tagging".
//!
//! Generics are not supported (the workspace derives only on concrete
//! types); an item with generic parameters is a compile error here.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl must parse")
}

// ---- item model ------------------------------------------------------

struct Field {
    name: String,
    /// `#[serde(default)]` present.
    default: bool,
    /// `#[serde(skip)]` present: the field is omitted from serialized
    /// output and filled with `Default::default()` on deserialization.
    skip: bool,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum ItemKind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    kind: ItemKind,
    /// Container-level `#[serde(deny_unknown_fields)]` present:
    /// deserialization rejects map keys that are not (serialized)
    /// fields instead of ignoring them.
    deny_unknown: bool,
}

// ---- parsing ---------------------------------------------------------

/// Skip a run of `#[...]` attributes; report whether any of them was
/// `#[serde(default)]` or `#[serde(skip)]`.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> (usize, bool, bool) {
    let mut has_default = false;
    let mut has_skip = false;
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                has_default |= attr_has_serde_arg(&g.stream(), "default");
                has_skip |= attr_has_serde_arg(&g.stream(), "skip");
                i += 2;
            }
            _ => break,
        }
    }
    (i, has_default, has_skip)
}

fn attr_has_serde_arg(stream: &TokenStream, arg: &str) -> bool {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    match tokens.as_slice() {
        [TokenTree::Ident(name), TokenTree::Group(args)] if name.to_string() == "serde" => args
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == arg)),
        _ => false,
    }
}

/// Skip an optional `pub` / `pub(crate)` visibility.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
        i += 1;
        if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }
    i
}

/// Skip a type: everything up to the next `,` at angle-bracket depth 0.
/// Returns the index of that comma (or `tokens.len()`).
fn skip_type(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut depth = 0i32;
    while i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[i] {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return i,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (next, default, skip) = skip_attrs(&tokens, i);
        i = skip_vis(&tokens, next);
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected field name, found {other}"),
        };
        i += 1;
        assert!(
            matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ':'),
            "expected `:` after field `{name}`"
        );
        i = skip_type(&tokens, i + 1);
        i += 1; // consume the comma (or run off the end)
        fields.push(Field { name, default, skip });
    }
    fields
}

/// Number of comma-separated entries in a tuple-struct/tuple-variant
/// body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        let (next, _, _) = skip_attrs(&tokens, i);
        i = skip_vis(&tokens, next);
        i = skip_type(&tokens, i);
        i += 1;
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (next, _, _) = skip_attrs(&tokens, i);
        i = next;
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name, found {other}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip to the separating comma (tolerates discriminants).
        while i < tokens.len() && !matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
            i += 1;
        }
        i += 1;
        variants.push(Variant { name, kind });
    }
    variants
}

/// Detect the container-level `#[serde(deny_unknown_fields)]` among the
/// attributes preceding the item keyword.
fn has_deny_unknown(tokens: &[TokenTree]) -> bool {
    let mut i = 0;
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                if attr_has_serde_arg(&g.stream(), "deny_unknown_fields") {
                    return true;
                }
                i += 2;
            }
            _ => return false,
        }
    }
    false
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let deny_unknown = has_deny_unknown(&tokens);
    let (i, _, _) = skip_attrs(&tokens, 0);
    let mut i = skip_vis(&tokens, i);
    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected item name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("vendored serde_derive does not support generic type `{name}`");
    }
    let kind = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemKind::TupleStruct(count_tuple_fields(g.stream()))
            }
            _ => panic!("unit struct `{name}` is not supported"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Enum(parse_variants(g.stream()))
            }
            _ => panic!("malformed enum `{name}`"),
        },
        other => panic!("cannot derive for `{other}` items"),
    };
    Item { name, kind, deny_unknown }
}

// ---- codegen ---------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .filter(|f| !f.skip)
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{n}\"), \
                         ::serde::Serialize::serialize_content(&self.{n}))",
                        n = f.name
                    )
                })
                .collect();
            format!("::serde::Content::Map(vec![{}])", entries.join(", "))
        }
        ItemKind::TupleStruct(1) => "::serde::Serialize::serialize_content(&self.0)".to_string(),
        ItemKind::TupleStruct(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize_content(&self.{i})"))
                .collect();
            format!("::serde::Content::Seq(vec![{}])", entries.join(", "))
        }
        ItemKind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::Content::Str(\
                             ::std::string::String::from(\"{vname}\")),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vname}(x0) => ::serde::Content::Map(vec![(\
                             ::std::string::String::from(\"{vname}\"), \
                             ::serde::Serialize::serialize_content(x0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::serialize_content(x{i})"))
                                .collect();
                            format!(
                                "{name}::{vname}({binds}) => ::serde::Content::Map(vec![(\
                                 ::std::string::String::from(\"{vname}\"), \
                                 ::serde::Content::Seq(vec![{items}]))]),",
                                binds = binds.join(", "),
                                items = items.join(", "),
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds: Vec<String> =
                                fields.iter().filter(|f| !f.skip).map(|f| f.name.clone()).collect();
                            let entries: Vec<String> = fields
                                .iter()
                                .filter(|f| !f.skip)
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{n}\"), \
                                         ::serde::Serialize::serialize_content({n}))",
                                        n = f.name
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} .. }} => ::serde::Content::Map(vec![(\
                                 ::std::string::String::from(\"{vname}\"), \
                                 ::serde::Content::Map(vec![{entries}]))]),",
                                binds = if binds.is_empty() {
                                    String::new()
                                } else {
                                    format!("{},", binds.join(", "))
                                },
                                entries = entries.join(", "),
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize_content(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    )
}

/// Codegen for pulling field `fname` out of the association list
/// `entries`, in a context where `return Err` is legal.
fn field_getter(owner: &str, fname: &str, default: bool, skip: bool) -> String {
    if skip {
        return format!("{fname}: ::std::default::Default::default()");
    }
    let missing = if default {
        "::std::default::Default::default()".to_string()
    } else {
        format!(
            "return ::std::result::Result::Err(::std::string::String::from(\
             \"missing field `{fname}` in {owner}\"))"
        )
    };
    format!(
        "{fname}: match entries.iter().find(|(k, _)| k == \"{fname}\") {{\n\
         ::std::option::Option::Some((_, v)) => ::serde::Deserialize::deserialize_content(v)?,\n\
         ::std::option::Option::None => {missing},\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let getters: Vec<String> =
                fields.iter().map(|f| field_getter(name, &f.name, f.default, f.skip)).collect();
            // `deny_unknown_fields`: reject keys that are not
            // serialized fields (skipped fields are never serialized,
            // so — like upstream serde — they count as unknown).
            let guard = if item.deny_unknown {
                let known: Vec<String> =
                    fields.iter().filter(|f| !f.skip).map(|f| format!("\"{}\"", f.name)).collect();
                let known_arm = if known.is_empty() {
                    String::new()
                } else {
                    format!("{} => {{}},", known.join(" | "))
                };
                format!(
                    "for (k, _) in entries.iter() {{\n\
                     match k.as_str() {{\n\
                     {known_arm}\n\
                     other => return ::std::result::Result::Err(\
                     format!(\"unknown field `{{other}}` in {name}\")),\n\
                     }}\n\
                     }}\n"
                )
            } else {
                String::new()
            };
            format!(
                "match content {{\n\
                 ::serde::Content::Map(entries) => {{\n\
                 {guard}\
                 ::std::result::Result::Ok({name} {{ {getters} }})\n\
                 }},\n\
                 other => ::std::result::Result::Err(\
                 format!(\"expected object for {name}, got {{other:?}}\")),\n\
                 }}",
                getters = getters.join(",\n"),
            )
        }
        ItemKind::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(\
             ::serde::Deserialize::deserialize_content(content)?))"
        ),
        ItemKind::TupleStruct(n) => {
            let getters: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::deserialize_content(\
                         items.get({i}).ok_or_else(|| ::std::string::String::from(\
                         \"tuple struct {name} too short\"))?)?"
                    )
                })
                .collect();
            format!(
                "match content {{\n\
                 ::serde::Content::Seq(items) => ::std::result::Result::Ok({name}({getters})),\n\
                 other => ::std::result::Result::Err(\
                 format!(\"expected array for {name}, got {{other:?}}\")),\n\
                 }}",
                getters = getters.join(", "),
            )
        }
        ItemKind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),", v = v.name))
                .collect();
            let payload_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::deserialize_content(v)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let getters: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::deserialize_content(\
                                         items.get({i}).ok_or_else(|| \
                                         ::std::string::String::from(\
                                         \"variant {vname} too short\"))?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => match v {{\n\
                                 ::serde::Content::Seq(items) => \
                                 ::std::result::Result::Ok({name}::{vname}({getters})),\n\
                                 other => ::std::result::Result::Err(format!(\
                                 \"expected array for {name}::{vname}, got {{other:?}}\")),\n\
                                 }},",
                                getters = getters.join(", "),
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let getters: Vec<String> = fields
                                .iter()
                                .map(|f| field_getter(vname, &f.name, f.default, f.skip))
                                .collect();
                            Some(format!(
                                "\"{vname}\" => match v {{\n\
                                 ::serde::Content::Map(entries) => \
                                 ::std::result::Result::Ok({name}::{vname} {{ {getters} }}),\n\
                                 other => ::std::result::Result::Err(format!(\
                                 \"expected object for {name}::{vname}, got {{other:?}}\")),\n\
                                 }},",
                                getters = getters.join(",\n"),
                            ))
                        }
                    }
                })
                .collect();
            let payload_bind = if payload_arms.is_empty() { "(k, _v)" } else { "(k, v)" };
            format!(
                "match content {{\n\
                 ::serde::Content::Str(s) => match s.as_str() {{\n\
                 {unit_arms}\n\
                 other => ::std::result::Result::Err(\
                 format!(\"unknown {name} variant `{{other}}`\")),\n\
                 }},\n\
                 ::serde::Content::Map(entries) if entries.len() == 1 => {{\n\
                 let {payload_bind} = &entries[0];\n\
                 match k.as_str() {{\n\
                 {payload_arms}\n\
                 other => ::std::result::Result::Err(\
                 format!(\"unknown {name} variant `{{other}}`\")),\n\
                 }}\n\
                 }},\n\
                 other => ::std::result::Result::Err(\
                 format!(\"expected {name} variant, got {{other:?}}\")),\n\
                 }}",
                unit_arms = unit_arms.join("\n"),
                payload_arms = payload_arms.join("\n"),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize_content(content: &::serde::Content) \
         -> ::std::result::Result<{name}, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
}
