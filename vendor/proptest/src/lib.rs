//! Offline vendored stand-in for `proptest`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace patches `proptest` to this crate. It keeps proptest's
//! *property-testing semantics* for the subset the COMET workspace
//! uses — `proptest!`, strategies (`Just`, ranges, tuples, `prop_map`,
//! `prop_flat_map`, `prop_oneof!`, `sample::select`, `option::of`,
//! `any::<T>()`), `prop_assert*!`, `prop_assume!`, and
//! `ProptestConfig::with_cases` — with two deliberate differences:
//!
//! * **No shrinking.** A failing case reports the generated inputs
//!   verbatim instead of a minimized counterexample.
//! * **Deterministic seeding.** Case seeds derive from the test name
//!   and case index, so failures reproduce across runs by default.

use std::fmt::Debug;
use std::rc::Rc;

// ---- RNG -------------------------------------------------------------

/// Deterministic generator handed to strategies (xoshiro256**).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeded from the test name and per-case stream index.
    pub fn deterministic(name: &str, stream: u64) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut x = h ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng { s: [next(), next(), next(), next()] }
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        (self.next_u64() as u128 % bound as u128) as u64
    }
}

// ---- strategies ------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value: Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<W: Debug, F: Fn(Self::Value) -> W>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<W: Strategy, F: Fn(Self::Value) -> W>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe strategy surface backing [`BoxedStrategy`].
trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V>(Rc<dyn DynStrategy<V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, W: Debug, F: Fn(S::Value) -> W> Strategy for Map<S, F> {
    type Value = W;
    fn generate(&self, rng: &mut TestRng) -> W {
        (self.f)(self.inner.generate(rng))
    }
}

#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, W: Strategy, F: Fn(S::Value) -> W> Strategy for FlatMap<S, F> {
    type Value = W::Value;
    fn generate(&self, rng: &mut TestRng) -> W::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates in a row");
    }
}

/// Uniform choice among equally weighted alternatives (`prop_oneof!`).
pub struct Union<V>(pub Vec<BoxedStrategy<V>>);

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union(self.0.clone())
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.next_f64() * (self.end() - self.start())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

// ---- any::<T>() ------------------------------------------------------

/// Types with a canonical "arbitrary" strategy.
pub trait Arbitrary: Sized + Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}

impl Arbitrary for crate::sample::Index {
    fn arbitrary(rng: &mut TestRng) -> crate::sample::Index {
        crate::sample::Index(rng.next_u64())
    }
}

/// Strategy form of [`Arbitrary`]; build with [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(std::marker::PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// ---- sample / option / collection ------------------------------------

pub mod sample {
    use super::{Strategy, TestRng};
    use std::fmt::Debug;

    /// An index valid for any non-empty collection (`.index(len)`).
    #[derive(Debug, Clone, Copy)]
    pub struct Index(pub(crate) u64);

    impl Index {
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on an empty collection");
            (self.0 as u128 % len as u128) as usize
        }
    }

    /// Uniform choice from a fixed list of values.
    #[derive(Debug, Clone)]
    pub struct Select<T>(Vec<T>);

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].clone()
        }
    }

    pub fn select<T: Clone + Debug>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "sample::select needs at least one item");
        Select(items)
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    /// `None` roughly 1 in 4 times, `Some` otherwise.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    pub fn of<S: Strategy>(strategy: S) -> OptionStrategy<S> {
        OptionStrategy(strategy)
    }
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// `Vec` of `size.start..size.end` elements.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let n = self.size.start + (rng.below(span) as usize);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

// ---- runner ----------------------------------------------------------

/// Runner configuration; only `cases` is meaningful in this stub.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The property failed; the test fails.
    Fail(String),
    /// The inputs were rejected by `prop_assume!`; retried.
    Reject,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(message.into())
    }
}

/// Drive one property: run `config.cases` passing cases, retrying
/// rejected ones (bounded), panicking with inputs on the first failure.
pub fn run_cases<F>(config: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), (TestCaseError, String)>,
{
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut stream = 0u64;
    while passed < config.cases {
        let mut rng = TestRng::deterministic(name, stream);
        stream += 1;
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err((TestCaseError::Reject, _)) => {
                rejected += 1;
                assert!(
                    rejected <= config.cases.saturating_mul(16),
                    "proptest `{name}`: too many prop_assume! rejections \
                     ({rejected} rejects for {passed} passes)"
                );
            }
            Err((TestCaseError::Fail(message), inputs)) => {
                panic!(
                    "proptest `{name}` failed at case {passed} (stream {})\n\
                     {message}\n\
                     inputs: {inputs}\n\
                     (vendored proptest: no shrinking; inputs shown verbatim)",
                    stream - 1
                );
            }
        }
    }
}

// ---- macros ----------------------------------------------------------

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_cases($cfg, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)*
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),*),
                    $(&$arg),*
                );
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                __outcome.map_err(|e| (e, __inputs))
            });
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), format!($($fmt)+), l, r,
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l,
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

pub mod prelude {
    /// `prop::sample::Index` etc. — mirror of real proptest's prelude
    /// alias for the crate root.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(x in 0u8..16, y in -8i64..8, f in 0.0f64..=1.0) {
            prop_assert!(x < 16);
            prop_assert!((-8..8).contains(&y));
            prop_assert!((0.0..=1.0).contains(&f));
        }

        #[test]
        fn oneof_map_and_select(
            v in prop_oneof![Just(1u32), Just(2), 3u32..5].prop_map(|v| v * 10),
            s in crate::sample::select(vec!["a", "b"]),
            idx in any::<prop::sample::Index>(),
        ) {
            prop_assert!(matches!(v, 10 | 20 | 30 | 40));
            prop_assert!(s == "a" || s == "b");
            prop_assert!(idx.index(3) < 3);
        }
    }

    #[test]
    #[should_panic(expected = "assertion failed")]
    fn failures_panic_with_inputs() {
        crate::run_cases(ProptestConfig::with_cases(4), "always_fails", |rng| {
            let v = crate::Strategy::generate(&(0u8..4), rng);
            let _ = v;
            Err((TestCaseError::fail("assertion failed: forced"), format!("v = {v:?}")))
        });
    }
}
