//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace patches `rand` to this crate (see `[patch.crates-io]` in
//! the workspace manifest). It implements exactly the API subset the
//! COMET workspace uses:
//!
//! * [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`]
//! * [`Rng::gen`] (`f64`/`bool`/integers), [`Rng::gen_bool`],
//!   [`Rng::gen_range`] over integer and float ranges
//! * [`seq::SliceRandom::choose`] / [`seq::SliceRandom::shuffle`]
//!
//! The generator is xoshiro256** seeded via SplitMix64 — a different
//! stream than upstream `rand`'s ChaCha12, which is fine: the COMET
//! determinism contract is *same seed, same binary ⇒ same output*,
//! never cross-library stream equality. Semantics that COMET's
//! determinism tests do rely on are preserved:
//!
//! * `choose` on an empty slice returns `None` **without consuming
//!   randomness** (upstream behaviour);
//! * `choose` on a non-empty slice consumes exactly one `gen_range`;
//! * `shuffle` is a Fisher–Yates pass from the back of the slice.

/// A source of random 64-bit words. Every other operation is derived
/// from [`RngCore::next_u64`].
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the "standard" distribution of `T`
    /// (uniform over the type's natural range; `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }

    /// Uniform draw from a range (`a..b` or `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction; only the `seed_from_u64` entry point is
/// provided (the only one COMET uses).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the standard distribution.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// 53 uniform mantissa bits in `[0, 1)`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types uniform ranges can be drawn over. The single blanket
/// [`SampleRange`] impl below pins the element type of a range literal
/// (`0..4`) to `gen_range`'s return type during inference, exactly as
/// upstream rand's blanket impl does.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[start, end)`.
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
    /// Uniform draw from `[start, end]`.
    fn sample_between_incl<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(start < end, "empty gen_range");
                let span = (end as i128 - start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
            fn sample_between_incl<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(start <= end, "empty gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, start: f64, end: f64) -> f64 {
        start + f64::sample(rng) * (end - start)
    }
    fn sample_between_incl<R: RngCore + ?Sized>(rng: &mut R, start: f64, end: f64) -> f64 {
        start + f64::sample(rng) * (end - start)
    }
}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between_incl(rng, *self.start(), *self.end())
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic pseudo-random generator (xoshiro256**).
    ///
    /// Not the upstream ChaCha12 `StdRng` — see the crate docs for why
    /// stream equality with upstream is not a goal.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 state expansion, the reference seeding scheme
            // for the xoshiro family.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Random selection and shuffling over slices.
    pub trait SliceRandom {
        type Item;

        /// A uniformly chosen element, or `None` for an empty slice.
        /// Consumes no randomness when the slice is empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() as u128 % self.len() as u128) as usize;
                self.get(i)
            }
        }

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() as u128 % (i as u128 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_seed_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-8..32i64);
            assert!((-8..32).contains(&v));
            let u = rng.gen_range(3..=9usize);
            assert!((3..=9).contains(&u));
            let f = rng.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&f));
        }
    }

    #[test]
    fn empty_choose_consumes_no_randomness() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut a).is_none());
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }
}
