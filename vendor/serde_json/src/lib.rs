//! Offline vendored stand-in for `serde_json`.
//!
//! Renders and parses the vendored `serde` crate's [`Content`] model as
//! JSON text. Matches real `serde_json` in the properties the COMET
//! workspace relies on:
//!
//! * struct fields serialize in declaration order; [`Value`] objects
//!   sort keys (`BTreeMap`), exactly like upstream without
//!   `preserve_order`;
//! * numbers keep their integer-ness — `u64` seeds round-trip exactly;
//! * non-finite floats serialize as `null` (and therefore fail to
//!   deserialize back into an `f64` field);
//! * output is deterministic, so checksummed journal lines round-trip
//!   byte-identically.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Content, Deserialize, Serialize};

/// Serialization/deserialization failure.
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Error {
        Error { message: message.into() }
    }
}

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Error({})", self.message)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// An arbitrary JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

/// A JSON number, preserving integer-ness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

static NULL: Value = Value::Null;

impl Value {
    /// Object member lookup (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// Mutable object member lookup.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        match self {
            Value::Object(map) => map.get_mut(key),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::PosInt(v)) => Some(*v as f64),
            Value::Number(Number::NegInt(v)) => Some(*v as f64),
            Value::Number(Number::Float(v)) => Some(*v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::PosInt(v)) => Some(*v),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl fmt::Display for Value {
    /// Compact JSON text, like upstream `serde_json`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_compact(&mut out, &value_to_content(self));
        f.write_str(&out)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::IndexMut<&str> for Value {
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if let Value::Null = self {
            *self = Value::Object(BTreeMap::new());
        }
        match self {
            Value::Object(map) => map.entry(key.to_string()).or_insert(Value::Null),
            other => panic!("cannot index {other:?} with a string key"),
        }
    }
}

impl std::ops::Index<String> for Value {
    type Output = Value;
    fn index(&self, key: String) -> &Value {
        self.get(&key).unwrap_or(&NULL)
    }
}

impl std::ops::IndexMut<String> for Value {
    fn index_mut(&mut self, key: String) -> &mut Value {
        if let Value::Null = self {
            *self = Value::Object(BTreeMap::new());
        }
        match self {
            Value::Object(map) => map.entry(key).or_insert(Value::Null),
            other => panic!("cannot index {other:?} with a string key"),
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::IndexMut<usize> for Value {
    fn index_mut(&mut self, i: usize) -> &mut Value {
        match self {
            Value::Array(items) => &mut items[i],
            other => panic!("cannot index {other:?} with a usize"),
        }
    }
}

macro_rules! impl_value_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                match self {
                    Value::Number(Number::PosInt(v)) => {
                        <$t>::try_from(*v).map(|v| v == *other).unwrap_or(false)
                    }
                    Value::Number(Number::NegInt(v)) => {
                        <$t>::try_from(*v).map(|v| v == *other).unwrap_or(false)
                    }
                    _ => false,
                }
            }
        }
    )*};
}
impl_value_eq_int!(i32, i64, u32, u64, usize);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

// ---- Value ⇄ Content -------------------------------------------------

fn value_to_content(value: &Value) -> Content {
    match value {
        Value::Null => Content::Null,
        Value::Bool(b) => Content::Bool(*b),
        Value::Number(Number::PosInt(v)) => Content::U64(*v),
        Value::Number(Number::NegInt(v)) => Content::I64(*v),
        Value::Number(Number::Float(v)) => Content::F64(*v),
        Value::String(s) => Content::Str(s.clone()),
        Value::Array(items) => Content::Seq(items.iter().map(value_to_content).collect()),
        Value::Object(map) => {
            Content::Map(map.iter().map(|(k, v)| (k.clone(), value_to_content(v))).collect())
        }
    }
}

fn content_to_value(content: &Content) -> Value {
    match content {
        Content::Null => Value::Null,
        Content::Bool(b) => Value::Bool(*b),
        Content::U64(v) => Value::Number(Number::PosInt(*v)),
        Content::I64(v) => Value::Number(Number::NegInt(*v)),
        Content::F64(v) => {
            if v.is_finite() {
                Value::Number(Number::Float(*v))
            } else {
                Value::Null
            }
        }
        Content::Str(s) => Value::String(s.clone()),
        Content::Seq(items) => Value::Array(items.iter().map(content_to_value).collect()),
        Content::Map(entries) => {
            Value::Object(entries.iter().map(|(k, v)| (k.clone(), content_to_value(v))).collect())
        }
    }
}

impl Serialize for Value {
    fn serialize_content(&self) -> Content {
        value_to_content(self)
    }
}

impl Deserialize for Value {
    fn deserialize_content(content: &Content) -> Result<Value, serde::DeError> {
        Ok(content_to_value(content))
    }
}

/// Convert any serializable value into a [`Value`] tree (used by the
/// [`json!`] macro).
pub fn to_value<T: Serialize>(value: &T) -> Value {
    content_to_value(&value.serialize_content())
}

// ---- writing ---------------------------------------------------------

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Float formatting: shortest round-trip repr, with a `.0` appended to
/// integral values so floats stay floats across a parse (mirroring
/// `serde_json`'s ryu output). Non-finite floats render as `null`.
fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{v}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_compact(out: &mut String, c: &Content) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(out, *v),
        Content::Str(s) => escape_into(out, s),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(out, k);
                out.push(':');
                write_compact(out, v);
            }
            out.push('}');
        }
    }
}

fn write_pretty(out: &mut String, c: &Content, indent: usize) {
    let pad = "  ".repeat(indent);
    let pad_inner = "  ".repeat(indent + 1);
    match c {
        Content::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_inner);
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Content::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_inner);
                escape_into(out, k);
                out.push_str(": ");
                write_pretty(out, v, indent + 1);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => write_compact(out, other),
    }
}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&mut out, &value.serialize_content());
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&mut out, &value.serialize_content(), 0);
    Ok(out)
}

pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

pub fn to_vec_pretty<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string_pretty(value).map(String::into_bytes)
}

// ---- parsing ---------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Parser<'a> {
        Parser { bytes: input.as_bytes(), pos: 0 }
    }

    fn err<T>(&self, message: &str) -> Result<T, Error> {
        Err(Error::new(format!("{message} at byte {}", self.pos)))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected `{}`", b as char))
        }
    }

    fn literal(&mut self, word: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.err(&format!("expected `{word}`"))
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Content::Null),
            Some(b't') => self.literal("true", Content::Bool(true)),
            Some(b'f') => self.literal("false", Content::Bool(false)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => return self.err("expected `,` or `]`"),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        _ => return self.err("expected `,` or `}`"),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let first = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair: expect `\uXXXX` low half.
                                self.pos += 1;
                                if self.peek() != Some(b'\\') {
                                    return self.err("expected low surrogate");
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return self.err("expected low surrogate");
                                }
                                let low = self.parse_hex4()?;
                                0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                first
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return self.err("invalid unicode escape"),
                            }
                        }
                        _ => return self.err("invalid escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid utf-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parse the 4 hex digits after the `u` the cursor sits on.
    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let start = self.pos + 1;
        let end = start + 4;
        if end > self.bytes.len() {
            return self.err("truncated unicode escape");
        }
        let hex = std::str::from_utf8(&self.bytes[start..end])
            .map_err(|_| Error::new("invalid unicode escape"))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid unicode escape"))?;
        self.pos = end - 1; // caller advances past the final digit
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Some(digits) = text.strip_prefix('-') {
                if let Ok(v) = digits.parse::<u64>() {
                    if let Ok(neg) = i64::try_from(v).map(|v| -v) {
                        return Ok(Content::I64(neg));
                    }
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

fn parse_document(input: &str) -> Result<Content, Error> {
    let mut parser = Parser::new(input);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return parser.err("trailing characters");
    }
    Ok(value)
}

pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let content = parse_document(input)?;
    T::deserialize_content(&content).map_err(Error::new)
}

pub fn from_reader<R: std::io::Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf).map_err(|e| Error::new(format!("io error: {e}")))?;
    from_str(&buf)
}

pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    T::deserialize_content(&value_to_content(&value)).map_err(Error::new)
}

/// Build a [`Value`] from a JSON-ish literal: scalars and arbitrary
/// expressions, nested `{ "key": value, .. }` objects and `[value, ..]`
/// arrays. A token-tree muncher (the same recognition strategy as the
/// real crate) so values can be multi-token expressions.
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => { $crate::json_internal!($($tt)+) };
}

#[macro_export]
#[doc(hidden)]
macro_rules! json_internal {
    // ---- array munching: @array [built elems] rest... ----
    (@array [$($elems:expr,)*]) => { vec![$($elems,)*] };
    (@array [$($elems:expr),*]) => { vec![$($elems),*] };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null),] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*]),] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*}),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    // ---- object munching: @object map (key tts) (rest) (rest copy) ----
    (@object $object:ident () () ()) => {};
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        let _ = $object.insert(::std::string::String::from($($key)+), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        let _ = $object.insert(::std::string::String::from($($key)+), $value);
    };
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($array)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    // Munch one more token into the pending key.
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };

    // ---- entry points ----
    (null) => { $crate::Value::Null };
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => { $crate::Value::Object(::std::collections::BTreeMap::new()) };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            let mut object = ::std::collections::BTreeMap::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            object
        })
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-17", "3.5", "1e300", "\"hi\\n\""] {
            let v: Value = from_str(text).unwrap();
            let again: Value = from_str(&to_string(&v).unwrap()).unwrap();
            assert_eq!(v, again, "{text}");
        }
    }

    #[test]
    fn u64_seeds_round_trip_exactly() {
        let seed = u64::MAX - 12345;
        let text = to_string(&seed).unwrap();
        let back: u64 = from_str(&text).unwrap();
        assert_eq!(back, seed);
    }

    #[test]
    fn floats_stay_floats() {
        let text = to_string(&2.0f64).unwrap();
        assert_eq!(text, "2.0");
        let v: Value = from_str(&text).unwrap();
        assert_eq!(v, 2.0);
        // Exact round-trip through shortest repr.
        let tricky = 0.1f64 + 0.2f64;
        let back: f64 = from_str(&to_string(&tricky).unwrap()).unwrap();
        assert_eq!(back.to_bits(), tricky.to_bits());
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert!(from_str::<f64>("null").is_err());
    }

    #[test]
    fn json_macro_and_indexing() {
        let mut v = json!({ "index": 1, "record": { "what": "is this" }, "xs": [1, 2] });
        assert_eq!(v["index"], 1);
        assert_eq!(v["record"]["what"], "is this");
        v["index"] = json!(-2.5);
        assert_eq!(v["index"], -2.5);
        assert!(v.get("missing").is_none());
        assert_eq!(v["xs"].as_array().unwrap().len(), 2);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = json!({ "a": [1, 2, 3], "b": { "c": "d" }, "empty": [] });
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back);
    }
}
